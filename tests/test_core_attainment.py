"""Tests for SLO attainment measurement."""

import numpy as np
import pytest

from repro.core.attainment import (
    measure_attainment,
    measure_fleet_attainment,
)
from repro.core.slo import QoSRequirement
from repro.telemetry.store import MetricStore


class TestMeasureAttainment:
    def test_healthy_pool_meets_contract(self, pool_b_store):
        qos = QoSRequirement(latency_p95_ms=36.0, availability_min=0.99)
        report = measure_attainment(pool_b_store, "B", qos, datacenter_id="DC1")
        assert report.latency_attainment > 0.95
        assert report.availability == pytest.approx(1.0)  # no policies
        assert report.serving_attainment == 1.0
        assert report.meets_contract
        assert "OK" in report.describe()

    def test_impossible_slo_violated(self, pool_b_store):
        qos = QoSRequirement(latency_p95_ms=1.0)
        report = measure_attainment(pool_b_store, "B", qos, datacenter_id="DC1")
        assert report.latency_attainment == 0.0
        assert not report.meets_contract
        assert "VIOLATED" in report.describe()

    def test_worst_window_recorded(self, pool_b_store):
        qos = QoSRequirement(latency_p95_ms=36.0)
        report = measure_attainment(pool_b_store, "B", qos)
        assert report.worst_window_latency_ms >= 30.0

    def test_window_range_restriction(self, pool_b_store):
        qos = QoSRequirement(latency_p95_ms=36.0)
        full = measure_attainment(pool_b_store, "B", qos)
        partial = measure_attainment(pool_b_store, "B", qos, start=0, stop=100)
        assert partial.n_windows == 100
        assert full.n_windows > partial.n_windows

    def test_missing_pool_rejected(self):
        with pytest.raises(ValueError):
            measure_attainment(
                MetricStore(), "nope", QoSRequirement(latency_p95_ms=10.0)
            )

    def test_low_availability_pool_fails_availability(self, fleet_store):
        # Pool B in the fleet fixture is repurposed off-peak (~71 %).
        qos = QoSRequirement(latency_p95_ms=36.0, availability_min=0.99)
        report = measure_attainment(fleet_store, "B", qos)
        assert report.availability < 0.9
        assert not report.meets_contract


class TestFleetAttainment:
    def test_covers_registered_pools(self, pool_b_store):
        reports = measure_fleet_attainment(
            pool_b_store, {"B": QoSRequirement(latency_p95_ms=36.0)}
        )
        assert [r.pool_id for r in reports] == ["B"]

    def test_no_contracts_rejected(self, pool_b_store):
        with pytest.raises(ValueError):
            measure_fleet_attainment(pool_b_store, {})
