"""Property-based tests on planning-level invariants.

These run hypothesis over the *planning math* (store-free paths), since
full simulations are too slow per-example.  Invariants:

* the headroom requirement is monotone in demand and anti-monotone in
  the SLO;
* the M/M/c plan is monotone in demand and in service time;
* the autoscaler never allocates outside [min_servers, pool_limit];
* the metric store's pool aggregates are consistent with per-server
  queries;
* export/import round-trips arbitrary telemetry exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.autoscaler import ReactiveAutoscaler
from repro.baselines.queuing import MMcPlanner
from repro.baselines.static_peak import StaticPeakPlanner
from repro.telemetry.export import export_store, import_store
from repro.telemetry.store import MetricStore

demand_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=60,
)


class TestMMcProperties:
    @given(
        demand=st.floats(min_value=1.0, max_value=50_000.0, allow_nan=False),
        extra=st.floats(min_value=1.05, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_demand(self, demand, extra):
        planner = MMcPlanner(service_time_s=0.02, target_latency_s=0.05)
        assert planner.required_servers(demand * extra) >= planner.required_servers(demand)

    @given(demand=st.floats(min_value=1.0, max_value=50_000.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_service_time(self, demand):
        fast = MMcPlanner(service_time_s=0.01, target_latency_s=0.05)
        slow = fast.with_service_time(0.02)
        assert slow.required_servers(demand) >= fast.required_servers(demand)

    @given(demand=st.floats(min_value=1.0, max_value=50_000.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_plan_is_stable(self, demand):
        planner = MMcPlanner(
            service_time_s=0.02, target_latency_s=0.05, requests_per_server_slot=8
        )
        servers = planner.required_servers(demand)
        # Stability: total service capacity exceeds the arrival rate.
        assert servers * 8 / 0.02 > demand


class TestStaticPeakProperties:
    @given(
        demand=demand_lists,
        headroom=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_covers_peak(self, demand, headroom):
        planner = StaticPeakPlanner(
            rps_per_server_at_target=100.0, headroom_factor=headroom
        )
        servers = planner.required_servers(demand)
        assert servers * 100.0 >= max(demand) * 0.999  # covers raw peak


class TestAutoscalerProperties:
    @given(demand=demand_lists)
    @settings(max_examples=40, deadline=None)
    def test_allocation_bounds(self, demand):
        scaler = ReactiveAutoscaler(
            target_rps_per_server=100.0,
            max_rps_per_server=150.0,
            min_servers=2,
            pool_limit_servers=50,
            max_step_servers=5,
        )
        outcome = scaler.replay(demand)
        assert outcome.allocation.min() >= 2
        assert outcome.allocation.max() <= 50
        assert outcome.total_windows == len(demand)
        assert 0.0 <= outcome.overload_fraction <= 1.0


samples = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),  # window
        st.sampled_from(["s0", "s1", "s2"]),
        st.sampled_from(["P", "Q"]),
        st.sampled_from(["DC1", "DC2"]),
        st.sampled_from(["cpu", "lat"]),
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
)


class TestStoreProperties:
    @given(rows=samples)
    @settings(max_examples=40, deadline=None)
    def test_sum_aggregate_matches_manual(self, rows):
        store = MetricStore()
        for window, server, pool, dc, counter, value in rows:
            store.record_fast(window, server, pool, dc, counter, value)
        series = store.pool_window_aggregate("P", "cpu", reducer="sum")
        expected = {}
        for window, server, pool, dc, counter, value in rows:
            if pool == "P" and counter == "cpu":
                expected[window] = expected.get(window, 0.0) + value
        got = dict(zip(series.windows.tolist(), series.values.tolist()))
        assert set(got) == set(expected)
        for w, total in expected.items():
            assert got[w] == pytest.approx(total, rel=1e-9, abs=1e-6)

    @given(rows=samples)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_export_import_round_trip(self, rows, tmp_path):
        store = MetricStore()
        for window, server, pool, dc, counter, value in rows:
            store.record_fast(window, server, pool, dc, counter, value)
        path = tmp_path / "roundtrip.csv"
        export_store(store, path)
        loaded = import_store(path)
        assert loaded.sample_count() == store.sample_count()
        assert loaded.pools == store.pools
        for pool in store.pools:
            for counter in store.counters_for_pool(pool):
                for server in store.servers_in_pool(pool):
                    a = store.server_series(pool, counter, server)
                    b = loaded.server_series(pool, counter, server)
                    np.testing.assert_array_equal(a.windows, b.windows)
                    np.testing.assert_array_equal(a.values, b.values)
