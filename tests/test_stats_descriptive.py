"""Unit tests for repro.stats.descriptive."""

import numpy as np
import pytest

from repro.stats.descriptive import (
    Cdf,
    empirical_cdf,
    histogram_fractions,
    percentile_profile,
    summarize,
)


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.p50 == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.mean == 7.0
        assert stats.std == 0.0
        assert stats.p5 == 7.0
        assert stats.p95 == 7.0

    def test_as_dict_keys(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {
            "count", "mean", "std", "min", "p5", "p25", "p50", "p75", "p95", "max",
        }


class TestPercentileProfile:
    def test_default_grid_is_five_points(self):
        profile = percentile_profile(np.arange(100.0))
        assert profile.shape == (5,)
        assert profile[0] < profile[-1]

    def test_monotone_in_percentile(self):
        rng = np.random.default_rng(3)
        profile = percentile_profile(rng.normal(size=500))
        assert np.all(np.diff(profile) >= 0)

    def test_custom_percentiles(self):
        profile = percentile_profile([0.0, 100.0], percentiles=[0, 100])
        assert profile[0] == 0.0
        assert profile[1] == 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_profile([])


class TestCdf:
    def test_fraction_at_or_below(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_or_below(2.0) == pytest.approx(0.5)
        assert cdf.fraction_at_or_below(0.5) == 0.0
        assert cdf.fraction_at_or_below(10.0) == 1.0

    def test_fraction_above_complements(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_above(2.0) == pytest.approx(0.5)

    def test_quantile_inverts(self):
        values = np.arange(1, 101, dtype=float)
        cdf = empirical_cdf(values)
        assert cdf.quantile(0.5) == pytest.approx(50.0)
        assert cdf.quantile(1.0) == 100.0

    def test_quantile_bounds_checked(self):
        cdf = empirical_cdf([1.0, 2.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestHistogramFractions:
    def test_fractions_sum_to_at_most_one(self):
        fractions = histogram_fractions([1, 2, 3, 4, 5], bin_edges=[0, 2.5, 6])
        assert fractions.sum() == pytest.approx(1.0)
        assert fractions[0] == pytest.approx(2 / 5)

    def test_out_of_range_samples_excluded(self):
        fractions = histogram_fractions([1.0, 100.0], bin_edges=[0, 2])
        assert fractions.sum() == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            histogram_fractions([], bin_edges=[0, 1])
