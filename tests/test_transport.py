"""The TCP shard transport: framing, server lifecycle, failure modes.

Equivalence of the ``tcp`` backend (bit-identical queries,
byte-identical exports) is proven by the backend-parametrized suites
in ``test_sharded_store.py`` / ``test_sim_equivalence.py``; this file
covers what is specific to the transport itself: the length-prefixed
frame codec (pickle and binary column frames, including the
per-session capability negotiation with PR 4 peers), ``host:port``
parsing, the connect-retry window, the one-connection-one-shard
server (``ShardServer``), both shutdown paths (``stop`` message vs
clean EOF), the pipelined ingest path (bounded queue, ordering,
close-with-frames-in-flight) and — the operational headline — that a
server dying *or hanging* mid-run surfaces as a clear error on the
client, never a hang.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.telemetry.sharding import ShardedMetricStore
from repro.telemetry.store import MetricStore, ServerInterner
from repro.telemetry.transport import (
    MAX_FRAME_BYTES,
    TcpTransport,
    format_address,
    parse_address,
)
from repro.telemetry.workers import ShardServer, TcpShardClient


def _loopback_pair():
    """A connected (client transport, server transport) pair."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client_sock = socket.create_connection(listener.getsockname())
    server_sock, _ = listener.accept()
    listener.close()
    return TcpTransport(client_sock), TcpTransport(server_sock)


class TestAddressSyntax:
    def test_roundtrip(self):
        assert parse_address("127.0.0.1:9400") == ("127.0.0.1", 9400)
        assert format_address("127.0.0.1", 9400) == "127.0.0.1:9400"
        assert parse_address("host:0") == ("host", 0)

    def test_ipv6_brackets(self):
        """IPv6 hosts are supported, RFC-3986 bracketed form only."""
        assert parse_address("[::1]:9400") == ("::1", 9400)
        assert parse_address("[fe80::1]:0") == ("fe80::1", 0)
        assert format_address("::1", 9400) == "[::1]:9400"
        assert parse_address(format_address("::1", 9400)) == ("::1", 9400)

    @pytest.mark.parametrize(
        "bad",
        [
            "no-port",
            ":9400",
            "host:",
            "host:notaport",
            "host:70000",
            "",
            ":",
            "host: 99",      # int() would accept the space
            "host:9_9",      # int() would accept the underscore
            "host:+99",      # int() would accept the sign
            "host:-1",
            "::1:9400",      # bare-colon IPv6 is ambiguous: brackets required
            "[::1:9400",     # unbalanced brackets
            "::1]:9400",
            "[]:9400",       # empty bracketed host
        ],
    )
    def test_invalid_addresses_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid address"):
            parse_address(bad)

    def test_error_names_the_bad_input(self):
        with pytest.raises(ValueError, match="notaport"):
            parse_address("host:notaport")
        with pytest.raises(ValueError, match="70001"):
            parse_address("host:70001")


class TestFraming:
    def test_message_roundtrip_including_ndarrays(self):
        client, server = _loopback_pair()
        try:
            payload = (
                "ingest",
                ["srv-0", "srv-1"],
                [("record_columns", (np.arange(1000), np.ones(1000)))],
            )
            client.send(payload)
            kind, names, commands = server.recv()
            assert kind == "ingest" and names == ["srv-0", "srv-1"]
            np.testing.assert_array_equal(commands[0][1][0], np.arange(1000))
            # And the other direction, several frames back to back.
            for i in range(5):
                server.send(("ok", i))
            assert [client.recv() for _ in range(5)] == [
                ("ok", i) for i in range(5)
            ]
        finally:
            client.close()
            server.close()

    def test_clean_eof_raises_eoferror(self):
        client, server = _loopback_pair()
        client.close()
        with pytest.raises(EOFError):
            server.recv()
        server.close()

    def test_mid_frame_eof_raises_connection_error(self):
        client, server = _loopback_pair()
        # A header promising 100 bytes, then nothing: the peer died
        # mid-frame, which must not look like a clean goodbye.
        client._sock.sendall((100).to_bytes(8, "big") + b"partial")
        client.close()
        with pytest.raises(ConnectionError):
            server.recv()
        server.close()

    def test_oversized_frame_rejected(self):
        client, server = _loopback_pair()
        client._sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
        with pytest.raises(ConnectionError, match="oversized"):
            server.recv()
        client.close()
        server.close()

    def test_connect_refused_names_the_address(self):
        # Grab a port and close it so nothing listens there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionError, match=f"127.0.0.1:{port}"):
            TcpTransport.connect(f"127.0.0.1:{port}", timeout=0.3)

    def test_connect_retries_until_server_binds(self):
        """The two-terminal race: client dials before the server binds."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        server = ShardServer(f"127.0.0.1:{port}")

        def start_late():
            server.start()

        timer = threading.Timer(0.2, start_late)
        timer.start()
        try:
            transport = TcpTransport.connect(f"127.0.0.1:{port}", timeout=5.0)
            transport.close()
        finally:
            timer.join()
            server.stop()


class TestShardServer:
    def test_ephemeral_port_reported(self):
        with ShardServer("127.0.0.1:0") as server:
            host, port = parse_address(server.address)
            assert host == "127.0.0.1" and port > 0

    def test_each_session_is_an_independent_shard(self):
        """Two sessions to one server = two stores, not one."""
        interner = ServerInterner()
        with ShardServer() as server:
            a = TcpShardClient(0, interner, server.address)
            b = TcpShardClient(1, interner, server.address)
            idx = interner.intern("s0")
            a.record_columns(
                "P", "dc", "cpu",
                np.array([0]), np.array([idx], dtype=np.int64), np.ones(1),
            )
            assert a.sample_count() == 1
            assert b.sample_count() == 0  # b's store never saw the row
            a.close()
            b.close()

    def test_client_eof_does_not_kill_server(self):
        """A vanishing client ends its session, never the server."""
        interner = ServerInterner()
        with ShardServer() as server:
            first = TcpShardClient(0, interner, server.address)
            first._transport.close()  # vanish without a stop message
            second = TcpShardClient(1, interner, server.address)
            assert second.sample_count() == 0  # server still answering
            second.close()

    def test_max_sessions_ends_serve_forever(self):
        server = ShardServer("127.0.0.1:0", max_sessions=1)
        server.start()
        interner = ServerInterner()
        client = TcpShardClient(0, interner, server.address)
        done = threading.Event()

        def wait():
            server.serve_forever()
            done.set()

        waiter = threading.Thread(target=wait)
        waiter.start()
        assert client.sample_count() == 0
        client.close()
        assert done.wait(10), "serve_forever did not return after last session"
        waiter.join()
        server.stop()

    def test_client_death_with_reply_in_flight_keeps_server(self):
        """A client that vanishes before reading its RPC reply must
        end only its own session — the reply send's broken pipe must
        not crash the serving thread or the server."""
        interner = ServerInterner()
        with ShardServer() as server:
            rude = TcpTransport.connect(server.address)
            rude.send(("call", [], "sample_count", (), {}))
            rude.close()  # gone before the reply lands
            survivor = TcpShardClient(0, interner, server.address)
            assert survivor.sample_count() == 0
            survivor.close()

    def test_ended_sessions_are_pruned(self):
        """The session list tracks live sessions, not history —
        a long-running server must not accumulate dead entries."""
        interner = ServerInterner()
        with ShardServer() as server:
            for shard_id in range(5):
                client = TcpShardClient(shard_id, interner, server.address)
                assert client.sample_count() == 0
                client.close()
            deadline = threading.Event()
            for _ in range(100):  # session teardown is asynchronous
                if not server._sessions:
                    break
                deadline.wait(0.05)
            assert server._sessions == []

    def test_stop_is_idempotent(self):
        server = ShardServer().start()
        server.stop()
        server.stop()

    def test_double_start_rejected(self):
        with ShardServer() as server:
            with pytest.raises(RuntimeError):
                server.start()


class TestServerFailure:
    """Killing the server mid-run must fail loudly, never hang."""

    def _filled_store(self, server, n_shards=2):
        store = ShardedMetricStore(
            backend="tcp", shard_addrs=[server.address] * n_shards
        )
        ids = store.intern_servers([f"s{i}" for i in range(8)])
        for window in range(4):
            store.record_batch("P", "dc", "cpu", window, ids, np.ones(8))
        assert store.sample_count() == 32
        return store, ids

    def test_query_after_server_death_raises_clearly(self):
        server = ShardServer().start()
        store, ids = self._filled_store(server)
        address = server.address
        server.stop()  # the "kill -9 the server box" stand-in
        # Buffer fresh rows parent-side, then force them over the dead
        # wire: either the flush's send or the query's recv must raise
        # a RuntimeError naming the shard's address — within seconds,
        # not by hanging on a half-open socket.
        store.record_batch("P", "dc", "cpu", 99, ids, np.ones(8))
        with pytest.raises(RuntimeError, match=address.split(":")[0]):
            store.sample_count()
        store.close()  # still clean: close after failure is a no-op path

    def test_ingest_flush_after_server_death_raises(self):
        server = ShardServer().start()
        interner = ServerInterner()
        client = TcpShardClient(0, interner, server.address, flush_rows=4)
        server.stop()
        idx = np.array([interner.intern("s0")], dtype=np.int64)
        with pytest.raises(RuntimeError, match="connection lost"):
            # Repeated sends must eventually trip the threshold flush
            # and surface the dead peer (first sends may land in OS
            # buffers before the reset is observed).
            for window in range(1024):
                client.record_columns(
                    "P", "dc", "cpu",
                    np.array([window]), idx, np.ones(1),
                )
        client.close()

    def test_connect_to_never_started_server_fails_fast(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionError):
            ShardedMetricStore(
                backend="tcp",
                shard_addrs=[f"127.0.0.1:{port}"],
                connect_timeout=0.3,
            )

    def test_bad_address_in_list_leaves_no_leaked_sessions(self, shard_server):
        """A typo in address N must not leave sessions 0..N-1 dangling:
        the facade validates the whole list before dialling anything."""
        with pytest.raises(ValueError, match="notaport"):
            ShardedMetricStore(
                backend="tcp",
                shard_addrs=[shard_server.address, "host:notaport"],
            )
        # The good address was never dialled; the shared server has no
        # session to prune (give teardown a moment to be sure).
        deadline = time.monotonic() + 2.0
        while shard_server._sessions and time.monotonic() < deadline:
            time.sleep(0.02)
        assert shard_server._sessions == []


def _serving_listener(serve, host="127.0.0.1"):
    """A raw loopback listener whose first connection is handed to
    ``serve(TcpTransport)`` on a daemon thread.  Returns the address."""
    listener = socket.socket()
    listener.bind((host, 0))
    listener.listen(1)

    def accept_one():
        conn, _addr = listener.accept()
        listener.close()
        serve(TcpTransport(conn))

    threading.Thread(target=accept_one, daemon=True).start()
    return format_address(*listener.getsockname()[:2])


def _pr4_serve(transport):
    """A faithful PR 4 serve loop: pickle frames only, and *no*
    ``protocol_capabilities`` handler — the probe resolves against the
    store and answers ``AttributeError``, exactly like the old code."""
    store = MetricStore()
    while True:
        try:
            message = transport.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "ingest":
            for name in message[1]:
                store.interner.intern(name)
            for method, args in message[2]:
                getattr(store, method)(*args)
        elif kind == "call":
            for name in message[1]:
                store.interner.intern(name)
            try:
                attr = getattr(store, message[2])
                result = attr(*message[3], **message[4]) if callable(attr) else attr
                reply = ("ok", result)
            except BaseException as error:  # noqa: BLE001
                reply = ("err", error)
            transport.send(reply)
        elif kind == "stop":
            break
    transport.close()


class TestBinaryFrames:
    """The kind-1 binary column frame and its per-session negotiation."""

    def _ingest_message(self, n_rows=1000):
        return (
            ["srv-0", "srv-1"],
            [
                (
                    "record_columns",
                    (
                        "P", "dc", "cpu",
                        np.arange(n_rows, dtype=np.int64),
                        np.arange(n_rows, dtype=np.int64) % 7,
                        np.linspace(0.0, 1.0, n_rows),
                    ),
                ),
                (
                    "record_columns",
                    (
                        "P", "dc", "rps",
                        np.arange(4, dtype=np.int64),
                        np.zeros(4, dtype=np.int64),
                        np.full(4, 2.5),
                    ),
                ),
            ],
        )

    def test_binary_roundtrip_bit_identical(self):
        client, server = _loopback_pair()
        try:
            client.binary_frames = True
            names, commands = self._ingest_message()
            client.send_ingest(names, commands)
            kind, got_names, got_commands = server.recv()
            assert kind == "ingest" and got_names == names
            assert len(got_commands) == len(commands)
            for (method, args), (got_method, got_args) in zip(
                commands, got_commands
            ):
                assert got_method == method
                assert got_args[:3] == args[:3]
                for sent, received in zip(args[3:], got_args[3:]):
                    assert received.dtype == sent.dtype
                    np.testing.assert_array_equal(received, sent)
                    # The store takes ownership of decoded arrays, so
                    # they must be writable like unpickled ones.
                    assert received.flags.writeable
        finally:
            client.close()
            server.close()

    def test_unnegotiated_session_sends_pickle(self):
        """Without the capability handshake the encoder must not be
        used, whatever the message looks like."""
        client, server = _loopback_pair()
        try:
            assert client.binary_frames is False
            names, commands = self._ingest_message(n_rows=8)
            client.send_ingest(names, commands)
            message = server.recv()
            assert message[0] == "ingest" and message[1] == names
        finally:
            client.close()
            server.close()

    def test_record_fast_commands_fall_back_to_pickle(self):
        """A compatibility command in the batch degrades the whole
        frame to pickle — never a partial/mixed encoding."""
        client, server = _loopback_pair()
        try:
            client.binary_frames = True
            commands = [
                ("record_fast", (3, "s0", "P", "dc", "cpu", 1.5)),
                (
                    "record_columns",
                    (
                        "P", "dc", "cpu",
                        np.arange(2, dtype=np.int64),
                        np.zeros(2, dtype=np.int64),
                        np.ones(2),
                    ),
                ),
            ]
            client.send_ingest(["s0"], commands)
            kind, names, got = server.recv()
            assert kind == "ingest"
            assert got[0] == ("record_fast", (3, "s0", "P", "dc", "cpu", 1.5))
            np.testing.assert_array_equal(got[1][1][3], np.arange(2))
        finally:
            client.close()
            server.close()

    def test_client_negotiates_binary_with_live_server(self, shard_server):
        interner = ServerInterner()
        client = TcpShardClient(0, interner, shard_server.address)
        try:
            assert client._transport.binary_frames is True
            idx = np.array([interner.intern("s0")], dtype=np.int64)
            for window in range(5):
                client.record_columns(
                    "P", "dc", "cpu", np.array([window]), idx, np.ones(1)
                )
            assert client.sample_count() == 5
            series = client.pool_window_aggregate("P", "cpu", reducer="sum")
            np.testing.assert_array_equal(series.windows, np.arange(5))
        finally:
            client.close()

    def test_pr4_peer_falls_back_to_pickle(self):
        """New client, old server: the probe's AttributeError answer
        downgrades the session to pickle frames and everything works."""
        address = _serving_listener(_pr4_serve)
        interner = ServerInterner()
        client = TcpShardClient(0, interner, address)
        try:
            assert client._transport.binary_frames is False
            idx = np.array([interner.intern("s0")], dtype=np.int64)
            client.record_columns(
                "P", "dc", "cpu", np.array([7]), idx, np.full(1, 3.0)
            )
            assert client.sample_count() == 1
        finally:
            client.close()

    def test_binary_frames_false_skips_probe(self, shard_server):
        interner = ServerInterner()
        client = TcpShardClient(
            0, interner, shard_server.address, binary_frames=False
        )
        try:
            assert client._transport.binary_frames is False
            idx = np.array([interner.intern("s0")], dtype=np.int64)
            client.record_columns("P", "dc", "cpu", np.array([0]), idx, np.ones(1))
            assert client.sample_count() == 1
        finally:
            client.close()

    def test_wire_formats_store_identically(self, shard_server):
        """Pickle session and binary session build bit-identical shards."""
        results = []
        for binary in (False, True):
            interner = ServerInterner()
            client = TcpShardClient(
                0, interner, shard_server.address,
                binary_frames=binary, pipeline_depth=0,
            )
            try:
                ids = np.array(
                    [interner.intern(f"s{i}") for i in range(6)], dtype=np.int64
                )
                rng = np.random.default_rng(5)
                for window in range(8):
                    client.record_columns(
                        "P", "dc", "cpu",
                        np.full(6, window, dtype=np.int64),
                        ids,
                        rng.uniform(0, 100, 6),
                    )
                results.append(
                    (
                        client.sample_count(),
                        client.pool_window_aggregate("P", "cpu", reducer="sum"),
                    )
                )
            finally:
                client.close()
        assert results[0][0] == results[1][0] == 48
        np.testing.assert_array_equal(results[0][1].values, results[1][1].values)


class TestIoTimeout:
    """A hung-but-alive peer must become a clear error, not a hang."""

    def test_rpc_against_hung_peer_raises_named_error(self):
        def hang(transport):
            # Accept frames forever, never answer: alive but wedged.
            try:
                while True:
                    transport.recv()
            except (EOFError, OSError):
                pass

        address = _serving_listener(hang)
        interner = ServerInterner()
        client = TcpShardClient(
            3, interner, address, io_timeout=0.4, binary_frames=False,
            pipeline_depth=0,
        )
        started = time.monotonic()
        with pytest.raises(RuntimeError) as excinfo:
            client.sample_count()
        elapsed = time.monotonic() - started
        message = str(excinfo.value)
        assert "shard 3" in message and address in message
        assert "timed out" in message
        assert elapsed < 5.0, "timeout did not bound the hung RPC"
        client.close()

    def test_io_timeout_zero_disables_the_bound(self, shard_server):
        """0 (the CLI's 'off') must behave like None, not 'instant'."""
        interner = ServerInterner()
        client = TcpShardClient(0, interner, shard_server.address, io_timeout=0)
        try:
            assert client.sample_count() == 0
        finally:
            client.close()

    def test_probe_against_hung_peer_is_bounded_too(self):
        def hang(transport):
            try:
                while True:
                    transport.recv()
            except (EOFError, OSError):
                pass

        address = _serving_listener(hang)
        with pytest.raises(RuntimeError, match="timed out"):
            TcpShardClient(0, ServerInterner(), address, io_timeout=0.4)


class TestPipelinedIngest:
    """The bounded send queue: backpressure, ordering, clean teardown."""

    def _slow_reader(self):
        """An accepted connection nobody reads until ``release`` is set;
        afterwards a PR 4-faithful loop drains it.  A small receive
        buffer — set on the *listener*, before accept, because
        shrinking it on a live connection stalls the TCP window —
        makes the writer thread block in sendall quickly."""
        release = threading.Event()
        store = MetricStore()
        done = threading.Event()
        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 32 * 1024)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def serve():
            conn, _addr = listener.accept()
            listener.close()
            transport = TcpTransport(conn)
            release.wait(30)
            try:
                while True:
                    message = transport.recv()
                    if message[0] == "ingest":
                        for name in message[1]:
                            store.interner.intern(name)
                        for method, args in message[2]:
                            getattr(store, method)(*args)
                    elif message[0] == "call":
                        attr = getattr(store, message[2])
                        result = (
                            attr(*message[3], **message[4])
                            if callable(attr)
                            else attr
                        )
                        transport.send(("ok", result))
                    else:
                        break
            except (EOFError, OSError):
                pass
            transport.close()
            done.set()

        threading.Thread(target=serve, daemon=True).start()
        address = format_address(*listener.getsockname()[:2])
        return address, release, store, done

    #: Rows per frame in the slow-reader tests: ~9.6 MB pickled, far
    #: beyond any combination of loopback socket buffers, so one frame
    #: reliably wedges the writer's sendall until the reader drains.
    BIG_ROWS = 400_000

    def _big_batch(self, interner, window, rows=BIG_ROWS):
        interner.intern("s0")
        return (
            np.full(rows, window, dtype=np.int64),
            np.zeros(rows, dtype=np.int64),
            np.full(rows, 1.0),
        )

    def test_queue_depth_is_bounded_and_backpressures(self):
        address, release, _store, _done = self._slow_reader()
        interner = ServerInterner()
        client = TcpShardClient(
            0, interner, address,
            flush_rows=1, pipeline_depth=2,
            binary_frames=False, io_timeout=30,
        )
        try:
            blocked = threading.Event()
            finished = threading.Event()

            def producer():
                # Each flush is ~9.6 MB — far beyond the socket buffers,
                # so the writer wedges on frame 1 and the queue fills.
                for window in range(6):
                    windows, idx, values = self._big_batch(interner, window)
                    client.record_columns("P", "dc", "cpu", windows, idx, values)
                    if window >= 3:
                        blocked.set()  # should never get this far early
                finished.set()

            thread = threading.Thread(target=producer, daemon=True)
            thread.start()
            # The producer must stall: depth 2 means at most ~3 frames
            # absorbed (1 in flight + 2 queued) before flush blocks.
            assert not blocked.wait(1.0), (
                "producer ran past the pipeline depth — queue is unbounded"
            )
            assert client._unsent <= 2
            release.set()  # slow reader starts draining
            assert finished.wait(30), "producer never unblocked"
            # Query-after-flush barrier: every row is visible.
            assert client.sample_count() == 6 * self.BIG_ROWS
        finally:
            client.close()

    def test_ordering_query_sees_all_prior_ingest(self, shard_server):
        interner = ServerInterner()
        client = TcpShardClient(
            0, interner, shard_server.address,
            flush_rows=8, pipeline_depth=4,
        )
        try:
            ids = np.array(
                [interner.intern(f"s{i}") for i in range(4)], dtype=np.int64
            )
            total = 0
            for window in range(50):
                client.record_columns(
                    "P", "dc", "cpu",
                    np.full(4, window, dtype=np.int64), ids, np.ones(4),
                )
                total += 4
                if window % 9 == 0:
                    # Interleaved reads: each must observe everything
                    # buffered so far, despite frames still in flight.
                    assert client.sample_count() == total
            assert client.sample_count() == total
            series = client.pool_window_aggregate("P", "cpu", reducer="count")
            np.testing.assert_array_equal(series.windows, np.arange(50))
        finally:
            client.close()

    def test_close_with_frames_in_flight_does_not_deadlock(self):
        address, release, _store, _done = self._slow_reader()
        interner = ServerInterner()
        # io_timeout far beyond the test budget: close() must free the
        # wedged writer itself (by aborting the in-flight send), not
        # ride on the I/O timeout expiring.
        client = TcpShardClient(
            0, interner, address,
            flush_rows=1, pipeline_depth=2,
            binary_frames=False, io_timeout=30,
        )
        try:
            # Two frames: one wedges in the writer's sendall, one sits
            # queued — close() must deal with both.  (A third flush
            # would backpressure this thread, which is the *other*
            # test's subject.)
            for window in range(2):
                windows, idx, values = self._big_batch(interner, window)
                client.record_columns("P", "dc", "cpu", windows, idx, values)
            assert client._unsent == 2  # 1 wedged in flight + 1 queued
        finally:
            closed = threading.Event()

            def close():
                client.close()
                closed.set()

            thread = threading.Thread(target=close, daemon=True)
            thread.start()
            assert closed.wait(15), "close() deadlocked on in-flight frames"
            release.set()

    def test_writer_error_surfaces_on_next_flush(self):
        server = ShardServer().start()
        interner = ServerInterner()
        client = TcpShardClient(
            0, interner, server.address, flush_rows=1, pipeline_depth=4,
        )
        server.stop()
        idx = np.array([interner.intern("s0")], dtype=np.int64)
        with pytest.raises(RuntimeError, match="shard 0"):
            for window in range(4096):
                client.record_columns(
                    "P", "dc", "cpu", np.array([window]), idx, np.ones(1)
                )
        client.close()

    def test_pipeline_depth_zero_is_synchronous(self, shard_server):
        interner = ServerInterner()
        client = TcpShardClient(
            0, interner, shard_server.address, flush_rows=1, pipeline_depth=0,
        )
        try:
            idx = np.array([interner.intern("s0")], dtype=np.int64)
            client.record_columns("P", "dc", "cpu", np.array([0]), idx, np.ones(1))
            assert client._writer is None  # no writer thread ever started
            assert client.sample_count() == 1
        finally:
            client.close()

    def test_negative_pipeline_depth_rejected(self):
        with pytest.raises(ValueError):
            ShardedMetricStore(n_shards=2, pipeline_depth=-1)


class TestIPv6:
    def test_server_and_client_over_ipv6_loopback(self):
        if not socket.has_ipv6:  # pragma: no cover - kernel without v6
            pytest.skip("IPv6 not available")
        try:
            server = ShardServer("[::1]:0").start()
        except OSError:  # pragma: no cover - v6 loopback disabled
            pytest.skip("IPv6 loopback not usable")
        try:
            assert server.address.startswith("[::1]:")
            interner = ServerInterner()
            client = TcpShardClient(0, interner, server.address)
            idx = np.array([interner.intern("s0")], dtype=np.int64)
            client.record_columns("P", "dc", "cpu", np.array([0]), idx, np.ones(1))
            assert client.sample_count() == 1
            client.close()
        finally:
            server.stop()
