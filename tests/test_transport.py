"""The TCP shard transport: framing, server lifecycle, failure modes.

Equivalence of the ``tcp`` backend (bit-identical queries,
byte-identical exports) is proven by the backend-parametrized suites
in ``test_sharded_store.py`` / ``test_sim_equivalence.py``; this file
covers what is specific to the transport itself: the length-prefixed
frame codec, ``host:port`` parsing, the connect-retry window, the
one-connection-one-shard server (``ShardServer``), both shutdown
paths (``stop`` message vs clean EOF), and — the operational headline
— that a server dying mid-run surfaces as a clear error on the
client, never a hang.
"""

import socket
import threading

import numpy as np
import pytest

from repro.telemetry.sharding import ShardedMetricStore
from repro.telemetry.store import ServerInterner
from repro.telemetry.transport import (
    MAX_FRAME_BYTES,
    TcpTransport,
    format_address,
    parse_address,
)
from repro.telemetry.workers import ShardServer, TcpShardClient


def _loopback_pair():
    """A connected (client transport, server transport) pair."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client_sock = socket.create_connection(listener.getsockname())
    server_sock, _ = listener.accept()
    listener.close()
    return TcpTransport(client_sock), TcpTransport(server_sock)


class TestAddressSyntax:
    def test_roundtrip(self):
        assert parse_address("127.0.0.1:9400") == ("127.0.0.1", 9400)
        assert format_address("127.0.0.1", 9400) == "127.0.0.1:9400"
        assert parse_address("host:0") == ("host", 0)

    @pytest.mark.parametrize(
        "bad", ["no-port", ":9400", "host:", "host:notaport", "host:70000"]
    )
    def test_invalid_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestFraming:
    def test_message_roundtrip_including_ndarrays(self):
        client, server = _loopback_pair()
        try:
            payload = (
                "ingest",
                ["srv-0", "srv-1"],
                [("record_columns", (np.arange(1000), np.ones(1000)))],
            )
            client.send(payload)
            kind, names, commands = server.recv()
            assert kind == "ingest" and names == ["srv-0", "srv-1"]
            np.testing.assert_array_equal(commands[0][1][0], np.arange(1000))
            # And the other direction, several frames back to back.
            for i in range(5):
                server.send(("ok", i))
            assert [client.recv() for _ in range(5)] == [
                ("ok", i) for i in range(5)
            ]
        finally:
            client.close()
            server.close()

    def test_clean_eof_raises_eoferror(self):
        client, server = _loopback_pair()
        client.close()
        with pytest.raises(EOFError):
            server.recv()
        server.close()

    def test_mid_frame_eof_raises_connection_error(self):
        client, server = _loopback_pair()
        # A header promising 100 bytes, then nothing: the peer died
        # mid-frame, which must not look like a clean goodbye.
        client._sock.sendall((100).to_bytes(8, "big") + b"partial")
        client.close()
        with pytest.raises(ConnectionError):
            server.recv()
        server.close()

    def test_oversized_frame_rejected(self):
        client, server = _loopback_pair()
        client._sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
        with pytest.raises(ConnectionError, match="oversized"):
            server.recv()
        client.close()
        server.close()

    def test_connect_refused_names_the_address(self):
        # Grab a port and close it so nothing listens there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionError, match=f"127.0.0.1:{port}"):
            TcpTransport.connect(f"127.0.0.1:{port}", timeout=0.3)

    def test_connect_retries_until_server_binds(self):
        """The two-terminal race: client dials before the server binds."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        server = ShardServer(f"127.0.0.1:{port}")

        def start_late():
            server.start()

        timer = threading.Timer(0.2, start_late)
        timer.start()
        try:
            transport = TcpTransport.connect(f"127.0.0.1:{port}", timeout=5.0)
            transport.close()
        finally:
            timer.join()
            server.stop()


class TestShardServer:
    def test_ephemeral_port_reported(self):
        with ShardServer("127.0.0.1:0") as server:
            host, port = parse_address(server.address)
            assert host == "127.0.0.1" and port > 0

    def test_each_session_is_an_independent_shard(self):
        """Two sessions to one server = two stores, not one."""
        interner = ServerInterner()
        with ShardServer() as server:
            a = TcpShardClient(0, interner, server.address)
            b = TcpShardClient(1, interner, server.address)
            idx = interner.intern("s0")
            a.record_columns(
                "P", "dc", "cpu",
                np.array([0]), np.array([idx], dtype=np.int64), np.ones(1),
            )
            assert a.sample_count() == 1
            assert b.sample_count() == 0  # b's store never saw the row
            a.close()
            b.close()

    def test_client_eof_does_not_kill_server(self):
        """A vanishing client ends its session, never the server."""
        interner = ServerInterner()
        with ShardServer() as server:
            first = TcpShardClient(0, interner, server.address)
            first._transport.close()  # vanish without a stop message
            second = TcpShardClient(1, interner, server.address)
            assert second.sample_count() == 0  # server still answering
            second.close()

    def test_max_sessions_ends_serve_forever(self):
        server = ShardServer("127.0.0.1:0", max_sessions=1)
        server.start()
        interner = ServerInterner()
        client = TcpShardClient(0, interner, server.address)
        done = threading.Event()

        def wait():
            server.serve_forever()
            done.set()

        waiter = threading.Thread(target=wait)
        waiter.start()
        assert client.sample_count() == 0
        client.close()
        assert done.wait(10), "serve_forever did not return after last session"
        waiter.join()
        server.stop()

    def test_client_death_with_reply_in_flight_keeps_server(self):
        """A client that vanishes before reading its RPC reply must
        end only its own session — the reply send's broken pipe must
        not crash the serving thread or the server."""
        interner = ServerInterner()
        with ShardServer() as server:
            rude = TcpTransport.connect(server.address)
            rude.send(("call", [], "sample_count", (), {}))
            rude.close()  # gone before the reply lands
            survivor = TcpShardClient(0, interner, server.address)
            assert survivor.sample_count() == 0
            survivor.close()

    def test_ended_sessions_are_pruned(self):
        """The session list tracks live sessions, not history —
        a long-running server must not accumulate dead entries."""
        interner = ServerInterner()
        with ShardServer() as server:
            for shard_id in range(5):
                client = TcpShardClient(shard_id, interner, server.address)
                assert client.sample_count() == 0
                client.close()
            deadline = threading.Event()
            for _ in range(100):  # session teardown is asynchronous
                if not server._sessions:
                    break
                deadline.wait(0.05)
            assert server._sessions == []

    def test_stop_is_idempotent(self):
        server = ShardServer().start()
        server.stop()
        server.stop()

    def test_double_start_rejected(self):
        with ShardServer() as server:
            with pytest.raises(RuntimeError):
                server.start()


class TestServerFailure:
    """Killing the server mid-run must fail loudly, never hang."""

    def _filled_store(self, server, n_shards=2):
        store = ShardedMetricStore(
            backend="tcp", shard_addrs=[server.address] * n_shards
        )
        ids = store.intern_servers([f"s{i}" for i in range(8)])
        for window in range(4):
            store.record_batch("P", "dc", "cpu", window, ids, np.ones(8))
        assert store.sample_count() == 32
        return store, ids

    def test_query_after_server_death_raises_clearly(self):
        server = ShardServer().start()
        store, ids = self._filled_store(server)
        address = server.address
        server.stop()  # the "kill -9 the server box" stand-in
        # Buffer fresh rows parent-side, then force them over the dead
        # wire: either the flush's send or the query's recv must raise
        # a RuntimeError naming the shard's address — within seconds,
        # not by hanging on a half-open socket.
        store.record_batch("P", "dc", "cpu", 99, ids, np.ones(8))
        with pytest.raises(RuntimeError, match=address.split(":")[0]):
            store.sample_count()
        store.close()  # still clean: close after failure is a no-op path

    def test_ingest_flush_after_server_death_raises(self):
        server = ShardServer().start()
        interner = ServerInterner()
        client = TcpShardClient(0, interner, server.address, flush_rows=4)
        server.stop()
        idx = np.array([interner.intern("s0")], dtype=np.int64)
        with pytest.raises(RuntimeError, match="connection lost"):
            # Repeated sends must eventually trip the threshold flush
            # and surface the dead peer (first sends may land in OS
            # buffers before the reset is observed).
            for window in range(1024):
                client.record_columns(
                    "P", "dc", "cpu",
                    np.array([window]), idx, np.ones(1),
                )
        client.close()

    def test_connect_to_never_started_server_fails_fast(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionError):
            ShardedMetricStore(
                backend="tcp",
                shard_addrs=[f"127.0.0.1:{port}"],
                connect_timeout=0.3,
            )
