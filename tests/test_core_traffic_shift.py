"""Tests for geo traffic shifting."""

import numpy as np
import pytest

from repro.core.traffic_shift import (
    TrafficShiftAnalysis,
    balance_window,
)
from repro.workload.diurnal import DiurnalPattern, WINDOWS_PER_DAY


class TestBalanceWindow:
    def test_conserves_total(self):
        demand = np.array([100.0, 10.0, 50.0])
        capacity = np.array([60.0, 60.0, 60.0])
        shifted = balance_window(demand, capacity, max_remote_fraction=0.5)
        assert shifted.sum() == pytest.approx(demand.sum())

    def test_moves_from_hot_to_cold(self):
        demand = np.array([100.0, 10.0])
        capacity = np.array([60.0, 60.0])
        shifted = balance_window(demand, capacity, max_remote_fraction=0.5)
        assert shifted[0] < 100.0
        assert shifted[1] > 10.0

    def test_remote_fraction_cap_respected(self):
        demand = np.array([100.0, 0.0])
        capacity = np.array([10.0, 1000.0])
        shifted = balance_window(demand, capacity, max_remote_fraction=0.2)
        # At most 20 % of DC0's demand may leave.
        assert shifted[0] >= 80.0 - 1e-9

    def test_zero_fraction_is_identity(self):
        demand = np.array([100.0, 10.0])
        capacity = np.array([50.0, 50.0])
        shifted = balance_window(demand, capacity, max_remote_fraction=0.0)
        np.testing.assert_allclose(shifted, demand)

    def test_balanced_input_untouched(self):
        demand = np.array([50.0, 50.0])
        capacity = np.array([100.0, 100.0])
        shifted = balance_window(demand, capacity, max_remote_fraction=0.5)
        np.testing.assert_allclose(shifted, demand)

    def test_zero_demand(self):
        shifted = balance_window(
            np.zeros(3), np.ones(3), max_remote_fraction=0.5
        )
        np.testing.assert_allclose(shifted, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            balance_window(np.ones(2), np.ones(3), 0.5)
        with pytest.raises(ValueError):
            balance_window(np.ones(2), np.zeros(2), 0.5)
        with pytest.raises(ValueError):
            balance_window(np.ones(2), np.ones(2), 1.5)


class TestTrafficShiftAnalysis:
    def _rotating_demand(self, n_dcs=4, days=2):
        """Diurnal peaks rotating around the globe."""
        out = {}
        for i in range(n_dcs):
            pattern = DiurnalPattern(
                base_rps=1_000.0,
                daily_amplitude=0.5,
                timezone_offset_hours=24.0 * i / n_dcs,
                weekend_factor=1.0,
            )
            out[f"DC{i + 1}"] = pattern.demand_series(days * WINDOWS_PER_DAY)
        return out

    def test_rotating_peaks_yield_savings(self):
        analysis = TrafficShiftAnalysis(max_remote_fraction=0.3)
        report = analysis.analyze(self._rotating_demand(), max_rps_per_server=100.0)
        # Global peak << sum of local peaks, so shifting saves capacity.
        assert report.capacity_savings > 0.1
        assert report.peak_utilization_after <= 1.0 + 1e-9
        assert 0.0 < report.shifted_fraction_mean <= 0.3
        assert "traffic shift" in report.describe()

    def test_no_shifting_no_savings(self):
        analysis = TrafficShiftAnalysis(max_remote_fraction=0.0)
        report = analysis.analyze(self._rotating_demand(), max_rps_per_server=100.0)
        assert report.capacity_savings <= 0.05
        assert report.shifted_fraction_mean == 0.0

    def test_synchronized_peaks_no_savings(self):
        # Same timezone everywhere: nothing to gain from shifting.
        demand = {
            f"DC{i}": DiurnalPattern(
                base_rps=1_000.0, weekend_factor=1.0
            ).demand_series(WINDOWS_PER_DAY)
            for i in range(3)
        }
        report = TrafficShiftAnalysis(max_remote_fraction=0.3).analyze(
            demand, max_rps_per_server=100.0
        )
        assert report.capacity_savings < 0.1

    def test_more_freedom_more_savings(self):
        demand = self._rotating_demand()
        low = TrafficShiftAnalysis(max_remote_fraction=0.1).analyze(
            demand, max_rps_per_server=100.0
        )
        high = TrafficShiftAnalysis(max_remote_fraction=0.5).analyze(
            demand, max_rps_per_server=100.0
        )
        assert high.capacity_savings >= low.capacity_savings - 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficShiftAnalysis(max_remote_fraction=2.0)
        analysis = TrafficShiftAnalysis()
        with pytest.raises(ValueError):
            analysis.analyze({}, max_rps_per_server=100.0)
        with pytest.raises(ValueError):
            analysis.analyze({"DC1": np.ones(5)}, max_rps_per_server=0.0)
