"""Fault tolerance of the replicated tcp shard fleet.

The acceptance suite of the replication work (run via ``make
test-faults``, and small enough to ride in tier-1 too):

* **kill -9 a real primary mid-ingest** — a subprocess
  ``repro shard-server`` hosting both primaries is SIGKILLed halfway
  through ingest; the run completes via replica failover and the
  exported archive is *byte-identical* to an unsharded twin's,
  synchronous and pipelined alike.
* **restart/rejoin round-trip** — a shard's server is stopped, a fresh
  one started, and ``rejoin_shard`` replays the ingest journal through
  the ``resync`` RPC; every query class and the export then match a
  never-crashed twin bit-for-bit, including when the journal spilled
  to disk.
* **fault matrix** — every :mod:`repro.telemetry.faultinject` failure
  mode against an *un-replicated* shard surfaces as the named
  per-shard error within the ``io_timeout`` bound: never a hang.
* **CLI surface** — ``--replica-addrs`` / ``--inject-fault``
  validation and the end-to-end failover run through ``repro
  simulate``.

Equivalence of healthy replicated stores rides the usual parametrized
suites; this file is exclusively about runs where something dies.
"""

import time

import numpy as np
import pytest

from repro.cli import main
from repro.telemetry.export import export_store
from repro.telemetry.faultinject import (
    FaultSpec,
    FaultyTransport,
    inject_store,
    parse_fault_spec,
)
from repro.telemetry.sharding import ShardedMetricStore, ShardJournal
from repro.telemetry.store import MetricStore
from repro.telemetry.workers import ShardServer

REDUCERS = ("mean", "sum", "max", "count")

#: Generous wall-clock ceiling for operations that must fail *promptly*
#: (the io_timeout used below is 2s; anything near this bound is a hang).
PROMPT_S = 20.0


def _fill_windows(store, start, stop, n_servers=16):
    """Deterministic ingest for windows ``[start, stop)``.

    Pure function of (pool, dc, counter, window), so any two stores fed
    the same window range hold identical rows — the twin-comparison
    backbone of this file, and splittable at any window boundary to
    bracket a mid-ingest crash.
    """
    for pool in ("A", "B"):
        for dc in ("dc1", "dc2"):
            ids = [f"{dc}.{pool}.s{i:03d}" for i in range(n_servers)]
            indices = store.intern_servers(ids)
            base = float(ord(pool) * 7 + ord(dc[-1]))
            for window in range(start, stop):
                for offset, counter in enumerate(("cpu", "rps")):
                    values = (
                        np.arange(n_servers, dtype=np.float64) * 0.75
                        + window * 1.25 + offset * 10.0 + base
                    )
                    store.record_batch(pool, dc, counter, window, indices, values)
    return store


def _assert_twins(single, sharded, tmp_path, tag):
    """Every query class and the export must match bit-for-bit."""
    assert sharded.sample_count() == single.sample_count()
    assert sharded.pools == single.pools
    assert sharded.max_window == single.max_window
    for reducer in REDUCERS:
        a = single.pool_window_aggregate("A", "cpu", reducer=reducer)
        b = sharded.pool_window_aggregate("A", "cpu", reducer=reducer)
        np.testing.assert_array_equal(a.windows, b.windows)
        np.testing.assert_array_equal(a.values, b.values)
    wa, na, ma = single.pool_matrix("B", "rps")
    wb, nb, mb = sharded.pool_matrix("B", "rps")
    np.testing.assert_array_equal(wa, wb)
    assert na == nb
    np.testing.assert_array_equal(ma, mb)
    a = single.per_server_values("A", "rps")
    b = sharded.per_server_values("A", "rps")
    assert set(a) == set(b)
    for server in a:
        np.testing.assert_array_equal(a[server], b[server])
    single_path = tmp_path / f"single-{tag}.csv"
    sharded_path = tmp_path / f"sharded-{tag}.csv"
    assert export_store(single, single_path) == export_store(sharded, sharded_path)
    assert single_path.read_bytes() == sharded_path.read_bytes()


class TestKillPrimaryMidIngest:
    """The tentpole acceptance test: SIGKILL the primary, keep going."""

    @pytest.mark.slow
    @pytest.mark.parametrize("pipeline_depth", [0, 4], ids=["sync", "pipelined"])
    def test_archive_byte_identical_after_kill9(
        self, tmp_path, pipeline_depth, shard_server_processes
    ):
        primary, primary_addr = shard_server_processes.spawn()
        replica, replica_addr = shard_server_processes.spawn()
        store = None
        try:
            single = _fill_windows(MetricStore(), 0, 40)
            store = ShardedMetricStore(
                backend="tcp",
                shard_addrs=[primary_addr, primary_addr],
                replica_addrs=[replica_addr, replica_addr],
                flush_rows=256,
                pipeline_depth=pipeline_depth,
                io_timeout=30,
            )
            _fill_windows(store, 0, 20)
            # A query is the sync barrier: every member has consumed
            # every frame the facade flushed so far.
            assert store.sample_count() > 0
            primary.kill()  # SIGKILL — no goodbye, no FIN ordering
            primary.wait(timeout=30)
            # Ingest straight into the corpse: the dead sessions fail
            # mid-run and both shards fail over to their replicas.
            _fill_windows(store, 20, 40)
            _assert_twins(single, store, tmp_path, f"kill9-{pipeline_depth}")
            for shard in store.shards:
                assert shard.live_addresses == (replica_addr,)
                assert shard.address == primary_addr  # identity is stable
        finally:
            if store is not None:
                store.close()
            shard_server_processes.reap(primary)
            shard_server_processes.reap(replica)


class TestRestartRejoin:
    """Stop a shard's server, restart, resync — bit-identical again."""

    @pytest.mark.parametrize(
        "journal_rows", [1 << 20, 200], ids=["in-memory", "spilled"]
    )
    def test_rejoin_matches_never_crashed_twin(self, tmp_path, journal_rows):
        single = _fill_windows(MetricStore(), 0, 30)
        with ShardServer("127.0.0.1:0") as keeper:
            victim = ShardServer("127.0.0.1:0").start()
            store = ShardedMetricStore(
                backend="tcp",
                shard_addrs=[keeper.address, victim.address],
                journal_rows=journal_rows,
                flush_rows=128,
                io_timeout=30,
            )
            try:
                _fill_windows(store, 0, 30)
                assert store.sample_count() == single.sample_count()
                if journal_rows == 200:
                    # The small journal must actually have exercised the
                    # disk spill, or the "spilled" case proves nothing.
                    assert store._journals[1].spilled_batches > 0
                victim.stop()  # takes its sessions down with it: a crash
                with pytest.raises(RuntimeError, match="shard 1"):
                    # An uncached query that must touch the dead shard.
                    store.pool_window_aggregate("A", "cpu", reducer="sum")
                with ShardServer("127.0.0.1:0") as reborn:
                    store.rejoin_shard(1, address=reborn.address)
                    assert store.shards[1].address == reborn.address
                    _assert_twins(single, store, tmp_path, f"rejoin-{journal_rows}")
            finally:
                store.close()
                victim.stop()

    def test_rejoin_requires_journal(self, shard_server):
        with ShardedMetricStore(
            backend="tcp", shard_addrs=[shard_server.address]
        ) as store:
            with pytest.raises(RuntimeError, match="journal_rows"):
                store.rejoin_shard(0)

    def test_rejoin_validation(self, shard_server):
        with ShardedMetricStore(
            backend="tcp", shard_addrs=[shard_server.address], journal_rows=100
        ) as store:
            with pytest.raises(ValueError, match="out of range"):
                store.rejoin_shard(5)
        with ShardedMetricStore(n_shards=2) as store:
            with pytest.raises(ValueError, match="tcp"):
                store.rejoin_shard(0)

    def test_rejoin_failure_leaves_old_handle_and_is_retryable(self, tmp_path):
        single = _fill_windows(MetricStore(), 0, 10)
        victim = ShardServer("127.0.0.1:0").start()
        store = ShardedMetricStore(
            backend="tcp", shard_addrs=[victim.address],
            journal_rows=1 << 20, io_timeout=30, connect_timeout=0.3,
        )
        try:
            _fill_windows(store, 0, 10)
            store.flush()
            victim.stop()
            # Rejoin towards a dead address fails cleanly ...
            with pytest.raises((RuntimeError, ConnectionError)):
                store.rejoin_shard(0)
            # ... and a retry against a live server still succeeds.
            with ShardServer("127.0.0.1:0") as reborn:
                store.rejoin_shard(0, address=reborn.address)
                _assert_twins(single, store, tmp_path, "retry")
        finally:
            store.close()
            victim.stop()


class TestShardJournal:
    """The journal itself: order, spill, replay, close."""

    def test_replay_preserves_order_across_spills(self):
        journal = ShardJournal(memory_rows=3)
        for i in range(10):
            journal.append("record_fast", (i,), 1)
        assert journal.spilled_batches > 0
        replayed = [args[0] for _method, args in journal.replay()]
        assert replayed == list(range(10))
        # Replay is repeatable (rejoin may be retried).
        assert [args[0] for _m, args in journal.replay()] == list(range(10))
        journal.close()
        journal.close()  # idempotent

    def test_memory_stays_bounded(self):
        journal = ShardJournal(memory_rows=5)
        for i in range(100):
            journal.append("record_fast", (i,), 1)
        assert len(journal._commands) < 5
        journal.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardJournal(memory_rows=0)


class TestFaultMatrix:
    """Un-replicated shard + injected fault = named error, never a hang."""

    EXPECT = {
        "drop": "I/O timed out",
        "hang": "I/O timed out",
        "corrupt": "connection lost",
        "kill": "connection lost",
    }

    @pytest.mark.parametrize("mode", sorted(EXPECT))
    def test_fault_surfaces_as_named_per_shard_error(self, mode):
        with ShardServer("127.0.0.1:0") as server:
            store = ShardedMetricStore(
                backend="tcp", shard_addrs=[server.address],
                flush_rows=64, pipeline_depth=0, io_timeout=2,
            )
            try:
                indices = store.intern_servers([f"s{i}" for i in range(8)])
                store.record_batch("A", "dc1", "cpu", 0, indices, np.ones(8))
                store.flush()
                assert store.sample_count() == 8  # healthy before the fault
                wrapped = inject_store(store, FaultSpec(mode))
                assert isinstance(wrapped, FaultyTransport)
                start = time.monotonic()
                with pytest.raises(RuntimeError, match=r"shard 0 \(") as err:
                    store.record_batch(
                        "A", "dc1", "cpu", 1, indices, np.ones(8)
                    )
                    store.flush()
                    store.pool_window_aggregate("A", "cpu", reducer="sum")
                elapsed = time.monotonic() - start
                assert self.EXPECT[mode] in str(err.value)
                assert server.address in str(err.value)
                assert elapsed < PROMPT_S, f"{mode} took {elapsed:.1f}s"
            finally:
                store.close()

    def test_delay_mode_is_benign(self, tmp_path):
        single = _fill_windows(MetricStore(), 0, 5, n_servers=4)
        with ShardServer("127.0.0.1:0") as server:
            store = ShardedMetricStore(
                backend="tcp", shard_addrs=[server.address], io_timeout=30,
            )
            try:
                wrapped = inject_store(store, FaultSpec("delay", delay_s=0.001))
                _fill_windows(store, 0, 5, n_servers=4)
                _assert_twins(single, store, tmp_path, "delay")
                assert wrapped.frames_sent > 0
            finally:
                store.close()

    def test_after_frames_defers_the_fault(self):
        with ShardServer("127.0.0.1:0") as server:
            store = ShardedMetricStore(
                backend="tcp", shard_addrs=[server.address],
                pipeline_depth=0, io_timeout=2,
            )
            try:
                wrapped = inject_store(store, FaultSpec("kill", after_frames=2))
                indices = store.intern_servers(["a", "b"])
                store.record_batch("A", "dc1", "cpu", 0, indices, np.ones(2))
                store.flush()                     # frame 1: passes
                assert store.sample_count() == 2  # frame 2: passes
                assert not wrapped.armed or wrapped.frames_sent >= 2
                with pytest.raises(RuntimeError, match="connection lost"):
                    store.record_batch(
                        "A", "dc1", "cpu", 1, indices, np.ones(2)
                    )
                    store.flush()
                    store.sample_count()
            finally:
                store.close()

    def test_replica_turns_fault_into_failover(self, tmp_path):
        """Same kill fault, but with a replica: run completes, bits equal."""
        single = _fill_windows(MetricStore(), 0, 10, n_servers=4)
        with ShardServer("127.0.0.1:0") as server:
            store = ShardedMetricStore(
                backend="tcp",
                shard_addrs=[server.address],
                replica_addrs=[server.address],
                flush_rows=32, pipeline_depth=0, io_timeout=30,
            )
            try:
                inject_store(store, FaultSpec("kill", after_frames=3))
                _fill_windows(store, 0, 10, n_servers=4)
                _assert_twins(single, store, tmp_path, "failover")
                assert len(store.shards[0].live_addresses) == 1
            finally:
                store.close()


class TestFaultSpecParsing:
    def test_modes_and_after(self):
        assert parse_fault_spec("kill") == FaultSpec("kill")
        assert parse_fault_spec("HANG:7").mode == "hang"
        assert parse_fault_spec("drop:3").after_frames == 3

    @pytest.mark.parametrize("bad", ["explode", "kill:x", "kill:-1", ""])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_transport_wrapper_validation(self):
        with pytest.raises(ValueError):
            FaultyTransport(object(), "explode")
        with pytest.raises(ValueError):
            FaultyTransport(object(), "kill", after_frames=-1)

    def test_inject_store_validation(self, shard_server):
        with ShardedMetricStore(n_shards=2) as store:
            with pytest.raises(ValueError, match="tcp"):
                inject_store(store, FaultSpec("kill"))
        with ShardedMetricStore(
            backend="tcp", shard_addrs=[shard_server.address]
        ) as store:
            with pytest.raises(ValueError, match="out of range"):
                inject_store(store, FaultSpec("kill", shard=3))


class TestCliFaultSurface:
    """--replica-addrs / --inject-fault through ``repro simulate``."""

    BASE = [
        "simulate",
        "--windows", "6",
        "--servers", "2",
        "--datacenters", "1",
        "--pools", "B",
    ]

    def test_replica_addrs_requires_tcp_backend(self):
        assert main(self.BASE + ["--replica-addrs", "127.0.0.1:9400"]) == 2

    def test_replica_addrs_must_align_with_shards(self):
        assert main(self.BASE + [
            "--shard-backend", "tcp",
            "--shard-addrs", "127.0.0.1:9400,127.0.0.1:9401",
            "--replica-addrs", "127.0.0.1:9402",
        ]) == 2

    def test_inject_fault_requires_tcp_backend(self):
        assert main(self.BASE + ["--inject-fault", "kill"]) == 2

    def test_inject_fault_rejects_unknown_mode(self):
        assert main(self.BASE + [
            "--shard-backend", "tcp",
            "--shard-addrs", "127.0.0.1:9400",
            "--inject-fault", "explode",
        ]) == 2

    @pytest.mark.slow
    def test_injected_kill_fails_over_with_replica(
        self, tmp_path, shard_server_processes
    ):
        """End to end: the replicated CLI run survives its own fault
        injection and writes the byte-identical archive; the same fault
        without a replica is the named per-shard failure (exit 1)."""
        primary, primary_addr = shard_server_processes.spawn()
        replica, replica_addr = shard_server_processes.spawn()
        try:
            single = tmp_path / "single.csv"
            failover = tmp_path / "failover.csv"
            assert main(self.BASE + [str(single)]) == 0
            assert main(self.BASE + [
                "--shard-backend", "tcp",
                "--shard-addrs", primary_addr,
                "--replica-addrs", replica_addr,
                "--inject-fault", "kill",
                str(failover),
            ]) == 0
            assert single.read_bytes() == failover.read_bytes()
            # No replica: the same fault is a run-ending per-shard error.
            assert main(self.BASE + [
                "--shard-backend", "tcp",
                "--shard-addrs", replica_addr,
                "--inject-fault", "kill",
            ]) == 1
        finally:
            shard_server_processes.reap(primary)
            shard_server_processes.reap(replica)
