"""Unit tests for the baseline planners."""

import math

import numpy as np
import pytest

from repro.baselines.autoscaler import ReactiveAutoscaler
from repro.baselines.queuing import (
    MMcPlanner,
    erlang_c_wait_probability,
    mmc_mean_wait_seconds,
)
from repro.baselines.static_peak import StaticPeakPlanner
from repro.workload.diurnal import DiurnalPattern, WINDOWS_PER_DAY


class TestErlangC:
    def test_single_server_matches_mm1(self):
        # For c = 1 Erlang-C reduces to rho.
        assert erlang_c_wait_probability(0.5, 1.0, 1) == pytest.approx(0.5)

    def test_unstable_system_certain_wait(self):
        assert erlang_c_wait_probability(10.0, 1.0, 5) == 1.0

    def test_more_servers_less_waiting(self):
        p10 = erlang_c_wait_probability(8.0, 1.0, 10)
        p20 = erlang_c_wait_probability(8.0, 1.0, 20)
        assert p20 < p10

    def test_mm1_mean_wait_formula(self):
        # M/M/1: Wq = rho / (mu - lambda).
        lam, mu = 0.5, 1.0
        expected = 0.5 / (1.0 - 0.5)
        assert mmc_mean_wait_seconds(lam, mu, 1) == pytest.approx(expected)

    def test_unstable_wait_infinite(self):
        assert math.isinf(mmc_mean_wait_seconds(2.0, 1.0, 1))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            erlang_c_wait_probability(-1.0, 1.0, 1)
        with pytest.raises(ValueError):
            erlang_c_wait_probability(1.0, 0.0, 1)
        with pytest.raises(ValueError):
            erlang_c_wait_probability(1.0, 1.0, 0)


class TestMMcPlanner:
    def test_required_servers_scale_with_demand(self):
        planner = MMcPlanner(service_time_s=0.03, target_latency_s=0.05)
        low = planner.required_servers(1_000.0)
        high = planner.required_servers(10_000.0)
        assert high > low

    def test_zero_demand_one_server(self):
        planner = MMcPlanner(service_time_s=0.03, target_latency_s=0.05)
        assert planner.required_servers(0.0) == 1

    def test_plan_is_stable_and_meets_target(self):
        planner = MMcPlanner(
            service_time_s=0.03, target_latency_s=0.05, requests_per_server_slot=16
        )
        demand = 5_000.0
        servers = planner.required_servers(demand)
        slots = servers * 16
        mu = 1.0 / 0.03
        assert slots * mu > demand  # stable
        wait = mmc_mean_wait_seconds(demand, mu, slots)
        assert wait + 0.03 <= 0.05 + 1e-9

    def test_target_below_service_time_rejected(self):
        with pytest.raises(ValueError):
            MMcPlanner(service_time_s=0.05, target_latency_s=0.04)

    def test_stale_service_time_underprovisions(self):
        # The paper's critique: a deployment makes requests 40 % more
        # expensive; the un-re-measured model now underprovisions.
        stale = MMcPlanner(service_time_s=0.03, target_latency_s=0.06)
        fresh = stale.with_service_time(0.03 * 1.4)
        demand = 8_000.0
        assert fresh.required_servers(demand) > stale.required_servers(demand)


class TestReactiveAutoscaler:
    def _diurnal_demand(self, days=2):
        pattern = DiurnalPattern(base_rps=5_000.0, daily_amplitude=0.5)
        return pattern.demand_series(days * WINDOWS_PER_DAY)

    def test_tracks_demand(self):
        scaler = ReactiveAutoscaler(
            target_rps_per_server=300.0,
            max_rps_per_server=500.0,
            provisioning_lag_windows=0,
            max_step_servers=100,
        )
        outcome = scaler.replay(self._diurnal_demand())
        assert outcome.overload_fraction < 0.02
        # Allocation follows the diurnal swing.
        assert outcome.allocation.max() > outcome.allocation.min() * 1.3

    def test_lag_causes_slo_misses(self):
        fast = ReactiveAutoscaler(
            target_rps_per_server=300.0, max_rps_per_server=330.0,
            provisioning_lag_windows=0, max_step_servers=2,
        )
        slow = ReactiveAutoscaler(
            target_rps_per_server=300.0, max_rps_per_server=330.0,
            provisioning_lag_windows=30, max_step_servers=2,
        )
        demand = self._diurnal_demand()
        assert (
            slow.replay(demand).overload_fraction
            >= fast.replay(demand).overload_fraction
        )

    def test_pool_limit_respected(self):
        scaler = ReactiveAutoscaler(
            target_rps_per_server=10.0, max_rps_per_server=20.0,
            pool_limit_servers=5, max_step_servers=100,
        )
        outcome = scaler.replay(np.full(50, 10_000.0))
        assert outcome.peak_allocation <= 5
        assert outcome.overload_fraction > 0.9

    def test_empty_demand_rejected(self):
        scaler = ReactiveAutoscaler(
            target_rps_per_server=10.0, max_rps_per_server=20.0
        )
        with pytest.raises(ValueError):
            scaler.replay([])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReactiveAutoscaler(target_rps_per_server=0.0, max_rps_per_server=1.0)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(target_rps_per_server=10.0, max_rps_per_server=5.0)

    def test_describe(self):
        scaler = ReactiveAutoscaler(
            target_rps_per_server=300.0, max_rps_per_server=500.0
        )
        outcome = scaler.replay(np.full(10, 900.0))
        assert "autoscaler" in outcome.describe()


class TestStaticPeakPlanner:
    def test_peak_times_headroom(self):
        planner = StaticPeakPlanner(rps_per_server_at_target=100.0, headroom_factor=1.5)
        assert planner.required_servers([500.0, 1_000.0]) == 15

    def test_headroom_below_one_rejected(self):
        with pytest.raises(ValueError):
            StaticPeakPlanner(rps_per_server_at_target=100.0, headroom_factor=0.9)

    def test_empty_demand_rejected(self):
        planner = StaticPeakPlanner(rps_per_server_at_target=100.0)
        with pytest.raises(ValueError):
            planner.required_servers([])

    def test_more_headroom_more_servers(self):
        lean = StaticPeakPlanner(100.0, headroom_factor=1.0)
        fat = StaticPeakPlanner(100.0, headroom_factor=2.0)
        demand = [1_000.0]
        assert fat.required_servers(demand) == 2 * lean.required_servers(demand)
