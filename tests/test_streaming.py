"""Streaming mode: bit-identity, retention bounds, and the online alarm.

Guarantees protecting ``simulate --stream``:

* streaming a fleet block by block through
  :class:`~repro.cluster.streaming.StreamingSimulator` stores telemetry
  **bit-identical** to one batch ``run()`` of the same horizon — on
  every shard backend (serial / threads / processes / tcp), with block
  sizes 1 and 64, *including after rolling retention has evicted most
  of the run to the spill archive* — and its CSV export is
  **byte-identical**;
* rolling retention keeps the hot store bounded: after any block, hot
  rows never exceed the retained window span times the fleet's rows
  per window, while totals (and every query) still see all history;
* the online regression alarm fires a named alert within a bounded
  number of blocks of a mid-stream injected latency regression, and
  never fires on a clean run of the same seed.
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.deployment import leak_fix_with_latency_regression
from repro.cluster.faults import RandomFailures
from repro.cluster.simulation import DEFAULT_COUNTERS, SimulationConfig, Simulator
from repro.cluster.streaming import ALARM_COUNTERS, StreamingSimulator
from repro.core.regression_analysis import OnlineRegressionAlarm
from repro.telemetry.counters import Counter
from repro.telemetry.export import export_store
from repro.telemetry.sharding import BACKENDS, ShardedMetricStore

WINDOWS = 192
RETAIN = 48

#: Aggregates maintained incrementally during the streamed runs, so the
#: bit-identity sweep exercises the tracked fast path (sealed-series
#: slices) alongside the spill-merging recompute path.
TRACK = (
    ("B", Counter.REQUESTS.value, None, "mean"),
    ("B", Counter.LATENCY_P95.value, "DC1", "max"),
)


def _simulator(seed=41, store=None, block_windows=1, **config_kwargs):
    fleet = build_single_pool_fleet(
        "B", n_datacenters=2, servers_per_deployment=6, seed=seed
    )
    return Simulator(
        fleet,
        store=store,
        seed=seed,
        config=SimulationConfig(
            engine="batch",
            block_windows=block_windows,
            random_failures=RandomFailures(daily_probability=0.3, seed=7),
            **config_kwargs,
        ),
    )


def _sharded(n_shards=3, backend="serial", server=None):
    workers = n_shards if backend == "threads" else 1
    kwargs = {}
    if backend == "tcp":
        kwargs["shard_addrs"] = [server.address] * n_shards
    return ShardedMetricStore(
        n_shards=n_shards, workers=workers, backend=backend, **kwargs
    )


def _stream(store=None, block_windows=1, retain=RETAIN, windows=WINDOWS):
    sim = _simulator(store=store, block_windows=block_windows)
    stream = StreamingSimulator(sim, retain_windows=retain, track=TRACK)
    report = stream.run(max_windows=windows)
    return sim.store, report


def _assert_stores_identical(a, b):
    assert a.pools == b.pools
    assert a.sample_count() == b.sample_count()
    assert a.max_window == b.max_window
    for pool in a.pools:
        assert a.counters_for_pool(pool) == b.counters_for_pool(pool)
        for counter in a.counters_for_pool(pool):
            for reducer in ("mean", "sum", "max", "count"):
                sa = a.pool_window_aggregate(pool, counter, reducer=reducer)
                sb = b.pool_window_aggregate(pool, counter, reducer=reducer)
                np.testing.assert_array_equal(sa.windows, sb.windows)
                np.testing.assert_array_equal(sa.values, sb.values)
            wa, ids_a, ma = a.pool_matrix(pool, counter)
            wb, ids_b, mb = b.pool_matrix(pool, counter)
            np.testing.assert_array_equal(wa, wb)
            assert ids_a == ids_b
            np.testing.assert_array_equal(ma, mb)
            assert a.servers_in_pool(pool) == b.servers_in_pool(pool)
            for server in a.servers_in_pool(pool):
                xa = a.server_series(pool, counter, server)
                xb = b.server_series(pool, counter, server)
                np.testing.assert_array_equal(xa.windows, xb.windows)
                np.testing.assert_array_equal(xa.values, xb.values)


_BATCH_REFS = {}


@pytest.fixture(scope="module")
def batch_reference():
    """Plain batch runs of the streamed horizon, one per block size.

    Streaming is bit-identical to a batch run *of the same block
    size* (larger blocks draw the RNG in a different order than
    per-window stepping, by design — see
    ``test_sim_equivalence.TestBlockedEquivalence``), so the ground
    truth is keyed by ``block_windows``.
    """

    def reference(block_windows):
        if block_windows not in _BATCH_REFS:
            sim = _simulator(block_windows=block_windows)
            sim.run(WINDOWS)
            _BATCH_REFS[block_windows] = sim.store
        return _BATCH_REFS[block_windows]

    return reference


class TestStreamingBitIdentity:
    """Streamed telemetry == batch telemetry, bit for bit.

    ``run_block`` issues exactly the call sequence one big ``run()``
    would, so this holds by construction — these tests pin it against
    every backend and block size, with retention evicting all but the
    trailing ``RETAIN`` windows to spill mid-run (so most of the
    compared queries merge the archive back).
    """

    @pytest.mark.parametrize("block_windows", [1, 64])
    def test_single_store_matches_batch(self, batch_reference, block_windows):
        streamed, report = _stream(block_windows=block_windows)
        assert report.windows == WINDOWS
        assert report.stopped_by == "max-windows"
        assert streamed.evicted_before == WINDOWS - RETAIN
        assert report.evicted_rows > 0
        _assert_stores_identical(batch_reference(block_windows), streamed)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("block_windows", [1, 64])
    def test_backend_matches_batch(
        self, batch_reference, backend, block_windows, shard_server
    ):
        with _sharded(backend=backend, server=shard_server) as store:
            streamed, report = _stream(
                store=store, block_windows=block_windows
            )
            assert report.evicted_rows > 0
            _assert_stores_identical(batch_reference(block_windows), streamed)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_export_byte_identical(
        self, batch_reference, backend, tmp_path, shard_server
    ):
        """Post-eviction exports merge the spill archive back exactly."""
        batch_path = tmp_path / "batch.csv"
        export_store(batch_reference(16), batch_path)
        with _sharded(backend=backend, server=shard_server) as store:
            streamed, _ = _stream(store=store, block_windows=16)
            streamed_path = tmp_path / f"{backend}.csv"
            export_store(streamed, streamed_path)
        assert batch_path.read_bytes() == streamed_path.read_bytes()

    def test_partial_final_block_matches_batch(self, batch_reference):
        """max_windows not divisible by the block size still runs all."""
        streamed, report = _stream(block_windows=60)
        assert report.windows == WINDOWS
        assert report.blocks == 4
        _assert_stores_identical(batch_reference(60), streamed)

    def test_streaming_without_retention_matches_batch(self, batch_reference):
        streamed, report = _stream(block_windows=16, retain=None)
        assert report.evicted_rows == 0
        assert streamed.evicted_before == 0
        _assert_stores_identical(batch_reference(16), streamed)


class TestRollingRetention:
    def test_hot_rows_bounded_by_retention(self):
        streamed, report = _stream(block_windows=16)
        n_servers = sum(
            len(streamed.servers_in_pool(pool)) for pool in streamed.pools
        )
        n_counters = sum(
            len(streamed.counters_for_pool(pool)) for pool in streamed.pools
        )
        bound = RETAIN * n_servers * n_counters
        assert streamed.hot_sample_count() <= bound
        # Eviction moves rows, never drops them.
        assert (
            streamed.hot_sample_count() + report.evicted_rows
            == streamed.sample_count()
        )

    def test_watermark_tracks_the_clock(self):
        streamed, _ = _stream(block_windows=16)
        assert streamed.evicted_before == WINDOWS - RETAIN
        # Everything from the watermark up is still hot and queryable
        # without touching the archive; everything below reads back too.
        series = streamed.pool_window_aggregate(
            "B", Counter.REQUESTS.value, reducer="count"
        )
        assert series.windows[0] == 0
        assert series.windows[-1] == WINDOWS - 1

    def test_retention_validation(self):
        sim = _simulator()
        with pytest.raises(ValueError):
            StreamingSimulator(sim, retain_windows=0)


class TestStreamingDriver:
    def test_report_counts_blocks(self):
        _, report = _stream(block_windows=64, retain=None, windows=192)
        assert report.windows == 192
        assert report.blocks == 3
        assert report.alerts == []

    def test_zero_max_windows(self):
        sim = _simulator()
        report = StreamingSimulator(sim).run(max_windows=0)
        assert report.windows == 0
        assert report.blocks == 0
        assert sim.store.sample_count() == 0

    def test_interrupt_is_a_clean_stop(self):
        """SIGINT mid-stream still reconciles and reports."""
        sim = _simulator(block_windows=16)
        stream = StreamingSimulator(sim, retain_windows=RETAIN)

        def boom():
            raise KeyboardInterrupt

        stream.schedule(48, boom)
        report = stream.run(max_windows=WINDOWS)
        assert report.stopped_by == "interrupt"
        assert 0 < report.windows < WINDOWS
        assert sim.store.max_window == report.windows - 1

    def test_schedule_validation(self):
        stream = StreamingSimulator(_simulator())
        with pytest.raises(ValueError):
            stream.schedule(-1, lambda: None)
        with pytest.raises(ValueError):
            stream.run(max_windows=-1)

    def test_scheduled_action_fires_before_its_block(self):
        sim = _simulator(block_windows=16)
        stream = StreamingSimulator(sim)
        fired_at = []
        stream.schedule(40, lambda: fired_at.append(sim.current_window))
        stream.run(max_windows=64)
        # Window 40 lives in block [32, 48): the action fires at the
        # block boundary before it, never after.
        assert fired_at == [32]


ALARM_SEED = 42
ALARM_BLOCK = 16
ALARM_HORIZON = 720
INJECT_AT = 480


def _alarm_run(inject: bool, seed: int = ALARM_SEED):
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=8, seed=seed
    )
    counters = tuple(dict.fromkeys(DEFAULT_COUNTERS + ALARM_COUNTERS))
    sim = Simulator(
        fleet,
        seed=seed,
        config=SimulationConfig(
            engine="batch", block_windows=ALARM_BLOCK, counters=counters
        ),
    )
    alarm = OnlineRegressionAlarm("B")
    stream = StreamingSimulator(sim, retain_windows=512, alarm=alarm)
    if inject:
        stream.schedule(
            INJECT_AT,
            lambda: sim.set_version(
                "B", leak_fix_with_latency_regression(queue_multiplier=3.0)
            ),
        )
    report = stream.run(max_windows=ALARM_HORIZON)
    return alarm, report


class TestOnlineAlarm:
    """The regression gate run per block over the tracked series."""

    def test_alert_within_bounded_blocks_of_injection(self):
        alarm, report = _alarm_run(inject=True)
        assert alarm.fired
        assert len(report.alerts) == 1
        alert = report.alerts[0]
        assert alert.name == "latency-regression"
        assert alert.pool_id == "B"
        # Fires after the injection, within the documented bound: the
        # recent-profile span plus one block of seal latency.
        assert INJECT_AT <= alert.window
        assert alert.window <= INJECT_AT + alarm.recent_windows + ALARM_BLOCK
        assert "latency delta" in alert.detail

    def test_clean_run_never_fires(self):
        alarm, report = _alarm_run(inject=False)
        assert not alarm.fired
        assert report.alerts == []

    def test_alert_is_latched(self):
        """One alert per alarm, no matter how long the stream runs on."""
        alarm, report = _alarm_run(inject=True)
        assert len(report.alerts) == 1
        assert alarm.observe(None, ALARM_HORIZON + 10_000) is None
