"""Equivalence suite for the columnar demand engine.

The demand tensor (:mod:`repro.workload.demand_engine`) replaces the
per-window scalar pipeline — diurnal evaluation, surge scan, outage
failover, request-mix split — with one block computation.  These tests
pin the equivalences that rewrite rests on:

* :meth:`DiurnalPattern.demand_block` is *bitwise* equal to per-window
  ``demand_at`` calls;
* :meth:`RequestMix.shares_block` is bitwise equal to sequential
  ``shares_at`` calls against a twin RNG (same stream consumption);
* the engine's scalar ``surge_factor`` / ``outage_active`` lookups and
  their blocked counterparts agree with a brute-force event-list scan;
* ``compute_demand_block`` matches an independent transcription of the
  original per-window scalar algorithm — including surge stacking,
  multi-datacenter failover, and the zero-survivor /
  zero-survivor-total corners — and its one-window rows are bitwise
  equal to ``Simulator.offered_demand``;
* event caches invalidate when outages/surges are added mid-run;
* a full simulation with surges, outages and a drifting mix is
  bit-identical between per-window stepping and ``block_windows=1``.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster.builders import build_paper_fleet, build_single_pool_fleet
from repro.cluster.datacenter import Datacenter, Fleet, PoolDeployment
from repro.cluster.faults import DatacenterOutage, TrafficSurge
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.workload.demand_engine import DemandEngine
from repro.workload.diurnal import (
    WINDOWS_PER_DAY,
    WINDOWS_PER_WEEK,
    DiurnalPattern,
)
from repro.workload.request_mix import RequestClass, RequestMix

# ----------------------------------------------------------------------
# Reference implementation: the original per-window scalar algorithm
# ----------------------------------------------------------------------


def _reference_offered_demand(fleet, outages, surges, window):
    """Transcription of the pre-engine scalar demand pipeline.

    Kept deliberately independent of the engine (plain Python loops over
    the raw event lists) so the tests compare two implementations, not
    the engine with itself.
    """
    demand = {}
    for d in fleet.deployments():
        base = d.pattern.demand_at(window)
        factor = 1.0
        for s in surges:
            if (
                s.datacenter_id == d.datacenter_id
                and (s.pool_id is None or s.pool_id == d.pool_id)
                and s.start_window <= window < s.start_window + s.duration_windows
            ):
                factor *= s.factor
        demand[(d.pool_id, d.datacenter_id)] = base * factor

    failed_dcs = {
        o.datacenter_id
        for o in outages
        if o.start_window <= window < o.start_window + o.duration_windows
    }
    if failed_dcs:
        for pool_id in fleet.pool_ids:
            keys = [
                (d.pool_id, d.datacenter_id)
                for d in fleet.deployments_of_pool(pool_id)
            ]
            failed = [k for k in keys if k[1] in failed_dcs]
            survivors = [k for k in keys if k[1] not in failed_dcs]
            displaced = sum(demand[k] for k in failed)
            for k in failed:
                demand[k] = 0.0
            if displaced > 0.0 and survivors:
                total = sum(demand[k] for k in survivors)
                for k in survivors:
                    share = (
                        demand[k] / total if total > 0.0 else 1.0 / len(survivors)
                    )
                    demand[k] += displaced * share
    return demand


class _ConstPattern:
    """Duck-typed pattern exposing only the scalar ``demand_at``.

    Stands in for trace replays / ramps: the engine must fall back to
    per-window scalar evaluation when ``demand_block`` is absent.
    """

    def __init__(self, rps):
        self.rps = float(rps)

    def demand_at(self, window):
        return self.rps


def _const_fleet(dc_rps, pool_id="B"):
    """One pool across len(dc_rps) datacenters with fixed demands."""
    datacenters = [
        Datacenter(f"DC{i + 1}", f"region-{i + 1}", 0.0)
        for i in range(len(dc_rps))
    ]
    base = build_single_pool_fleet(
        pool_id, n_datacenters=len(dc_rps), servers_per_deployment=2
    )
    fleet = Fleet(datacenters)
    for dc, (template, rps) in zip(
        datacenters, zip(base.deployments(), dc_rps)
    ):
        fleet.add_deployment(
            PoolDeployment(
                pool=dataclasses.replace(
                    template.pool, datacenter_id=dc.datacenter_id
                ),
                datacenter=dc,
                pattern=_ConstPattern(rps),
            )
        )
    return fleet


# ----------------------------------------------------------------------
# Layer 1: vectorized primitives vs their scalar originals
# ----------------------------------------------------------------------


class TestDiurnalBlock:
    @pytest.mark.parametrize(
        "pattern",
        [
            DiurnalPattern(base_rps=500.0),
            DiurnalPattern(base_rps=120.0, timezone_offset_hours=9.5),
            DiurnalPattern(base_rps=80.0, weekend_factor=0.4, weekly_growth=0.05),
            DiurnalPattern(base_rps=300.0, weekly_growth=-1.0),  # clamps to 0
            DiurnalPattern(
                base_rps=50.0,
                daily_amplitude=0.0,
                second_harmonic=0.0,
                peak_hour_local=3.0,
            ),
        ],
    )
    def test_demand_block_bitwise_matches_demand_at(self, pattern):
        """Every element equals the scalar evaluation float-for-float."""
        windows = np.concatenate(
            [
                np.arange(0, 2 * WINDOWS_PER_DAY, 7),
                np.arange(WINDOWS_PER_WEEK - 10, WINDOWS_PER_WEEK + 10),
                np.arange(2 * WINDOWS_PER_WEEK, 2 * WINDOWS_PER_WEEK + 30),
            ]
        )
        block = pattern.demand_block(windows)
        scalar = np.array([pattern.demand_at(int(w)) for w in windows])
        np.testing.assert_array_equal(block, scalar)

    def test_negative_growth_clamps_to_zero(self):
        pattern = DiurnalPattern(base_rps=300.0, weekly_growth=-1.0)
        late = np.arange(2 * WINDOWS_PER_WEEK, 2 * WINDOWS_PER_WEEK + 5)
        assert (pattern.demand_block(late) == 0.0).all()


class TestSharesBlock:
    def _drifting_mix(self, n_classes=3, drift=0.4):
        return RequestMix(
            classes=tuple(
                RequestClass(name=f"c{i}", cpu_cost=0.01 * (i + 1))
                for i in range(n_classes)
            ),
            proportions=tuple(float(i + 1) for i in range(n_classes)),
            drift=drift,
        )

    def test_block_matches_sequential_bitwise_with_jitter(self):
        """Twin RNGs: one block draw == per-window draws, row for row."""
        mix = self._drifting_mix()
        windows = np.arange(100, 420, dtype=np.int64)
        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        block = mix.shares_block(windows, rng_a)
        rows = np.stack([mix.shares_at(int(w), rng_b) for w in windows])
        np.testing.assert_array_equal(block, rows)
        # Both generators end in the same state.
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_block_matches_sequential_without_jitter(self):
        mix = self._drifting_mix(drift=0.25)
        windows = np.arange(0, 50, dtype=np.int64)
        block = mix.shares_block(windows)
        rows = np.stack([mix.shares_at(int(w)) for w in windows])
        np.testing.assert_array_equal(block, rows)

    def test_drift_free_mix_draws_nothing(self):
        """No drift => broadcast base shares and an untouched RNG."""
        mix = RequestMix.single()
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        block = mix.shares_block(np.arange(64), rng)
        assert rng.bit_generator.state == before
        np.testing.assert_array_equal(
            block, np.ones((64, 1))
        )

    def test_rows_are_distributions(self):
        mix = self._drifting_mix(n_classes=4, drift=0.6)
        block = mix.shares_block(np.arange(200), np.random.default_rng(1))
        np.testing.assert_allclose(block.sum(axis=1), 1.0, rtol=1e-12)
        assert (block > 0).all()


# ----------------------------------------------------------------------
# Layer 2: engine lookups vs brute-force event scans
# ----------------------------------------------------------------------


@pytest.fixture
def event_fleet():
    return build_paper_fleet(servers_per_deployment=2, pools=("A", "B", "C"))


@pytest.fixture
def events():
    surges = [
        TrafficSurge("DC2", start_window=100, duration_windows=200, factor=4.0),
        # Overlaps the first surge for [150, 300): factors stack.
        TrafficSurge("DC2", start_window=150, duration_windows=150, factor=1.5),
        # Pool-scoped: applies to B only.
        TrafficSurge(
            "DC5", start_window=50, duration_windows=400, factor=2.0, pool_id="B"
        ),
    ]
    outages = [
        DatacenterOutage("DC1", start_window=200, duration_windows=100),
        # Overlaps the DC1 outage for [250, 300).
        DatacenterOutage("DC7", start_window=250, duration_windows=120),
    ]
    return surges, outages


class TestEngineLookups:
    def test_surge_factor_matches_bruteforce(self, event_fleet, events):
        surges, outages = events
        engine = DemandEngine(event_fleet, outages, surges)
        for window in (0, 99, 100, 149, 150, 299, 300, 449, 450):
            for d in event_fleet.deployments():
                expected = 1.0
                for s in surges:
                    if (
                        s.datacenter_id == d.datacenter_id
                        and (s.pool_id is None or s.pool_id == d.pool_id)
                        and s.start_window
                        <= window
                        < s.start_window + s.duration_windows
                    ):
                        expected *= s.factor
                assert engine.surge_factor(
                    d.pool_id, d.datacenter_id, window
                ) == pytest.approx(expected, rel=0, abs=0)

    def test_overlapping_surges_stack(self, event_fleet, events):
        surges, _ = events
        engine = DemandEngine(event_fleet, [], surges)
        assert engine.surge_factor("A", "DC2", 200) == 4.0 * 1.5
        assert engine.surge_factor("A", "DC2", 120) == 4.0
        assert engine.surge_factor("B", "DC5", 60) == 2.0
        assert engine.surge_factor("A", "DC5", 60) == 1.0  # pool-scoped

    def test_outage_active_matches_bruteforce(self, event_fleet, events):
        _, outages = events
        engine = DemandEngine(event_fleet, outages, [])
        for window in (0, 199, 200, 249, 250, 299, 300, 369, 370):
            for o in outages:
                # The fixture's outages hit distinct datacenters, so the
                # brute-force check is a single interval test.
                expected = (
                    o.start_window <= window < o.start_window + o.duration_windows
                )
                assert engine.outage_active(o.datacenter_id, window) == expected
        assert not engine.outage_active("DC4", 225)

    def test_block_lookups_match_scalar(self, event_fleet, events):
        surges, outages = events
        engine = DemandEngine(event_fleet, outages, surges)
        windows = np.arange(0, 500, dtype=np.int64)
        for d in event_fleet.deployments():
            factors = engine.surge_factor_block(
                d.pool_id, d.datacenter_id, windows
            )
            scalar = np.array(
                [
                    engine.surge_factor(d.pool_id, d.datacenter_id, int(w))
                    for w in windows
                ]
            )
            np.testing.assert_array_equal(factors, scalar)
        for dc in ("DC1", "DC7", "DC4"):
            mask = engine.outage_mask_block(dc, windows)
            scalar = np.array(
                [engine.outage_active(dc, int(w)) for w in windows]
            )
            np.testing.assert_array_equal(mask, scalar)


# ----------------------------------------------------------------------
# Layer 3: the demand tensor vs the reference scalar pipeline
# ----------------------------------------------------------------------


class TestDemandBlockVsReference:
    def _assert_block_matches_reference(self, fleet, outages, surges, windows):
        engine = DemandEngine(fleet, outages, surges)
        block = engine.compute_demand_block(np.asarray(windows, dtype=np.int64))
        for i, window in enumerate(windows):
            expected = _reference_offered_demand(fleet, outages, surges, window)
            got = block.row_dict(i)
            assert got.keys() == expected.keys()
            for key in expected:
                assert got[key] == pytest.approx(
                    expected[key], rel=1e-12, abs=1e-9
                ), (key, window)

    def test_no_events(self, event_fleet):
        self._assert_block_matches_reference(
            event_fleet, [], [], list(range(0, 300, 11))
        )

    def test_surges_only(self, event_fleet, events):
        surges, _ = events
        self._assert_block_matches_reference(
            event_fleet, [], surges, list(range(90, 470, 7))
        )

    def test_outage_failover_multi_dc(self, event_fleet, events):
        """Overlapping outages: two DCs' demand folds into survivors."""
        surges, outages = events
        self._assert_block_matches_reference(
            event_fleet, outages, surges, list(range(180, 390, 3))
        )

    def test_block_straddles_outage_boundaries(self, event_fleet, events):
        """Blocks that cross outage start/end windows stay correct."""
        _, outages = events
        for boundary in (200, 300, 250, 370):
            windows = list(range(boundary - 4, boundary + 4))
            self._assert_block_matches_reference(
                event_fleet, outages, [], windows
            )

    def test_rows_bitwise_equal_simulator_offered_demand(
        self, event_fleet, events
    ):
        """Per-window and blocked demand share one code path: bitwise."""
        surges, outages = events
        sim = Simulator(event_fleet, seed=3)
        for s in surges:
            sim.add_surge(s)
        for o in outages:
            sim.add_outage(o)
        engine = DemandEngine(event_fleet, outages, surges)
        windows = np.arange(190, 320, dtype=np.int64)
        block = engine.compute_demand_block(windows)
        for i, window in enumerate(windows):
            assert block.row_dict(i) == sim.offered_demand(int(window))


class TestFailoverCorners:
    def test_all_datacenters_out_demand_lost(self):
        """No survivors: displaced demand vanishes, nothing negative."""
        fleet = _const_fleet([100.0, 200.0, 300.0])
        outages = [
            DatacenterOutage(dc.datacenter_id, start_window=10, duration_windows=20)
            for dc in fleet.datacenters
        ]
        engine = DemandEngine(fleet, outages, [])
        block = engine.compute_demand_block(np.array([5, 15, 35]))
        assert block.row_dict(0) != {}
        assert all(v == 0.0 for v in block.row_dict(1).values())
        assert all(v > 0.0 for v in block.row_dict(2).values())
        self_check = _reference_offered_demand(fleet, outages, [], 15)
        assert block.row_dict(1) == self_check

    def test_zero_survivor_total_splits_evenly(self):
        """Survivors with zero demand share the displaced load evenly."""
        fleet = _const_fleet([500.0, 0.0, 0.0])
        outages = [DatacenterOutage("DC1", start_window=0, duration_windows=50)]
        engine = DemandEngine(fleet, outages, [])
        row = engine.compute_demand_block(np.array([25])).row_dict(0)
        pool = fleet.pool_ids[0]
        assert row[(pool, "DC1")] == 0.0
        assert row[(pool, "DC2")] == pytest.approx(250.0)
        assert row[(pool, "DC3")] == pytest.approx(250.0)
        assert row == pytest.approx(
            _reference_offered_demand(fleet, outages, [], 25)
        )

    def test_nothing_displaced_no_redistribution(self):
        """A failed DC with zero demand leaves survivors untouched."""
        fleet = _const_fleet([0.0, 80.0, 120.0])
        outages = [DatacenterOutage("DC1", start_window=0, duration_windows=50)]
        engine = DemandEngine(fleet, outages, [])
        row = engine.compute_demand_block(np.array([10])).row_dict(0)
        pool = fleet.pool_ids[0]
        assert row[(pool, "DC2")] == 80.0
        assert row[(pool, "DC3")] == 120.0

    def test_mixed_blocks_cover_every_regime_per_row(self):
        """One block spanning lost/even-split/proportional/no-outage rows."""
        fleet = _const_fleet([500.0, 100.0, 300.0])
        outages = [
            DatacenterOutage("DC1", start_window=10, duration_windows=10),
            DatacenterOutage("DC2", start_window=15, duration_windows=10),
            DatacenterOutage("DC3", start_window=15, duration_windows=10),
        ]
        engine = DemandEngine(fleet, outages, [])
        windows = np.arange(0, 40, dtype=np.int64)
        block = engine.compute_demand_block(windows)
        for i, window in enumerate(windows):
            expected = _reference_offered_demand(fleet, outages, [], int(window))
            assert block.row_dict(i) == pytest.approx(expected), window

    def test_duck_typed_pattern_fallback(self):
        """Patterns without demand_block go through scalar demand_at."""
        fleet = _const_fleet([42.0, 58.0])
        engine = DemandEngine(fleet, [], [])
        block = engine.compute_demand_block(np.arange(5))
        pool = fleet.pool_ids[0]
        np.testing.assert_array_equal(block.column(pool, "DC1"), 42.0)
        np.testing.assert_array_equal(block.column(pool, "DC2"), 58.0)


class TestCacheInvalidation:
    def test_add_surge_and_outage_refresh_caches(self, event_fleet):
        sim = Simulator(event_fleet, seed=0)
        before = sim.offered_demand(120)
        sim.add_surge(
            TrafficSurge("DC2", start_window=100, duration_windows=100, factor=3.0)
        )
        surged = sim.offered_demand(120)
        for key in before:
            factor = 3.0 if key[1] == "DC2" else 1.0
            assert surged[key] == pytest.approx(before[key] * factor)
        sim.add_outage(
            DatacenterOutage("DC3", start_window=110, duration_windows=50)
        )
        failed_over = sim.offered_demand(120)
        assert all(
            failed_over[key] == 0.0 for key in failed_over if key[1] == "DC3"
        )
        assert sum(failed_over.values()) == pytest.approx(sum(surged.values()))


# ----------------------------------------------------------------------
# Layer 4: full-simulation equivalence with events and drift
# ----------------------------------------------------------------------


def _run_with_events(engine_name, block_windows=None, windows=240):
    # Pool A's mix drifts (drift=0.5), exercising the share-jitter draws.
    fleet = build_single_pool_fleet(
        "A", n_datacenters=3, servers_per_deployment=5, seed=11
    )
    config = SimulationConfig(engine=engine_name, record_request_classes=True)
    if block_windows is not None:
        config = SimulationConfig(
            engine=engine_name,
            record_request_classes=True,
            block_windows=block_windows,
        )
    sim = Simulator(fleet, seed=11, config=config)
    sim.add_surge(
        TrafficSurge("DC2", start_window=40, duration_windows=80, factor=3.0)
    )
    sim.add_surge(
        TrafficSurge("DC1", start_window=60, duration_windows=30, factor=1.5, pool_id="A")
    )
    sim.add_outage(DatacenterOutage("DC3", start_window=100, duration_windows=60))
    sim.run(windows)
    return sim.store


def _assert_stores_identical(a, b):
    assert a.pools == b.pools
    assert a.sample_count() == b.sample_count()
    for pool in a.pools:
        assert a.counters_for_pool(pool) == b.counters_for_pool(pool)
        for counter in a.counters_for_pool(pool):
            sa = a.pool_window_aggregate(pool, counter)
            sb = b.pool_window_aggregate(pool, counter)
            np.testing.assert_array_equal(sa.windows, sb.windows)
            np.testing.assert_array_equal(sa.values, sb.values)


class TestFullSimulationWithEvents:
    def test_block_of_one_bit_identical_under_events_and_drift(self):
        """Surges + outage + drifting mix: block=1 == per-window."""
        _assert_stores_identical(
            _run_with_events("batch"),
            _run_with_events("batch", block_windows=1),
        )

    def test_per_sample_shim_bit_identical_under_events(self):
        _assert_stores_identical(
            _run_with_events("batch"), _run_with_events("per-sample")
        )

    def test_blocked_availability_identical_under_events(self):
        """Outage gating of the online mask survives blocking."""
        from repro.telemetry.counters import Counter

        batch = _run_with_events("batch")
        blocked = _run_with_events("batch", block_windows=32)
        assert batch.sample_count() == blocked.sample_count()
        for dc in batch.datacenters_for_pool("A"):
            a = batch.pool_window_aggregate(
                "A", Counter.AVAILABILITY.value, datacenter_id=dc
            )
            b = blocked.pool_window_aggregate(
                "A", Counter.AVAILABILITY.value, datacenter_id=dc
            )
            np.testing.assert_array_equal(a.windows, b.windows)
            np.testing.assert_array_equal(a.values, b.values)

    def test_blocked_statistically_equivalent_under_events(self):
        from repro.telemetry.counters import Counter

        batch = _run_with_events("batch", windows=720)
        blocked = _run_with_events("batch", block_windows=48, windows=720)
        for counter in (
            Counter.REQUESTS.value,
            Counter.PROCESSOR_UTILIZATION.value,
        ):
            a = batch.pool_window_aggregate("A", counter).values
            b = blocked.pool_window_aggregate("A", counter).values
            assert a.mean() == pytest.approx(b.mean(), rel=0.02)
