"""The live query server: correctness under concurrency, death included.

The contract ``repro query`` rides on, pinned four ways:

* **bit-identity at the watermark** — a live answer for any window
  ``w <= sealed_through`` is bit-identical to the same query against a
  finished same-seed batch run: per answer, the series is the exact
  prefix slice of the batch twin's series.  Checked on every shard
  backend (serial / threads / processes / tcp), across the rolling
  retention boundary (most of the compared span has been evicted to
  spill), and for the wire snapshot (a client-side export from
  :class:`StoreSnapshot` is *byte-identical* to the batch export);
* **a genuinely concurrent hammer** — a client querying in a tight
  loop WHILE the clock loop ingests never sees a half-ingested block:
  every mid-run answer passes the same prefix-slice check;
* **the surface is read-only** — a mutator call ships back as the RPC
  error, and the live store is unperturbed;
* **death, not hangs** — kill the server mid-session and the next call
  raises the named :class:`ShardConnectionError` within the
  ``io_timeout`` bound.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.faults import RandomFailures
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.cluster.streaming import StreamingSimulator
from repro.telemetry.counters import Counter
from repro.telemetry.export import export_store
from repro.telemetry.query_server import (
    LiveQuerySurface,
    QueryClient,
    QueryServer,
    StoreSnapshot,
)
from repro.telemetry.sharding import BACKENDS, ShardedMetricStore
from repro.telemetry.store import MetricStore
from repro.telemetry.workers import ShardConnectionError

WINDOWS = 96
RETAIN = 24
BLOCK = 8

#: Generous wall-clock ceiling for operations that must fail *promptly*
#: (the io_timeout used below is 2s; anything near this bound is a hang).
PROMPT_S = 20.0

#: The aggregate the hammer compares: tracked, so live answers take the
#: incrementally-sealed fast path the streaming loop maintains.
POOL, COUNTER = "B", Counter.REQUESTS.value
TRACK = (
    (POOL, COUNTER, None, "mean"),
    (POOL, Counter.LATENCY_P95.value, "DC1", "max"),
)


def _simulator(seed=41, store=None, block_windows=BLOCK):
    fleet = build_single_pool_fleet(
        POOL, n_datacenters=2, servers_per_deployment=6, seed=seed
    )
    return Simulator(
        fleet,
        store=store,
        seed=seed,
        config=SimulationConfig(
            engine="batch",
            block_windows=block_windows,
            random_failures=RandomFailures(daily_probability=0.3, seed=7),
        ),
    )


def _sharded(n_shards=3, backend="serial", server=None):
    workers = n_shards if backend == "threads" else 1
    kwargs = {}
    if backend == "tcp":
        kwargs["shard_addrs"] = [server.address] * n_shards
    return ShardedMetricStore(
        n_shards=n_shards, workers=workers, backend=backend, **kwargs
    )


def _assert_prefix_of(answer, reference):
    """A live answer == the batch twin's series, cut at the watermark."""
    sealed = answer["sealed_through"]
    windows = np.asarray(answer["windows"])
    values = np.asarray(answer["values"])
    # At a block boundary every ingested window is sealed, so the
    # answer covers exactly [0, sealed] — nothing half-ingested leaks.
    assert len(windows) == sealed + 1
    np.testing.assert_array_equal(windows, reference.windows[: sealed + 1])
    np.testing.assert_array_equal(values, reference.values[: sealed + 1])


@pytest.fixture(scope="module")
def batch_reference():
    """The finished same-seed batch twin (same block size: same RNG order)."""
    sim = _simulator()
    sim.run(WINDOWS)
    return sim.store


@pytest.fixture(scope="module")
def batch_series(batch_reference):
    return batch_reference.pool_window_aggregate(POOL, COUNTER, reducer="mean")


class TestLiveBitIdentity:
    """Stepped interleaving: query between every block, on every backend.

    Driving the clock loop one block per ``run`` call makes the
    interleaving deterministic — a wire query lands at every single
    block boundary, on both sides of the retention watermark — while
    still exercising the real server, the real client, and the real
    lock seam.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_boundary_matches_batch_twin(
        self, backend, shard_server, batch_reference, batch_series, tmp_path
    ):
        with _sharded(backend=backend, server=shard_server) as store:
            sim = _simulator(store=store)
            stream = StreamingSimulator(
                sim,
                retain_windows=RETAIN,
                track=TRACK,
                query_listen="127.0.0.1:0",
            )
            try:
                with QueryClient(stream.query_address, io_timeout=30) as client:
                    evictions_seen = []
                    for _ in range(WINDOWS // BLOCK):
                        stream.run(max_windows=BLOCK)
                        _assert_prefix_of(
                            client.aggregate(POOL, COUNTER), batch_series
                        )
                        status = client.status()
                        assert status["sealed_through"] == stream.sealed_window
                        evictions_seen.append(status["evicted_before"])
                    # The stepped sweep really crossed the retention
                    # boundary: early boundaries pre-eviction, late ones
                    # with most of the span already in spill.
                    assert evictions_seen[0] == 0
                    assert evictions_seen[-1] == WINDOWS - RETAIN
                    # The wire snapshot exports byte-identical to the
                    # batch twin's archive, written client-side.
                    snapshot = StoreSnapshot(client.snapshot())
                    assert snapshot.sealed_through == WINDOWS - 1
                    live_path = tmp_path / f"live-{backend}.csv"
                    batch_path = tmp_path / f"batch-{backend}.csv"
                    export_store(snapshot, live_path)
                    export_store(batch_reference, batch_path)
                    assert live_path.read_bytes() == batch_path.read_bytes()
            finally:
                stream.close()

    def test_dc_filter_and_reducers_match(self, batch_reference):
        """Filtered/re-reduced live answers match the twin too."""
        sim = _simulator()
        stream = StreamingSimulator(
            sim, retain_windows=RETAIN, track=TRACK, query_listen="127.0.0.1:0"
        )
        try:
            with QueryClient(stream.query_address) as client:
                stream.run(max_windows=WINDOWS)
                for dc, reducer in (
                    ("DC1", "max"),
                    (None, "sum"),
                    (None, "count"),
                ):
                    answer = client.aggregate(
                        POOL, Counter.LATENCY_P95.value,
                        datacenter_id=dc, reducer=reducer,
                    )
                    ref = batch_reference.pool_window_aggregate(
                        POOL, Counter.LATENCY_P95.value,
                        datacenter_id=dc, reducer=reducer,
                    )
                    _assert_prefix_of(answer, ref)
        finally:
            stream.close()


class TestConcurrentHammer:
    """A client in a tight loop WHILE the clock loop ingests."""

    HAMMER_WINDOWS = 960

    def test_hammer_during_live_run(self, batch_series):
        sim = _simulator()
        stream = StreamingSimulator(
            sim, retain_windows=RETAIN, track=TRACK, query_listen="127.0.0.1:0"
        )
        reports = []
        runner = threading.Thread(
            target=lambda: reports.append(
                stream.run(max_windows=self.HAMMER_WINDOWS)
            )
        )
        answers = []
        try:
            with QueryClient(stream.query_address, io_timeout=30) as client:
                runner.start()
                while runner.is_alive():
                    status = client.status()
                    if status["sealed_through"] < 0:
                        continue  # nothing sealed yet — keep hammering
                    answers.append(client.aggregate(POOL, COUNTER))
                runner.join()
                answers.append(client.aggregate(POOL, COUNTER))
        finally:
            if runner.is_alive():  # pragma: no cover - failure path
                runner.join()
            stream.close()
        assert reports and reports[0].windows == self.HAMMER_WINDOWS
        # The batch twin only covers WINDOWS; the hammered run is longer
        # so the loop stays busy — checkable answers are the early ones.
        checkable = [
            a for a in answers if a["sealed_through"] < len(batch_series.windows)
        ]
        for answer in checkable:
            _assert_prefix_of(answer, batch_series)
        # The race was real: answers landed mid-run (more than one
        # distinct watermark), not just after the loop finished.
        assert len({a["sealed_through"] for a in answers}) > 1
        final = answers[-1]
        assert final["sealed_through"] == self.HAMMER_WINDOWS - 1
        assert len(final["windows"]) == self.HAMMER_WINDOWS


class TestReadOnlySurface:
    """The surface has no mutators; the wire cannot perturb the store."""

    def test_mutator_call_is_an_error_reply(self):
        store = MetricStore()
        indices = store.intern_servers(["s0", "s1"])
        store.record_batch("A", "dc1", "cpu", 0, indices, np.ones(2))
        store.seal_through(0)
        before = store.sample_count()
        with QueryServer(LiveQuerySurface(store)) as server:
            with QueryClient(server.address) as client:
                with pytest.raises(AttributeError):
                    client.call(
                        "record_batch", "A", "dc1", "cpu", 1, [0, 1], [1.0, 1.0]
                    )
                with pytest.raises(AttributeError):
                    client.call("evict_windows", 1)
                # The session survives the error reply and the store
                # is untouched.
                assert client.status()["samples"] == before
        assert store.sample_count() == before

    def test_plain_finished_store_is_servable(self):
        """No streamer attached: sealed_through falls back to max_window."""
        store = MetricStore()
        indices = store.intern_servers(["s0", "s1", "s2"])
        for window in range(4):
            store.record_batch(
                "A", "dc1", "cpu", window, indices, np.arange(3.0) + window
            )
        with QueryServer(LiveQuerySurface(store)) as server:
            with QueryClient(server.address) as client:
                status = client.status()
                assert status["sealed_through"] == 3
                assert status["alerts"] == []
                answer = client.aggregate("A", "cpu", reducer="sum")
                ref = store.pool_window_aggregate("A", "cpu", reducer="sum")
                _assert_prefix_of(answer, ref)


class TestServerDeath:
    """Kill the server mid-session: named error, bounded, never a hang."""

    def test_stop_mid_session_raises_named_error_promptly(self):
        store = MetricStore()
        indices = store.intern_servers(["s0"])
        store.record_batch("A", "dc1", "cpu", 0, indices, np.ones(1))
        server = QueryServer(LiveQuerySurface(store)).start()
        address = server.address
        client = QueryClient(address, io_timeout=2)
        try:
            assert client.status()["max_window"] == 0  # healthy first
            server.stop()  # takes its sessions down with it: a crash
            start = time.monotonic()
            with pytest.raises(ShardConnectionError, match="query server") as err:
                for _ in range(5):  # first call may race the teardown
                    client.status()
                    time.sleep(0.05)  # pragma: no cover - retry path
            elapsed = time.monotonic() - start
            message = str(err.value)
            assert "connection lost" in message or "I/O timed out" in message
            assert address in message
            assert elapsed < PROMPT_S, f"death took {elapsed:.1f}s to surface"
        finally:
            client.close()
            server.stop()

    def test_dial_to_dead_server_names_the_address(self):
        server = QueryServer(LiveQuerySurface(MetricStore())).start()
        address = server.address
        server.stop()
        with pytest.raises(ConnectionError):
            QueryClient(address, connect_timeout=0.3)

    def test_streamer_close_is_idempotent(self):
        stream = StreamingSimulator(_simulator(), query_listen="127.0.0.1:0")
        address = stream.query_address
        assert address is not None
        stream.close()
        stream.close()
        with pytest.raises(ConnectionError):
            QueryClient(address, connect_timeout=0.3)
