"""Unit tests for repro.core.slo and repro.core.report."""

import pytest

from repro.core.report import format_ms, format_percent, render_table
from repro.core.slo import Direction, QoSRequirement, SLO


class TestSLO:
    def test_at_most(self):
        slo = SLO("latency_p95_ms", 36.0)
        assert slo.is_met(30.0)
        assert not slo.is_met(40.0)
        assert slo.margin(30.0) == pytest.approx(6.0)

    def test_at_least(self):
        slo = SLO("availability", 0.999, Direction.AT_LEAST)
        assert slo.is_met(0.9995)
        assert not slo.is_met(0.99)
        assert slo.margin(0.9995) == pytest.approx(0.0005)

    def test_describe(self):
        assert "<=" in SLO("x", 1.0).describe()
        assert ">=" in SLO("x", 1.0, Direction.AT_LEAST).describe()


class TestQoSRequirement:
    def test_slos_composed(self):
        qos = QoSRequirement(latency_p95_ms=36.0, availability_min=0.999)
        metrics = {slo.metric for slo in qos.slos}
        assert metrics == {"latency_p95_ms", "availability"}

    def test_is_met(self):
        qos = QoSRequirement(latency_p95_ms=36.0)
        assert qos.is_met({"latency_p95_ms": 30.0, "availability": 0.9999})
        assert not qos.is_met({"latency_p95_ms": 40.0, "availability": 0.9999})

    def test_missing_measurement_is_unmet(self):
        qos = QoSRequirement(latency_p95_ms=36.0)
        assert not qos.is_met({"latency_p95_ms": 30.0})

    def test_extra_slos_enforced(self):
        qos = QoSRequirement(
            latency_p95_ms=36.0,
            extra=(SLO("errors_per_sec", 0.1),),
        )
        ok = {"latency_p95_ms": 30.0, "availability": 1.0, "errors_per_sec": 0.01}
        bad = dict(ok, errors_per_sec=5.0)
        assert qos.is_met(ok)
        assert not qos.is_met(bad)

    def test_latency_margin(self):
        qos = QoSRequirement(latency_p95_ms=36.0)
        assert qos.latency_margin_ms(30.0) == pytest.approx(6.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            QoSRequirement(latency_p95_ms=0.0)
        with pytest.raises(ValueError):
            QoSRequirement(latency_p95_ms=10.0, availability_min=1.5)


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["xx", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_format_percent(self):
        assert format_percent(0.33) == "33%"
        assert format_percent(0.125, 1) == "12.5%"

    def test_format_ms(self):
        assert format_ms(30.94) == "30.9ms"
        assert format_ms(5.0, 0) == "5ms"

    def test_float_formatting(self):
        text = render_table(["x"], [[3.14159]])
        assert "3.14" in text
