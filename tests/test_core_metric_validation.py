"""Tests for the Step-1 metric-validation feedback loop."""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet, noisy_variant
from repro.cluster.service import service_catalog
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.metric_validation import (
    MetricValidator,
    ValidationStatus,
    _detect_periodic_spikes,
)
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore
from tests.conftest import FULL_COUNTERS


class TestCleanPool:
    def test_pool_b_validates_aggregate(self, pool_b_store):
        validator = MetricValidator(pool_b_store)
        report = validator.validate("B", "DC1")
        assert report.status is ValidationStatus.VALID_AGGREGATE
        assert report.final_r2 > 0.95
        assert report.workload_counters == (Counter.REQUESTS.value,)

    def test_report_describe_lists_steps(self, pool_b_store):
        report = MetricValidator(pool_b_store).validate("B", "DC1")
        text = report.describe()
        assert "valid_aggregate" in text
        assert "aggregate workload" in text

    def test_validate_all_covers_pools(self, pool_b_store):
        reports = MetricValidator(pool_b_store).validate_all()
        assert [r.pool_id for r in reports] == ["B"]


class TestPerClassSplit:
    @pytest.fixture(scope="class")
    def pool_a_store(self):
        """Pool A: two request classes with drifting mix (noisy aggregate)."""
        fleet = build_single_pool_fleet(
            "A", n_datacenters=1, servers_per_deployment=20, seed=23
        )
        sim = Simulator(
            fleet,
            seed=23,
            config=SimulationConfig(
                counters=FULL_COUNTERS, apply_availability_policies=False
            ),
        )
        sim.run(1440)
        return sim.store

    def test_aggregate_is_noisy_but_split_validates(self, pool_a_store):
        validator = MetricValidator(pool_a_store, min_r2=0.97)
        report = validator.validate("A", "DC1")
        assert report.status is ValidationStatus.VALID_PER_CLASS
        assert report.per_class_model is not None
        assert report.final_r2 >= 0.97 > report.aggregate_r2
        assert set(report.workload_counters) == {
            "Requests/sec[table_user]",
            "Requests/sec[table_index]",
        }

    def test_per_class_coefficients_recover_costs(self, pool_a_store):
        report = MetricValidator(pool_a_store, min_r2=0.97).validate("A", "DC1")
        model = report.per_class_model
        by_counter = dict(zip(report.workload_counters, model.coefficients))
        profile = service_catalog()["A"]
        costs = {c.name: c.cpu_cost for c in profile.mix.classes}
        assert by_counter["Requests/sec[table_user]"] == pytest.approx(
            costs["table_user"], rel=0.25
        )
        assert by_counter["Requests/sec[table_index]"] == pytest.approx(
            costs["table_index"], rel=0.25
        )


class TestAnomalyDetection:
    def test_periodic_spikes_detected(self):
        rng = np.random.default_rng(0)
        residuals = rng.normal(0, 0.5, 600)
        for start in range(10, 600, 60):  # uploads every 60 windows
            residuals[start : start + 2] += 8.0
        finding, mask = _detect_periodic_spikes(residuals)
        assert finding is not None
        assert 40 <= finding.period_windows <= 80
        assert mask.sum() >= 10

    def test_pure_noise_no_finding(self):
        rng = np.random.default_rng(1)
        finding, mask = _detect_periodic_spikes(rng.normal(0, 1, 600))
        assert finding is None
        assert not mask.any()

    def test_short_series_no_finding(self):
        finding, _ = _detect_periodic_spikes(np.ones(10))
        assert finding is None


class TestInsufficientData:
    def test_empty_store_invalid(self):
        store = MetricStore()
        report = MetricValidator(store).validate("nope")
        assert report.status is ValidationStatus.INVALID
        assert "insufficient data" in report.steps[0]

    def test_status_validity_flags(self):
        assert ValidationStatus.VALID_AGGREGATE.is_valid
        assert ValidationStatus.VALID_PER_CLASS.is_valid
        assert not ValidationStatus.INVALID.is_valid
