"""Tests for availability analysis (§III-B2, Figs 14-15)."""

import numpy as np
import pytest

from repro.core.availability import (
    BEST_PRACTICE_AVAILABILITY,
    analyze_pool_availability,
    daily_availability,
    study_fleet_availability,
)
from repro.telemetry.store import MetricStore


class TestDailyAvailability:
    def test_per_server_daily_arrays(self, fleet_store):
        per_server = daily_availability(fleet_store, "D")
        assert per_server
        for values in per_server.values():
            assert values.shape == (2,)  # two simulated days
            assert np.all((0.0 <= values) & (values <= 1.0))

    def test_missing_pool_empty(self):
        assert daily_availability(MetricStore(), "nope") == {}


class TestPoolReports:
    def test_well_managed_pool_high_availability(self, fleet_store):
        report = analyze_pool_availability(fleet_store, "D")
        assert report.mean_availability == pytest.approx(0.98, abs=0.01)
        assert report.online_savings < 0.01

    def test_repurposed_pool_low_availability(self, fleet_store):
        report = analyze_pool_availability(fleet_store, "B")
        assert report.mean_availability == pytest.approx(0.71, abs=0.06)
        assert report.online_savings > 0.2

    def test_online_savings_formula(self, fleet_store):
        report = analyze_pool_availability(fleet_store, "A")
        expected = max(BEST_PRACTICE_AVAILABILITY - report.mean_availability, 0.0)
        assert report.online_savings == pytest.approx(expected)

    def test_distribution_sums_to_one(self, fleet_store):
        report = analyze_pool_availability(fleet_store, "B")
        _edges, fractions = report.distribution()
        assert fractions.sum() == pytest.approx(1.0, abs=0.01)

    def test_describe(self, fleet_store):
        assert "pool B" in analyze_pool_availability(fleet_store, "B").describe()

    def test_missing_pool_raises(self):
        with pytest.raises(ValueError):
            analyze_pool_availability(MetricStore(), "nope")


class TestFleetStudy:
    def test_overall_mean_between_extremes(self, fleet_store):
        study = study_fleet_availability(fleet_store)
        lows = study.pool_report("B").mean_availability
        highs = study.pool_report("D").mean_availability
        assert lows < study.overall_mean < highs

    def test_infrastructure_overhead_near_two_percent(self, fleet_store):
        study = study_fleet_availability(fleet_store)
        # The best-run pool shows the common maintenance floor (~2 %).
        assert study.infrastructure_overhead == pytest.approx(0.02, abs=0.01)

    def test_histogram_spans_modes(self, fleet_store):
        study = study_fleet_availability(fleet_store)
        edges, fractions = study.availability_histogram(
            np.linspace(0.0, 1.0, 21)
        )
        # Substantial mass in the top bins (well-managed pools).
        assert fractions[-2:].sum() > 0.3
        # And a visible low-availability population (pool B).
        assert fractions[: int(0.9 * 20)].sum() > 0.05

    def test_online_savings_by_pool(self, fleet_store):
        study = study_fleet_availability(fleet_store)
        by_pool = study.online_savings_by_pool()
        assert by_pool["B"] > by_pool["D"]

    def test_unknown_pool_report_raises(self, fleet_store):
        study = study_fleet_availability(fleet_store)
        with pytest.raises(KeyError):
            study.pool_report("ZZ")

    def test_empty_store_raises(self):
        with pytest.raises(ValueError):
            study_fleet_availability(MetricStore())
