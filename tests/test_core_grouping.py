"""Tests for Step-1 server-group identification (§II-A2, Fig 3)."""

import numpy as np
import pytest

from repro.cluster.builders import (
    build_grouping_study_fleet,
    build_single_pool_fleet,
)
from repro.cluster.hardware import GENERATION_2014, GENERATION_2017
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.grouping import (
    FEATURE_NAMES,
    GroupingModel,
    identify_server_groups,
    server_feature_matrix,
    server_percentile_points,
)


@pytest.fixture(scope="module")
def mixed_hardware_sim():
    """Pool F deployed on two hardware generations (the Fig 3 pool)."""
    fleet = build_single_pool_fleet(
        "F",
        n_datacenters=1,
        servers_per_deployment=24,
        seed=31,
        hardware_mix={GENERATION_2014: 0.5, GENERATION_2017: 0.5},
    )
    sim = Simulator(
        fleet, seed=31, config=SimulationConfig(apply_availability_policies=False)
    )
    sim.run(720)
    return sim


@pytest.fixture(scope="module")
def uniform_sim():
    fleet = build_single_pool_fleet(
        "F", n_datacenters=1, servers_per_deployment=16, seed=37
    )
    sim = Simulator(
        fleet, seed=37, config=SimulationConfig(apply_availability_policies=False)
    )
    sim.run(720)
    return sim


class TestPercentilePoints:
    def test_shape(self, uniform_sim):
        points, ids = server_percentile_points(uniform_sim.store, "F", "DC1")
        assert points.shape == (16, 2)
        assert len(ids) == 16

    def test_p5_below_p95(self, uniform_sim):
        points, _ = server_percentile_points(uniform_sim.store, "F", "DC1")
        assert np.all(points[:, 0] < points[:, 1])


class TestIdentifyGroups:
    def test_uniform_pool_single_group(self, uniform_sim):
        report = identify_server_groups(uniform_sim.store, "F", "DC1")
        assert report.is_uniform
        assert report.groups[0].size == 16

    def test_mixed_hardware_two_groups(self, mixed_hardware_sim):
        report = identify_server_groups(mixed_hardware_sim.store, "F", "DC1")
        assert report.n_groups == 2
        sizes = sorted(g.size for g in report.groups)
        assert sizes == [12, 12]

    def test_newer_generation_cluster_runs_cooler(self, mixed_hardware_sim):
        report = identify_server_groups(mixed_hardware_sim.store, "F", "DC1")
        centers = sorted(g.center_p95 for g in report.groups)
        # The newer SKU cluster should sit clearly below the older one.
        assert centers[0] < centers[1] * 0.8

    def test_groups_partition_servers(self, mixed_hardware_sim):
        report = identify_server_groups(mixed_hardware_sim.store, "F", "DC1")
        all_ids = [sid for g in report.groups for sid in g.server_ids]
        assert sorted(all_ids) == sorted(report.server_ids)

    def test_missing_pool_raises(self, uniform_sim):
        with pytest.raises(ValueError):
            identify_server_groups(uniform_sim.store, "F", "DC9")


class TestFeatureMatrix:
    def test_feature_layout(self, uniform_sim):
        features, ids = server_feature_matrix(uniform_sim.store, "F")
        assert features.shape == (16, len(FEATURE_NAMES))
        # Percentile features are monotone per row.
        assert np.all(np.diff(features[:, :5], axis=1) >= 0)

    def test_pool_features_shared_across_servers(self, uniform_sim):
        features, _ = server_feature_matrix(uniform_sim.store, "F")
        # slope/intercept/r2 columns are pool-level constants.
        for col in range(5, 8):
            assert np.unique(features[:, col]).size == 1


class TestGroupingModel:
    @pytest.fixture(scope="class")
    def study(self):
        fleet, labels = build_grouping_study_fleet(
            n_tight_pools=6, n_noisy_pools=5, servers_per_pool=10,
            n_datacenters=1, seed=41,
        )
        sim = Simulator(
            fleet, seed=41,
            config=SimulationConfig(apply_availability_policies=False),
        )
        sim.run(720)
        return sim.store, labels

    def test_cross_validated_auc_high(self, study, rng):
        store, labels = study
        model = GroupingModel(min_leaf_fraction=0.05).fit(store, labels, rng=rng)
        assert model.cv_result.auc > 0.9
        assert model.tree.count_splits() >= 1

    def test_predict_pool_matches_labels(self, study, rng):
        store, labels = study
        model = GroupingModel(min_leaf_fraction=0.05).fit(store, labels, rng=rng)
        correct = 0
        for pool_id, label in labels.items():
            predicted, _prob = model.predict_pool(store, pool_id)
            correct += int(predicted == bool(label))
        assert correct / len(labels) >= 0.8

    def test_predictable_fraction(self, study, rng):
        store, labels = study
        model = GroupingModel(min_leaf_fraction=0.05).fit(store, labels, rng=rng)
        fraction = model.predictable_fraction(store, sorted(labels))
        true_fraction = sum(labels.values()) / len(labels)
        assert fraction == pytest.approx(true_fraction, abs=0.25)

    def test_unfitted_predict_raises(self, study):
        store, _ = study
        with pytest.raises(RuntimeError):
            GroupingModel().predict_pool(store, "P00")

    def test_empty_pool_ids_rejected(self, study, rng):
        store, labels = study
        model = GroupingModel(min_leaf_fraction=0.05).fit(store, labels, rng=rng)
        with pytest.raises(ValueError):
            model.predictable_fraction(store, [])
