"""Unit and behavioural tests for repro.cluster.simulation and builders."""

import numpy as np
import pytest

from repro.cluster.builders import (
    PAPER_DATACENTERS,
    build_grouping_study_fleet,
    build_paper_fleet,
    build_single_pool_fleet,
    pattern_for_deployment,
    peak_rps_per_server,
)
from repro.cluster.faults import DatacenterOutage, TrafficSurge
from repro.cluster.hardware import GENERATION_2014
from repro.cluster.service import service_catalog
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.telemetry.counters import Counter


@pytest.fixture()
def small_sim():
    fleet = build_single_pool_fleet(
        "B", n_datacenters=2, servers_per_deployment=8, seed=3
    )
    return Simulator(
        fleet, seed=3, config=SimulationConfig(apply_availability_policies=False)
    )


class TestBuilders:
    def test_paper_fleet_shape(self):
        fleet = build_paper_fleet(
            servers_per_deployment=4, datacenters=PAPER_DATACENTERS[:2], seed=0
        )
        assert fleet.pool_ids == ("A", "B", "C", "D", "E", "F", "G")
        assert fleet.total_servers() == 7 * 2 * 4

    def test_unknown_pool_rejected(self):
        with pytest.raises(KeyError):
            build_paper_fleet(pools=["Z"])

    def test_single_pool_fleet(self):
        fleet = build_single_pool_fleet("D", n_datacenters=3, servers_per_deployment=5)
        assert fleet.pool_ids == ("D",)
        assert len(fleet.datacenters) == 3

    def test_peak_rps_positive(self):
        profile = service_catalog()["B"]
        rps = peak_rps_per_server(profile, GENERATION_2014)
        assert 300 < rps < 500  # ~(12 - 1.2) / 0.028

    def test_pattern_hits_provisioning_target(self):
        profile = service_catalog()["B"]
        dc = PAPER_DATACENTERS[0]
        n = 20
        pattern = pattern_for_deployment(profile, dc, n, GENERATION_2014)
        peak_per_server = pattern.daily_peak() / n
        target = peak_rps_per_server(profile, GENERATION_2014)
        assert peak_per_server == pytest.approx(target, rel=0.01)

    def test_grouping_study_fleet_labels(self):
        fleet, labels = build_grouping_study_fleet(
            n_tight_pools=3, n_noisy_pools=2, servers_per_pool=4,
            n_datacenters=1, seed=0,
        )
        assert len(labels) == 5
        assert sum(labels.values()) == 3
        assert set(fleet.pool_ids) == set(labels)


class TestSimulatorBasics:
    def test_window_advances(self, small_sim):
        small_sim.run(5)
        assert small_sim.current_window == 5

    def test_negative_windows_rejected(self, small_sim):
        with pytest.raises(ValueError):
            small_sim.run(-1)

    def test_counters_recorded(self, small_sim):
        small_sim.run(10)
        store = small_sim.store
        assert store.pools == ("B",)
        rps = store.pool_window_aggregate("B", Counter.REQUESTS.value)
        assert len(rps) == 10

    def test_counter_filter_respected(self):
        fleet = build_single_pool_fleet("B", servers_per_deployment=4, seed=1)
        sim = Simulator(
            fleet, seed=1,
            config=SimulationConfig(
                counters=(Counter.REQUESTS.value,),
                apply_availability_policies=False,
            ),
        )
        sim.run(3)
        assert sim.store.counters_for_pool("B") == (Counter.REQUESTS.value,)

    def test_deterministic_under_seed(self):
        def run():
            fleet = build_single_pool_fleet("B", servers_per_deployment=4, seed=5)
            sim = Simulator(
                fleet, seed=5,
                config=SimulationConfig(apply_availability_policies=False),
            )
            sim.run(20)
            return sim.store.pool_window_aggregate(
                "B", Counter.PROCESSOR_UTILIZATION.value
            ).values

        np.testing.assert_array_equal(run(), run())

    def test_resize_changes_per_server_load(self, small_sim):
        small_sim.run(20)
        before = small_sim.store.pool_window_aggregate(
            "B", Counter.REQUESTS.value, datacenter_id="DC1", start=0, stop=20
        ).mean()
        small_sim.resize_pool("B", "DC1", 4)
        small_sim.run(20)
        after = small_sim.store.pool_window_aggregate(
            "B", Counter.REQUESTS.value, datacenter_id="DC1", start=20, stop=40
        ).mean()
        assert after > before * 1.5

    def test_set_version_applies_to_all_dcs(self, small_sim):
        from repro.cluster.deployment import SoftwareVersion

        small_sim.set_version("B", SoftwareVersion(name="v2"))
        for deployment in small_sim.fleet.deployments():
            assert all(s.version.name == "v2" for s in deployment.pool.servers)

    def test_unknown_pool_resize_rejected(self, small_sim):
        with pytest.raises(KeyError):
            small_sim.resize_pool("Z", "DC1", 5)


class TestDemandEvents:
    def test_outage_redistributes_demand(self, small_sim):
        small_sim.add_outage(DatacenterOutage("DC1", 0, 10))
        demand = small_sim.offered_demand(5)
        assert demand[("B", "DC1")] == 0.0
        # DC2 absorbs DC1's traffic.
        baseline = small_sim.fleet.deployment("B", "DC2").pattern.demand_at(5)
        assert demand[("B", "DC2")] > baseline

    def test_total_demand_conserved_during_outage(self, small_sim):
        no_outage = sum(small_sim.offered_demand(5).values())
        small_sim.add_outage(DatacenterOutage("DC1", 0, 10))
        with_outage = sum(small_sim.offered_demand(5).values())
        assert with_outage == pytest.approx(no_outage)

    def test_outage_marks_servers_offline(self, small_sim):
        small_sim.add_outage(DatacenterOutage("DC1", 0, 5))
        small_sim.run(3)
        availability = small_sim.store.pool_window_aggregate(
            "B", Counter.AVAILABILITY.value, datacenter_id="DC1", reducer="mean"
        )
        assert availability.values[0] == 0.0

    def test_server_states_synced_after_run(self):
        """Post-run Server.state reflects the last window's mask."""
        from repro.cluster.server import ServerState

        fleet = build_single_pool_fleet(
            "B", n_datacenters=2, servers_per_deployment=4, seed=3
        )
        sim = Simulator(
            fleet, seed=3,
            config=SimulationConfig(apply_availability_policies=False),
        )
        sim.add_outage(DatacenterOutage("DC1", 0, 100))
        sim.run(3)
        down = fleet.deployment("B", "DC1").pool
        up = fleet.deployment("B", "DC2").pool
        assert all(s.state is ServerState.OFFLINE_FAILED for s in down.servers)
        assert down.online_count == 0
        assert up.online_count == 4

    def test_working_set_flushed_after_run(self):
        """Leak accounting lands back on the Server objects post-run."""
        from repro.cluster.deployment import leaky_version

        fleet = build_single_pool_fleet(
            "B", n_datacenters=1, servers_per_deployment=2, seed=3
        )
        sim = Simulator(
            fleet, seed=3,
            config=SimulationConfig(apply_availability_policies=False),
        )
        sim.set_version("B", leaky_version(mb_per_window=4.0))
        baseline = fleet.deployment("B", "DC1").pool.servers[0].working_set_mb
        sim.run(10)
        grown = fleet.deployment("B", "DC1").pool.servers[0].working_set_mb
        assert grown == pytest.approx(baseline + 40.0)

    def test_surge_multiplies_demand(self, small_sim):
        small_sim.add_surge(TrafficSurge("DC2", 0, 10, factor=4.0, pool_id="B"))
        surged = small_sim.offered_demand(5)[("B", "DC2")]
        base = small_sim.fleet.deployment("B", "DC2").pattern.demand_at(5)
        assert surged == pytest.approx(4.0 * base)

    def test_unknown_dc_event_rejected(self, small_sim):
        with pytest.raises(KeyError):
            small_sim.add_outage(DatacenterOutage("DC99", 0, 5))
        with pytest.raises(KeyError):
            small_sim.add_surge(TrafficSurge("DC99", 0, 5, factor=2.0))


class TestAvailabilityPolicies:
    def test_policies_reduce_availability(self):
        fleet = build_single_pool_fleet("B", servers_per_deployment=10, seed=7)
        sim = Simulator(fleet, seed=7)  # policies on; pool B repurposes
        sim.run(720)
        availability = sim.store.all_values(Counter.AVAILABILITY.value)
        assert availability.mean() < 0.9

    def test_policy_override(self):
        from repro.cluster.faults import AlwaysOnline

        fleet = build_single_pool_fleet("B", servers_per_deployment=10, seed=7)
        sim = Simulator(fleet, seed=7)
        sim.set_availability_policy("B", "DC1", AlwaysOnline())
        sim.run(100)
        availability = sim.store.all_values(Counter.AVAILABILITY.value)
        assert availability.mean() == 1.0
