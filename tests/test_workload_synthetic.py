"""Unit tests for repro.workload.synthetic (methodology Step 3)."""

import numpy as np
import pytest

from repro.workload.diurnal import DiurnalPattern
from repro.workload.request_mix import RequestClass, RequestMix
from repro.workload.synthetic import (
    RampPlan,
    SyntheticWorkloadModel,
    compare_traces,
)
from repro.workload.traces import generate_trace


@pytest.fixture()
def production_trace(rng):
    mix = RequestMix(
        classes=(RequestClass("a", 0.01), RequestClass("b", 0.02)),
        proportions=(0.7, 0.3),
    )
    pattern = DiurnalPattern(base_rps=800.0)
    return generate_trace(pattern, mix, 720, rng)


class TestRampPlan:
    def test_linear_levels(self):
        ramp = RampPlan.linear(100.0, 500.0, 5, windows_per_level=3)
        assert len(ramp.levels) == 5
        assert ramp.levels[0] == 100.0
        assert ramp.levels[-1] == 500.0
        assert ramp.total_windows == 15

    def test_level_at_steps(self):
        ramp = RampPlan.linear(0.0, 10.0, 2, windows_per_level=2)
        assert ramp.level_at(0) == 0.0
        assert ramp.level_at(1) == 0.0
        assert ramp.level_at(2) == 10.0

    def test_level_out_of_range(self):
        ramp = RampPlan.linear(0.0, 10.0, 2, windows_per_level=1)
        with pytest.raises(IndexError):
            ramp.level_at(5)

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            RampPlan(levels=(), windows_per_level=1)
        with pytest.raises(ValueError):
            RampPlan(levels=(-1.0,), windows_per_level=1)
        with pytest.raises(ValueError):
            RampPlan.linear(0.0, 10.0, 1)


class TestSyntheticWorkloadModel:
    def test_unfitted_generate_raises(self, rng):
        with pytest.raises(RuntimeError):
            SyntheticWorkloadModel().generate(10, rng)

    def test_fit_on_empty_trace_rejected(self):
        from repro.workload.traces import WorkloadTrace

        empty = WorkloadTrace(0, np.array([]), {})
        with pytest.raises(ValueError):
            SyntheticWorkloadModel().fit(empty)

    def test_generated_volume_matches(self, production_trace, rng):
        model = SyntheticWorkloadModel().fit(production_trace)
        synthetic = model.generate(720, rng)
        assert synthetic.totals.mean() == pytest.approx(
            production_trace.totals.mean(), rel=0.05
        )

    def test_generated_mix_matches(self, production_trace, rng):
        model = SyntheticWorkloadModel().fit(production_trace)
        synthetic = model.generate(720, rng)
        prod_share = (
            production_trace.class_volumes["a"] / production_trace.totals
        ).mean()
        nonzero = synthetic.totals > 0
        syn_share = (
            synthetic.class_volumes["a"][nonzero] / synthetic.totals[nonzero]
        ).mean()
        assert syn_share == pytest.approx(prod_share, abs=0.03)

    def test_ramp_holds_levels(self, production_trace, rng):
        model = SyntheticWorkloadModel().fit(production_trace)
        ramp = RampPlan.linear(100.0, 400.0, 4, windows_per_level=5)
        trace = model.generate_ramp(ramp, rng, noise=0.0)
        assert len(trace) == 20
        np.testing.assert_allclose(trace.totals[:5], 100.0)
        np.testing.assert_allclose(trace.totals[-5:], 400.0)

    def test_ramp_reproducible(self, production_trace):
        model = SyntheticWorkloadModel().fit(production_trace)
        ramp = RampPlan.linear(100.0, 400.0, 4)
        t1 = model.generate_ramp(ramp, np.random.default_rng(5))
        t2 = model.generate_ramp(ramp, np.random.default_rng(5))
        np.testing.assert_array_equal(t1.totals, t2.totals)


class TestCompareTraces:
    def test_synthetic_passes_fidelity(self, production_trace, rng):
        model = SyntheticWorkloadModel().fit(production_trace)
        synthetic = model.generate(720, rng)
        report = compare_traces(production_trace, synthetic)
        assert report.passed, report.describe()

    def test_wrong_volume_fails(self, production_trace, rng):
        model = SyntheticWorkloadModel().fit(production_trace)
        synthetic = model.generate(720, rng).scaled(2.0)
        report = compare_traces(production_trace, synthetic)
        assert not report.passed
        assert report.volume_mean_error > 0.5

    def test_class_mismatch_rejected(self, production_trace, rng):
        from repro.workload.traces import WorkloadTrace

        other = WorkloadTrace(0, np.array([1.0]), {"zzz": np.array([1.0])})
        with pytest.raises(ValueError):
            compare_traces(production_trace, other)

    def test_describe_mentions_status(self, production_trace, rng):
        model = SyntheticWorkloadModel().fit(production_trace)
        synthetic = model.generate(720, rng)
        report = compare_traces(production_trace, synthetic)
        assert "PASS" in report.describe()
