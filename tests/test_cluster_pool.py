"""Unit tests for repro.cluster.pool and datacenter."""

import numpy as np
import pytest

from repro.cluster.datacenter import Datacenter, Fleet, PoolDeployment
from repro.cluster.deployment import SoftwareVersion
from repro.cluster.hardware import GENERATION_2014, GENERATION_2017
from repro.cluster.pool import ServerPool
from repro.cluster.server import ServerState
from repro.cluster.service import service_catalog
from repro.workload.diurnal import DiurnalPattern


@pytest.fixture()
def profile():
    return service_catalog()["B"]


@pytest.fixture()
def pool(profile, rng):
    return ServerPool.build(
        pool_id="B", datacenter_id="DC1", profile=profile,
        n_servers=10, hardware=GENERATION_2014, rng=rng,
    )


class TestBuild:
    def test_sizes(self, pool):
        assert pool.size == 10
        assert pool.online_count == 10

    def test_server_ids_unique(self, pool):
        ids = [s.server_id for s in pool.servers]
        assert len(set(ids)) == 10

    def test_zero_servers_rejected(self, profile, rng):
        with pytest.raises(ValueError):
            ServerPool.build("B", "DC1", profile, 0, GENERATION_2014, rng)

    def test_hardware_mix(self, profile, rng):
        pool = ServerPool.build(
            "B", "DC1", profile, 10, GENERATION_2014, rng,
            hardware_mix={GENERATION_2014: 0.6, GENERATION_2017: 0.4},
        )
        gens = [s.hardware.generation for s in pool.servers]
        assert gens.count("gen2014") == 6
        assert gens.count("gen2017") == 4

    def test_hardware_mix_must_sum_to_one(self, profile, rng):
        with pytest.raises(ValueError):
            ServerPool.build(
                "B", "DC1", profile, 10, GENERATION_2014, rng,
                hardware_mix={GENERATION_2014: 0.5},
            )


class TestResize:
    def test_shrink(self, pool, rng):
        pool.resize(6, rng)
        assert pool.size == 6

    def test_grow_clones_configuration(self, pool, rng):
        pool.set_version(SoftwareVersion(name="v9"))
        pool.resize(14, rng)
        assert pool.size == 14
        assert all(s.version.name == "v9" for s in pool.servers)

    def test_shrink_to_zero_rejected(self, pool, rng):
        with pytest.raises(ValueError):
            pool.resize(0, rng)


class TestRouting:
    def test_even_split(self, pool):
        routing = pool.route({"query": 1000.0})
        assert len(routing) == 10
        for per_server in routing.values():
            assert per_server["query"] == pytest.approx(100.0)

    def test_offline_servers_excluded(self, pool):
        pool.servers[0].state = ServerState.OFFLINE_MAINTENANCE
        routing = pool.route({"query": 900.0})
        assert len(routing) == 9
        assert pool.servers[0].server_id not in routing
        for per_server in routing.values():
            assert per_server["query"] == pytest.approx(100.0)

    def test_no_online_servers_drops_traffic(self, pool):
        for server in pool.servers:
            server.state = ServerState.OFFLINE_FAILED
        assert pool.route({"query": 100.0}) == {}

    def test_step_reports_all_servers(self, pool, rng):
        pool.servers[0].state = ServerState.OFFLINE_MAINTENANCE
        obs = pool.step(0, {"query": 900.0}, rng)
        assert len(obs) == 10  # offline servers still report availability
        offline_id = pool.servers[0].server_id
        assert obs[offline_id] == {"Server Online": 0.0}


class TestFleet:
    def test_topology_accessors(self, pool, profile):
        dc = Datacenter("DC1", "us-west", -8.0)
        fleet = Fleet([dc])
        deployment = PoolDeployment(
            pool=pool, datacenter=dc, pattern=DiurnalPattern(base_rps=100.0)
        )
        fleet.add_deployment(deployment)
        assert fleet.pool_ids == ("B",)
        assert fleet.total_servers() == 10
        assert fleet.servers_of_pool("B") == 10
        assert fleet.deployment("B", "DC1") is deployment
        assert list(fleet.deployments()) == [deployment]

    def test_duplicate_deployment_rejected(self, pool, profile):
        dc = Datacenter("DC1", "r", 0.0)
        fleet = Fleet([dc])
        deployment = PoolDeployment(
            pool=pool, datacenter=dc, pattern=DiurnalPattern(base_rps=100.0)
        )
        fleet.add_deployment(deployment)
        with pytest.raises(ValueError):
            fleet.add_deployment(deployment)

    def test_unknown_datacenter_rejected(self, pool):
        fleet = Fleet([Datacenter("DC1", "r", 0.0)])
        other = PoolDeployment(
            pool=pool,
            datacenter=Datacenter("DC9", "r", 0.0),
            pattern=DiurnalPattern(base_rps=100.0),
        )
        with pytest.raises(KeyError):
            fleet.add_deployment(other)

    def test_missing_deployment_lookup(self):
        fleet = Fleet([Datacenter("DC1", "r", 0.0)])
        with pytest.raises(KeyError):
            fleet.deployment("B", "DC1")

    def test_duplicate_datacenters_rejected(self):
        with pytest.raises(ValueError):
            Fleet([Datacenter("DC1", "r", 0.0), Datacenter("DC1", "r", 1.0)])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            Fleet([])
