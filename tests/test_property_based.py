"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.baselines.queuing import erlang_c_wait_probability
from repro.cluster.latency import LatencyModel
from repro.stats.descriptive import empirical_cdf, percentile_profile
from repro.stats.regression import fit_linear, fit_polynomial
from repro.telemetry.query_server import LiveQuerySurface
from repro.telemetry.series import TimeSeries
from repro.telemetry.store import MetricStore
from repro.workload.diurnal import DiurnalPattern, WINDOWS_PER_DAY
from repro.workload.request_mix import RequestClass, RequestMix

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRegressionProperties:
    @given(
        slope=st.floats(min_value=-100, max_value=100, allow_nan=False),
        intercept=st.floats(min_value=-100, max_value=100, allow_nan=False),
        n=st.integers(min_value=3, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_line_recovered(self, slope, intercept, n):
        x = np.linspace(0.0, 10.0, n)
        model = fit_linear(x, slope * x + intercept)
        assert model.slope == pytest.approx(slope, abs=1e-6 + 1e-6 * abs(slope))
        assert model.intercept == pytest.approx(
            intercept, abs=1e-6 + 1e-6 * abs(intercept)
        )

    @given(
        values=st.lists(finite_floats, min_size=4, max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_r2_at_most_one(self, values):
        x = np.arange(len(values), dtype=float)
        model = fit_linear(x, values)
        assert model.r2 <= 1.0 + 1e-9

    @given(
        coeffs=st.tuples(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            st.floats(min_value=-5, max_value=5, allow_nan=False),
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_quadratic_exact_recovery(self, coeffs):
        a, b, c = coeffs
        x = np.linspace(-3, 3, 20)
        model = fit_polynomial(x, a * x**2 + b * x + c, degree=2)
        pred = model.predict(1.7)
        expected = a * 1.7**2 + b * 1.7 + c
        assert pred == pytest.approx(expected, abs=1e-6 + 1e-4 * abs(expected))


class TestDescriptiveProperties:
    @given(values=st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_percentile_profile_monotone(self, values):
        profile = percentile_profile(values)
        assert np.all(np.diff(profile) >= -1e-12)

    @given(values=st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_cdf_is_monotone_distribution(self, values):
        cdf = empirical_cdf(values)
        assert np.all(np.diff(cdf.ps) >= 0)
        assert cdf.ps[-1] == pytest.approx(1.0)
        assert cdf.fraction_at_or_below(float(np.max(values))) == pytest.approx(1.0)

    @given(
        values=st.lists(finite_floats, min_size=1, max_size=100),
        x=finite_floats,
    )
    @settings(max_examples=60, deadline=None)
    def test_cdf_fractions_complement(self, values, x):
        cdf = empirical_cdf(values)
        total = cdf.fraction_at_or_below(x) + cdf.fraction_above(x)
        assert total == pytest.approx(1.0)


class TestTimeSeriesProperties:
    @given(values=st.lists(finite_floats, min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_align_with_self_is_identity(self, values):
        ts = TimeSeries(np.arange(len(values)), np.asarray(values))
        a, b = ts.align_with(ts)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, ts.values)

    @given(
        values=st.lists(finite_floats, min_size=1, max_size=100),
        factor=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_resample_sum_conserves_total(self, values, factor):
        ts = TimeSeries(np.arange(len(values)), np.asarray(values))
        down = ts.resample(factor, "sum")
        assert float(down.values.sum()) == pytest.approx(
            float(ts.values.sum()), rel=1e-9, abs=1e-6
        )


class TestWorkloadProperties:
    @given(
        base=st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
        amplitude=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
        window=st.integers(min_value=0, max_value=10 * WINDOWS_PER_DAY),
    )
    @settings(max_examples=80, deadline=None)
    def test_demand_never_negative(self, base, amplitude, window):
        pattern = DiurnalPattern(
            base_rps=base, daily_amplitude=amplitude, second_harmonic=0.1
        )
        assert pattern.demand_at(window) >= 0.0

    @given(
        total=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        window=st.integers(min_value=0, max_value=5000),
        drift=st.floats(min_value=0.0, max_value=0.8, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_split_volume_conserves_total(self, total, window, drift):
        mix = RequestMix(
            classes=(
                RequestClass("a", 0.01),
                RequestClass("b", 0.02),
                RequestClass("c", 0.05),
            ),
            proportions=(0.5, 0.3, 0.2),
            drift=drift,
        )
        split = mix.split_volume(total, window)
        assert sum(split.values()) == pytest.approx(total, rel=1e-9, abs=1e-9)
        assert all(v >= 0 for v in split.values())


class TestLatencyModelProperties:
    @given(
        rps=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        util=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_latency_finite_positive(self, rps, util):
        model = LatencyModel(base_ms=10.0)
        latency = model.p95_ms(rps, util)
        assert np.isfinite(latency)
        assert latency >= model.base_ms

    @given(
        u1=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
        u2=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_latency_monotone_in_utilization(self, u1, u2):
        assume(u1 < u2)
        model = LatencyModel(base_ms=10.0, cold_ms=0.0)
        assert model.p95_ms(100.0, u1) <= model.p95_ms(100.0, u2)


class TestRetentionProperties:
    """Rolling retention (``evict_windows``) is a placement change only.

    Random (horizon, block, retention, fleet-size) combinations, driven
    the way the streaming loop drives the store — ingest a block, evict
    everything below ``current - retain`` — must never drop a window
    inside the retention horizon, must read evicted windows back from
    the spill archive bit-equal to a never-evicted store, and must keep
    hot rows bounded by ``retain × servers``.
    """

    @staticmethod
    def _streamed_pair(n_windows, n_servers, block, retain, seed):
        """(evicting store, never-evicting reference, evicted row count)."""
        rng = np.random.default_rng(seed)
        evicting, reference = MetricStore(), MetricStore()
        ids = [f"s{i:02d}" for i in range(n_servers)]
        idx = evicting.intern_servers(ids)
        reference.intern_servers(ids)
        evicted = 0
        for start in range(0, n_windows, block):
            stop = min(start + block, n_windows)
            windows = np.repeat(
                np.arange(start, stop, dtype=np.int64), n_servers
            )
            servers = np.tile(idx, stop - start)
            values = rng.normal(100.0, 15.0, windows.size)
            for store in (evicting, reference):
                # record_columns takes ownership of its arrays.
                store.record_columns(
                    "B", "DC1", "Requests/sec",
                    windows.copy(), servers.copy(), values.copy(),
                )
            cutoff = stop - retain
            if cutoff > 0:
                evicted += evicting.evict_windows(cutoff)
        return evicting, reference, evicted

    retention_args = dict(
        n_windows=st.integers(min_value=1, max_value=120),
        n_servers=st.integers(min_value=1, max_value=6),
        block=st.integers(min_value=1, max_value=32),
        retain=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )

    @given(**retention_args)
    @settings(max_examples=25, deadline=None)
    def test_retention_horizon_never_dropped(
        self, n_windows, n_servers, block, retain, seed
    ):
        evicting, _, evicted = self._streamed_pair(
            n_windows, n_servers, block, retain, seed
        )
        # The watermark never reaches into the retained span, and hot +
        # evicted account for every row ever ingested.
        assert evicting.evicted_before <= max(0, n_windows - retain)
        assert evicting.hot_sample_count() + evicted == n_windows * n_servers
        assert (
            evicting.hot_sample_count()
            == (n_windows - evicting.evicted_before) * n_servers
        )

    @given(**retention_args)
    @settings(max_examples=25, deadline=None)
    def test_evicted_windows_read_back_bit_equal(
        self, n_windows, n_servers, block, retain, seed
    ):
        evicting, reference, _ = self._streamed_pair(
            n_windows, n_servers, block, retain, seed
        )
        for reducer in ("mean", "sum", "max", "count"):
            a = evicting.pool_window_aggregate(
                "B", "Requests/sec", reducer=reducer
            )
            b = reference.pool_window_aggregate(
                "B", "Requests/sec", reducer=reducer
            )
            np.testing.assert_array_equal(a.windows, b.windows)
            np.testing.assert_array_equal(a.values, b.values)
        for server in evicting.servers_in_pool("B"):
            xa = evicting.server_series("B", "Requests/sec", server)
            xb = reference.server_series("B", "Requests/sec", server)
            np.testing.assert_array_equal(xa.windows, xb.windows)
            np.testing.assert_array_equal(xa.values, xb.values)

    @given(**retention_args)
    @settings(max_examples=25, deadline=None)
    def test_hot_rows_bounded(self, n_windows, n_servers, block, retain, seed):
        evicting, _, _ = self._streamed_pair(
            n_windows, n_servers, block, retain, seed
        )
        # The loop evicts after each block, so at rest the hot span is
        # at most the retained span (plus nothing — eviction ran last).
        assert evicting.hot_sample_count() <= retain * n_servers


#: Fixed topology of the interleaving machine: two DCs, two servers
#: each.  Small on purpose — hypothesis explores interleavings, not
#: fleet size (the retention suite above randomizes sizes).
_SM_DCS = ("DC1", "DC2")
_SM_SERVERS_PER_DC = 2
_SM_N = len(_SM_DCS) * _SM_SERVERS_PER_DC


class StreamedStoreMachine(RuleBasedStateMachine):
    """Arbitrary ingest / ``seal_through`` / ``evict_windows`` / query
    interleavings against a naive recompute oracle.

    The machine drives one :class:`MetricStore` exactly the way the
    streaming loop is allowed to — windows ingested in order, seals at
    any completed window, evictions at any cutoff inside the sealed
    span — but in *every* order hypothesis can shrink to, reading
    through the same :class:`LiveQuerySurface` the query server serves.
    The oracle is deliberately dumb: plain dicts of every row ever
    ingested, recomputed per query.  Values are small integers, so
    every reducer (mean included: an exact integer sum, one division)
    is bit-exact on both sides.
    """

    def __init__(self):
        super().__init__()
        self.store = MetricStore()
        self.surface = LiveQuerySurface(self.store)
        ids = [f"s{i}" for i in range(_SM_N)]
        self.idx = self.store.intern_servers(ids)
        self.names = ids
        self.store.track_aggregate("B", "rps", None, "mean")
        #: dc -> window -> {server index -> value}: the naive oracle.
        self.rows = {dc: {} for dc in _SM_DCS}
        self.next_window = 0
        self.sealed = -1
        self.watermark = 0
        self.evicted_rows = 0

    # -- mutations (the streaming loop's alphabet) ---------------------
    @rule(
        masks=st.lists(
            st.booleans(), min_size=_SM_N, max_size=_SM_N
        ),
        values=st.lists(
            st.integers(min_value=0, max_value=1000),
            min_size=_SM_N, max_size=_SM_N,
        ),
    )
    def ingest_window(self, masks, values):
        """One whole window arrives: a per-DC subset of servers reports."""
        window = self.next_window
        for dc_i, dc in enumerate(_SM_DCS):
            lo = dc_i * _SM_SERVERS_PER_DC
            members = [
                (self.idx[i], values[i])
                for i in range(lo, lo + _SM_SERVERS_PER_DC)
                if masks[i]
            ]
            if not members:
                continue
            indices = np.array([m[0] for m in members], dtype=np.int64)
            vals = np.array([m[1] for m in members], dtype=np.float64)
            self.store.record_batch("B", dc, "rps", window, indices, vals)
            self.rows[dc][window] = {
                index: value for index, value in members
            }
        self.next_window += 1

    @precondition(lambda self: self.next_window > 0)
    @rule(back=st.integers(min_value=0, max_value=8))
    def seal(self, back):
        """Seal through any completed window (re-sealing lower: no-op)."""
        target = self.next_window - 1 - back
        if target < 0:
            return
        self.store.seal_through(target)
        self.sealed = max(self.sealed, target)

    @rule(back=st.integers(min_value=0, max_value=8))
    def evict(self, back):
        """Evict at any cutoff inside the sealed span (idempotent below
        the watermark); the return value must equal the oracle's count
        of rows crossing the watermark."""
        cutoff = self.sealed + 1 - back
        if cutoff < 0:
            return
        expected = sum(
            len(by_server)
            for dc in _SM_DCS
            for w, by_server in self.rows[dc].items()
            if self.watermark <= w < cutoff
        )
        moved = self.store.evict_windows(cutoff)
        if cutoff <= self.watermark:
            assert moved == 0
        else:
            assert moved == expected
            self.watermark = cutoff
            self.evicted_rows += moved

    # -- queries (through the served surface) --------------------------
    def _oracle_aggregate(self, datacenter_id, reducer):
        per_window = {}
        for dc in _SM_DCS:
            if datacenter_id is not None and dc != datacenter_id:
                continue
            for window, by_server in self.rows[dc].items():
                per_window.setdefault(window, []).extend(by_server.values())
        windows = sorted(per_window)
        reduce = {
            "mean": lambda v: float(sum(v)) / len(v),
            "sum": lambda v: float(sum(v)),
            "max": lambda v: float(max(v)),
            "count": lambda v: float(len(v)),
        }[reducer]
        return (
            np.array(windows, dtype=np.int64),
            np.array([reduce(per_window[w]) for w in windows]),
        )

    @precondition(lambda self: any(self.rows[dc] for dc in _SM_DCS))
    @rule(
        datacenter_id=st.sampled_from((None,) + _SM_DCS),
        reducer=st.sampled_from(("mean", "sum", "max", "count")),
    )
    def query_aggregate(self, datacenter_id, reducer):
        if datacenter_id is not None and not self.rows[datacenter_id]:
            return
        series = self.surface.pool_window_aggregate(
            "B", "rps", datacenter_id=datacenter_id, reducer=reducer
        )
        windows, values = self._oracle_aggregate(datacenter_id, reducer)
        np.testing.assert_array_equal(series.windows, windows)
        np.testing.assert_array_equal(series.values, values)

    @rule(server=st.integers(min_value=0, max_value=_SM_N - 1))
    def query_server_series(self, server):
        dc = _SM_DCS[server // _SM_SERVERS_PER_DC]
        index = self.idx[server]
        expected = sorted(
            (w, by_server[index])
            for w, by_server in self.rows[dc].items()
            if index in by_server
        )
        if not expected:
            return
        series = self.surface.server_series("B", "rps", self.names[server])
        np.testing.assert_array_equal(
            series.windows, np.array([w for w, _ in expected], dtype=np.int64)
        )
        np.testing.assert_array_equal(
            series.values, np.array([v for _, v in expected])
        )

    # -- invariants ----------------------------------------------------
    @invariant()
    def accounting_holds(self):
        total = sum(
            len(by_server)
            for dc in _SM_DCS
            for by_server in self.rows[dc].values()
        )
        assert self.store.sample_count() == total
        assert (
            self.store.hot_sample_count() + self.evicted_rows == total
        )
        assert self.store.evicted_before == self.watermark

    @invariant()
    def watermarks_monotone(self):
        assert self.store.sealed_through == self.sealed
        assert self.watermark <= max(self.sealed + 1, 0)


TestStreamedStoreMachine = StreamedStoreMachine.TestCase
TestStreamedStoreMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)


class TestErlangCProperties:
    @given(
        offered=st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
        servers=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, offered, servers):
        p = erlang_c_wait_probability(offered, 1.0, servers)
        assert 0.0 <= p <= 1.0

    @given(
        offered=st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
        servers=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_servers(self, offered, servers):
        p1 = erlang_c_wait_probability(offered, 1.0, servers)
        p2 = erlang_c_wait_probability(offered, 1.0, servers + 1)
        assert p2 <= p1 + 1e-12
