"""Tests for the Step-4 offline regression gate (Fig 16)."""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.deployment import (
    SoftwareVersion,
    leak_fix_with_latency_regression,
    leaky_version,
)
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.regression_analysis import RegressionGate, profile_response
from repro.telemetry.counters import Counter
from repro.workload.synthetic import RampPlan
from tests.conftest import FULL_COUNTERS


def _ramped_profile(version, label, seed=61, n_servers=12):
    """Run a synthetic ramp against a pool pinned to one version."""
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=n_servers, seed=seed
    )
    sim = Simulator(
        fleet,
        seed=seed,
        config=SimulationConfig(
            counters=FULL_COUNTERS, apply_availability_policies=False,
        ),
    )
    sim.set_version("B", version)
    deployment = sim.fleet.deployment("B", "DC1")
    ramp = RampPlan.linear(
        50.0 * n_servers, 500.0 * n_servers, n_levels=10, windows_per_level=12
    )
    # Drive the ramp by replacing the diurnal pattern with fixed levels.
    original_demand = deployment.pattern

    class _RampPattern:
        def __init__(self, plan):
            self.plan = plan

        def demand_at(self, window):
            step = min(window, self.plan.total_windows - 1)
            return self.plan.level_at(step)

    deployment.pattern = _RampPattern(ramp)
    sim.run(ramp.total_windows)
    deployment.pattern = original_demand
    return profile_response(sim.store, "B", label, datacenter_id="DC1")


@pytest.fixture(scope="module")
def baseline_profile():
    return _ramped_profile(leaky_version(), "baseline-leaky")


@pytest.fixture(scope="module")
def regressed_profile():
    return _ramped_profile(
        leak_fix_with_latency_regression(queue_multiplier=2.5), "leak-fix"
    )


@pytest.fixture(scope="module")
def clean_profile():
    return _ramped_profile(SoftwareVersion(name="clean"), "clean")


class TestResponseProfile:
    def test_leak_detected(self, baseline_profile):
        assert baseline_profile.has_memory_leak

    def test_clean_build_no_leak(self, clean_profile):
        assert not clean_profile.has_memory_leak

    def test_latency_by_level_buckets(self, baseline_profile):
        assert len(baseline_profile.latency_by_level) >= 5
        for values in baseline_profile.latency_by_level.values():
            assert values.size > 0

    def test_cpu_model_linear(self, baseline_profile):
        assert baseline_profile.cpu_model.r2 > 0.9


class TestFig16Scenario:
    def test_gate_catches_latency_regression(
        self, baseline_profile, regressed_profile
    ):
        gate = RegressionGate(latency_tolerance_ms=2.0)
        report = gate.compare(baseline_profile, regressed_profile)
        # Fig 16: the change fixed the leak...
        assert report.memory_leak_fixed
        # ...but regressed latency under load.
        assert report.latency_regressed
        assert not report.passed
        assert report.max_latency_regression_ms > 2.0

    def test_regression_grows_with_load(self, baseline_profile, regressed_profile):
        report = RegressionGate().compare(baseline_profile, regressed_profile)
        # The queue-multiplier defect only bites at high workload.
        assert report.latency_delta_ms[-1] > report.latency_delta_ms[0]

    def test_clean_change_passes(self, clean_profile):
        other = _ramped_profile(SoftwareVersion(name="clean2"), "clean2", seed=62)
        report = RegressionGate(latency_tolerance_ms=3.0, cpu_tolerance_pct=2.0).compare(
            clean_profile, other
        )
        assert report.passed, report.describe()

    def test_cpu_regression_detected(self, clean_profile):
        heavy = _ramped_profile(
            SoftwareVersion(name="cpu-hog", cpu_multiplier=1.5), "cpu-hog", seed=63
        )
        report = RegressionGate().compare(clean_profile, heavy)
        assert report.cpu_regressed
        assert not report.passed

    def test_capacity_impact_positive_for_regression(
        self, baseline_profile, regressed_profile
    ):
        report = RegressionGate().compare(baseline_profile, regressed_profile)
        impact = report.capacity_impact_fraction(latency_limit_ms=36.0)
        assert impact > 0.05

    def test_describe_verdict(self, baseline_profile, regressed_profile):
        report = RegressionGate().compare(baseline_profile, regressed_profile)
        assert "FAIL" in report.describe()


class TestGateGuards:
    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            RegressionGate(latency_tolerance_ms=-1.0)

    def test_disjoint_ranges_rejected(self, clean_profile):
        from dataclasses import replace

        shifted = replace(clean_profile, rps_range=(1e6, 2e6))
        with pytest.raises(ValueError):
            RegressionGate().compare(clean_profile, shifted)
