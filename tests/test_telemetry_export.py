"""Tests for telemetry export/import and the CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.telemetry.counters import Counter
from repro.telemetry.export import export_store, import_store, iter_rows
from repro.telemetry.store import MetricStore


@pytest.fixture()
def small_store():
    store = MetricStore()
    for w in range(5):
        store.record_fast(w, "s0", "B", "DC1", "cpu", float(w) * 1.5)
        store.record_fast(w, "s1", "B", "DC1", "cpu", float(w))
        store.record_fast(w, "s0", "B", "DC1", "lat", 30.0 + w)
    return store


class TestRoundTrip:
    def test_csv_round_trip(self, small_store, tmp_path):
        path = tmp_path / "archive.csv"
        rows = export_store(small_store, path)
        assert rows == 15
        loaded = import_store(path)
        assert loaded.sample_count() == small_store.sample_count()
        original = small_store.server_series("B", "cpu", "s0")
        reloaded = loaded.server_series("B", "cpu", "s0")
        np.testing.assert_array_equal(original.windows, reloaded.windows)
        np.testing.assert_array_equal(original.values, reloaded.values)

    def test_gzip_round_trip(self, small_store, tmp_path):
        path = tmp_path / "archive.csv.gz"
        export_store(small_store, path)
        loaded = import_store(path)
        assert loaded.sample_count() == 15
        assert path.stat().st_size > 0

    def test_counter_filter(self, small_store, tmp_path):
        path = tmp_path / "cpu_only.csv"
        rows = export_store(small_store, path, counters=["cpu"])
        assert rows == 10
        loaded = import_store(path)
        assert loaded.counters_for_pool("B") == ("cpu",)

    def test_values_exact(self, small_store, tmp_path):
        # repr() round-trips floats exactly.
        path = tmp_path / "exact.csv"
        small_store.record_fast(9, "s0", "B", "DC1", "cpu", 0.1 + 0.2)
        export_store(small_store, path)
        loaded = import_store(path)
        series = loaded.server_series("B", "cpu", "s0")
        assert series.values[-1] == 0.1 + 0.2

    def test_iter_rows(self, small_store, tmp_path):
        path = tmp_path / "rows.csv"
        export_store(small_store, path)
        rows = list(iter_rows(path))
        assert len(rows) == 15
        assert rows[0]["pool_id"] == "B"
        assert isinstance(rows[0]["value"], float)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ValueError):
            import_store(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text(
            "window,server_id,pool_id,datacenter_id,counter,value\n1,2,3\n"
        )
        with pytest.raises(ValueError):
            import_store(path)


class TestCli:
    def test_simulate_then_plan(self, tmp_path, capsys):
        archive = tmp_path / "fleet.csv.gz"
        rc = main([
            "simulate", str(archive), "--days", "1", "--datacenters", "2",
            "--servers", "3", "--pools", "B", "--seed", "3",
        ])
        assert rc == 0
        assert archive.exists()

        rc = main(["plan", str(archive), "--no-dr"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Server Pool" in out
        assert "fleet-wide" in out

    def test_validate_command(self, tmp_path, capsys):
        archive = tmp_path / "fleet.csv"
        main([
            "simulate", str(archive), "--days", "1", "--datacenters", "1",
            "--servers", "4", "--pools", "D", "--seed", "4",
        ])
        rc = main(["validate", str(archive)])
        assert rc == 0
        assert "valid_aggregate" in capsys.readouterr().out

    def test_availability_command(self, tmp_path, capsys):
        archive = tmp_path / "fleet.csv"
        main([
            "simulate", str(archive), "--days", "1", "--datacenters", "1",
            "--servers", "4", "--pools", "D", "--seed", "4",
        ])
        rc = main(["availability", str(archive)])
        assert rc == 0
        assert "fleet mean availability" in capsys.readouterr().out

    def test_plan_with_slo_override(self, tmp_path, capsys):
        archive = tmp_path / "fleet.csv"
        main([
            "simulate", str(archive), "--days", "1", "--datacenters", "1",
            "--servers", "4", "--pools", "B", "--seed", "5",
        ])
        rc = main(["plan", str(archive), "--no-dr", "--slo-ms", "40"])
        assert rc == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
