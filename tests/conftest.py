"""Shared fixtures: pre-simulated metric stores.

Simulation is the expensive part of most tests, so a few canonical
stores are built once per session and shared read-only.  Tests that
mutate simulators build their own.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.builders import (
    PAPER_DATACENTERS,
    build_paper_fleet,
    build_single_pool_fleet,
)
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.telemetry.counters import Counter

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Counter set including the per-class workload splits (pool A needs them).
FULL_COUNTERS = (
    Counter.REQUESTS.value,
    Counter.PROCESSOR_UTILIZATION.value,
    Counter.LATENCY_P95.value,
    Counter.AVAILABILITY.value,
    Counter.NETWORK_BYTES_TOTAL.value,
    Counter.MEMORY_WORKING_SET.value,
    "Requests/sec[table_user]",
    "Requests/sec[table_index]",
)


@pytest.fixture(scope="session")
def pool_b_sim():
    """One pool (B), one DC, 30 servers, 2 days, no downtime policies."""
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=30, seed=11
    )
    sim = Simulator(
        fleet,
        seed=11,
        config=SimulationConfig(apply_availability_policies=False),
    )
    sim.run(1440)
    return sim


@pytest.fixture(scope="session")
def pool_b_store(pool_b_sim):
    return pool_b_sim.store


@pytest.fixture(scope="session")
def multi_dc_sim():
    """Pool D across 4 DCs, 16 servers each, 2 days (for DR planning)."""
    fleet = build_single_pool_fleet(
        "D", n_datacenters=4, servers_per_deployment=16, seed=13
    )
    sim = Simulator(
        fleet,
        seed=13,
        config=SimulationConfig(apply_availability_policies=False),
    )
    sim.run(1440)
    return sim


@pytest.fixture(scope="session")
def fleet_sim():
    """Small paper fleet: all 7 pools, all 9 DCs, availability policies on.

    Nine datacenters matter: the disaster-recovery headroom for losing
    one DC is ~1/8 of demand, as in the paper's fleet, instead of the
    ~1/2 a three-DC toy would impose.
    """
    fleet = build_paper_fleet(
        servers_per_deployment=6,
        datacenters=PAPER_DATACENTERS,
        seed=17,
    )
    sim = Simulator(
        fleet,
        seed=17,
        config=SimulationConfig(counters=FULL_COUNTERS),
    )
    sim.run(1440)  # two days
    return sim


@pytest.fixture(scope="session")
def fleet_store(fleet_sim):
    return fleet_sim.store


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class ShardServerProcesses:
    """Spawn and reap real ``repro shard-server`` subprocesses.

    The one place the Popen/stdout-line/reap dance lives (it used to be
    copy-pasted across the CLI, fault-tolerance and benchmark suites).
    ``spawn`` returns ``(process, address)`` — the address parsed from
    the server's first stdout line, the documented scripting interface
    for ``--listen`` port 0.  Callers that end servers with signals
    still own the timing; the fixture's teardown reaps whatever is
    left, so a failing test never leaks a child.
    """

    def __init__(self) -> None:
        self._processes: list = []

    def spawn(self, max_sessions: int | None = None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        argv = [
            sys.executable, "-m", "repro", "shard-server",
            "--listen", "127.0.0.1:0",
        ]
        if max_sessions is not None:
            argv += ["--max-sessions", str(max_sessions)]
        process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        self._processes.append(process)
        line = process.stdout.readline()
        assert line.startswith("shard-server listening on "), line
        return process, line.rsplit(" ", 1)[-1].strip()

    def reap(self, process) -> None:
        """Kill (if still alive) and wait; idempotent."""
        if process.poll() is None:
            process.kill()
        process.wait(timeout=30)
        if process.stdout is not None and not process.stdout.closed:
            process.stdout.close()

    def reap_all(self) -> None:
        for process in self._processes:
            self.reap(process)
        self._processes.clear()


@pytest.fixture(scope="session")
def shard_server_processes():
    """Session-scoped spawner/reaper for shard-server subprocesses."""
    spawner = ShardServerProcesses()
    yield spawner
    spawner.reap_all()


@pytest.fixture(scope="session")
def shard_server():
    """One loopback shard server shared by every tcp-backend test.

    One ``ShardServer`` can host any number of shard sessions (each
    connection gets a fresh store), so the whole suite's tcp stores
    point their ``shard_addrs`` at this single listener.  Tests that
    exercise server *failure* start their own throwaway server
    instead.
    """
    from repro.telemetry.workers import ShardServer

    with ShardServer("127.0.0.1:0") as server:
        yield server
