"""Unit tests for repro.workload.diurnal."""

import numpy as np
import pytest

from repro.workload.diurnal import WINDOWS_PER_DAY, WINDOWS_PER_WEEK, DiurnalPattern


class TestWindowsPerDay:
    def test_720_windows_at_120s(self):
        assert WINDOWS_PER_DAY == 720
        assert WINDOWS_PER_WEEK == 5040


class TestDiurnalPattern:
    def test_mean_near_base(self):
        pattern = DiurnalPattern(base_rps=1000.0)
        demand = pattern.demand_series(WINDOWS_PER_DAY)
        assert demand.mean() == pytest.approx(1000.0, rel=0.1)

    def test_daily_swing_matches_amplitude(self):
        pattern = DiurnalPattern(base_rps=1000.0, daily_amplitude=0.5, second_harmonic=0.0)
        peak, trough = pattern.daily_peak(), pattern.daily_trough()
        assert peak == pytest.approx(1500.0, rel=0.02)
        assert trough == pytest.approx(500.0, rel=0.05)

    def test_peak_at_configured_local_hour(self):
        pattern = DiurnalPattern(
            base_rps=100.0, second_harmonic=0.0, peak_hour_local=20.0,
            timezone_offset_hours=0.0,
        )
        demand = pattern.demand_series(WINDOWS_PER_DAY)
        peak_window = int(np.argmax(demand))
        peak_hour = peak_window / WINDOWS_PER_DAY * 24.0
        assert peak_hour == pytest.approx(20.0, abs=0.2)

    def test_timezone_shifts_peak(self):
        base = DiurnalPattern(base_rps=100.0, second_harmonic=0.0)
        shifted = DiurnalPattern(
            base_rps=100.0, second_harmonic=0.0, timezone_offset_hours=6.0
        )
        d_base = base.demand_series(WINDOWS_PER_DAY)
        d_shift = shifted.demand_series(WINDOWS_PER_DAY)
        # +6h offset means the same local hour occurs 6h earlier in
        # simulation time.
        shift_windows = int(6 / 24 * WINDOWS_PER_DAY)
        peak_delta = (int(np.argmax(d_base)) - int(np.argmax(d_shift))) % WINDOWS_PER_DAY
        assert peak_delta == pytest.approx(shift_windows, abs=3)

    def test_weekend_dip(self):
        pattern = DiurnalPattern(base_rps=100.0, weekend_factor=0.5)
        weekday = pattern.demand_at(0)
        weekend = pattern.demand_at(5 * WINDOWS_PER_DAY)
        assert weekend == pytest.approx(weekday * 0.5)

    def test_weekly_growth_compounds(self):
        pattern = DiurnalPattern(base_rps=100.0, weekly_growth=0.1)
        now = pattern.demand_at(0)
        later = pattern.demand_at(WINDOWS_PER_WEEK)
        assert later / now == pytest.approx(1.1, rel=0.01)

    def test_demand_never_negative(self):
        pattern = DiurnalPattern(base_rps=10.0, daily_amplitude=0.9, second_harmonic=0.3)
        demand = pattern.demand_series(WINDOWS_PER_WEEK)
        assert np.all(demand >= 0.0)

    def test_with_base_keeps_shape(self):
        pattern = DiurnalPattern(base_rps=100.0, daily_amplitude=0.3)
        scaled = pattern.with_base(200.0)
        assert scaled.base_rps == 200.0
        assert scaled.daily_amplitude == 0.3
        assert scaled.demand_at(7) == pytest.approx(2 * pattern.demand_at(7))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiurnalPattern(base_rps=0.0)
        with pytest.raises(ValueError):
            DiurnalPattern(base_rps=1.0, daily_amplitude=1.5)
        with pytest.raises(ValueError):
            DiurnalPattern(base_rps=1.0, weekend_factor=0.0)

    def test_negative_window_count_rejected(self):
        with pytest.raises(ValueError):
            DiurnalPattern(base_rps=1.0).demand_series(-1)
