"""Tests for the fitted response curves and load partitioning."""

import numpy as np
import pytest

from repro.core.curves import (
    fit_pool_response,
    fit_qos_model,
    fit_resource_model,
    fit_servers_qos_model,
)
from repro.core.partitions import (
    partition_by_total_load,
    partition_observations,
)
from repro.telemetry.counters import Counter
from repro.telemetry.series import TimeSeries
from repro.telemetry.store import MetricStore


class TestResourceModel:
    def test_slope_matches_ground_truth(self, pool_b_store):
        model = fit_resource_model(pool_b_store, "B", "DC1")
        # Pool B's ground-truth CPU cost is 0.028 %/RPS.
        assert model.model.slope == pytest.approx(0.028, rel=0.05)
        assert model.r2 > 0.95

    def test_forecast_cpu(self, pool_b_store):
        model = fit_resource_model(pool_b_store, "B", "DC1")
        cpu = model.forecast_cpu(400.0)
        assert 10.0 < cpu < 15.0

    def test_invert(self, pool_b_store):
        model = fit_resource_model(pool_b_store, "B", "DC1")
        rps = model.max_rps_at_cpu(model.forecast_cpu(300.0))
        assert rps == pytest.approx(300.0, rel=0.01)

    def test_insufficient_data_raises(self):
        with pytest.raises(ValueError):
            fit_resource_model(MetricStore(), "B")


class TestQoSModel:
    def test_quadratic_shape(self, pool_b_store):
        model = fit_qos_model(pool_b_store, "B", "DC1")
        # Convex upward: positive leading coefficient.
        assert model.model.coefficients[0] > 0

    def test_forecast_monotone_at_high_load(self, pool_b_store):
        model = fit_qos_model(pool_b_store, "B", "DC1")
        high = model.model.x_max
        assert model.forecast_latency(high * 2.0) > model.forecast_latency(high)

    def test_max_rps_within_limit(self, pool_b_store):
        model = fit_qos_model(pool_b_store, "B", "DC1")
        limit = 36.0
        max_rps = model.max_rps_within(limit)
        assert model.forecast_latency(max_rps) <= limit + 0.1
        # Must lie beyond the observed peak (pool B has headroom).
        assert max_rps > model.model.x_max

    def test_impossible_limit_raises(self, pool_b_store):
        model = fit_qos_model(pool_b_store, "B", "DC1")
        with pytest.raises(ValueError):
            model.max_rps_within(0.001)

    def test_extrapolation_flag(self, pool_b_store):
        model = fit_qos_model(pool_b_store, "B", "DC1")
        assert model.is_extrapolating(model.model.x_max * 2)
        mid = 0.5 * (model.model.x_min + model.model.x_max)
        assert not model.is_extrapolating(mid)

    def test_ols_fallback(self, pool_b_store):
        model = fit_qos_model(pool_b_store, "B", "DC1", use_ransac=False)
        assert model.inlier_fraction == 1.0

    def test_fit_pool_response_returns_both(self, pool_b_store):
        resource, qos = fit_pool_response(pool_b_store, "B", "DC1")
        assert resource.pool_id == qos.pool_id == "B"


class TestPartitions:
    def _series(self, values):
        return TimeSeries(np.arange(len(values)), np.asarray(values, float))

    def test_quantile_buckets_balanced(self, rng):
        load = self._series(rng.uniform(100, 1000, 600))
        partitions = partition_by_total_load(load, n_partitions=4)
        assert len(partitions) == 4
        sizes = [p.n_observations for p in partitions]
        assert max(sizes) - min(sizes) <= 2

    def test_bounds_cover_all_windows(self, rng):
        load = self._series(rng.uniform(0, 10, 300))
        partitions = partition_by_total_load(load, n_partitions=3)
        total = sum(p.n_observations for p in partitions)
        assert total == 300

    def test_empty_series(self):
        assert partition_by_total_load(TimeSeries([], []), 3) == []

    def test_ties_collapse_instead_of_empty(self):
        load = self._series([5.0] * 100)
        partitions = partition_by_total_load(load, n_partitions=4)
        assert len(partitions) == 1
        assert partitions[0].n_observations == 100

    def test_min_observations_filter(self, rng):
        load = self._series(rng.uniform(0, 10, 12))
        partitions = partition_by_total_load(load, n_partitions=6, min_observations=8)
        assert all(p.n_observations >= 8 for p in partitions)

    def test_contains_and_midpoint(self, rng):
        load = self._series(rng.uniform(0, 10, 100))
        p = partition_by_total_load(load, 2)[0]
        assert p.contains(p.midpoint)

    def test_partition_observations_alignment(self, pool_b_store):
        total = pool_b_store.pool_window_aggregate(
            "B", Counter.REQUESTS.value, datacenter_id="DC1", reducer="sum"
        )
        partitions = partition_by_total_load(total, 3)
        ns, ls = partition_observations(pool_b_store, "B", "DC1", partitions[0])
        assert ns.size == ls.size > 0
        assert np.all(ns == 30)  # fixed pool size in the fixture


class TestServersQoSModel:
    def test_eq1_fit_and_inversion(self, rng):
        # Synthetic Eq. 1 data: latency falls as servers increase.
        ns = np.repeat([20, 25, 30, 35, 40], 20).astype(float)
        true = 0.02 * ns**2 - 2.0 * ns + 80.0
        ls = true + rng.normal(0, 0.4, ns.size)
        model = fit_servers_qos_model(ns, ls, "B", "DC1", 0, rng=rng)
        assert model.forecast_latency(40) < model.forecast_latency(20)
        # min_servers_within walks down from 40 until the limit binds.
        limit = model.forecast_latency(30) + 0.5
        n_min = model.min_servers_within(limit, n_current=40)
        assert 28 <= n_min <= 32

    def test_two_distinct_counts_fit_linear(self, rng):
        ns = np.array([20.0] * 10 + [30.0] * 10)
        ls = np.array([50.0] * 10 + [40.0] * 10) + rng.normal(0, 0.1, 20)
        model = fit_servers_qos_model(ns, ls, "B", "DC1", 0, rng=rng)
        assert model.model.coefficients[0] == 0.0  # degenerate -> linear
        assert model.forecast_latency(25.0) == pytest.approx(45.0, abs=1.0)

    def test_too_few_points_rejected(self, rng):
        with pytest.raises(ValueError):
            fit_servers_qos_model(
                np.array([1.0, 2.0]), np.array([1.0, 2.0]), "B", "DC1", 0, rng=rng
            )

    def test_min_servers_respects_floor(self, rng):
        ns = np.repeat([10, 20, 30], 10).astype(float)
        ls = np.repeat([5.0, 5.0, 5.0], 10) + rng.normal(0, 0.01, 30)
        model = fit_servers_qos_model(ns, ls, "B", "DC1", 0, rng=rng)
        assert model.min_servers_within(100.0, n_current=30, n_floor=5) == 5
