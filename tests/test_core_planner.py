"""Tests for the CapacityPlanner facade and savings summary."""

import numpy as np
import pytest

from repro.analysis.savings import PAPER_TABLE_IV, summarize_savings
from repro.core.planner import CapacityPlanner
from repro.core.slo import QoSRequirement
from repro.cluster.service import service_catalog


@pytest.fixture(scope="module")
def fleet_plan(fleet_store):
    catalog = service_catalog()
    qos = {
        name: QoSRequirement(latency_p95_ms=profile.slo_latency_ms)
        for name, profile in catalog.items()
    }
    planner = CapacityPlanner(fleet_store, qos, survive_dc_loss=True)
    return planner.plan()


class TestFleetPlan:
    def test_all_pools_planned(self, fleet_plan):
        assert {s.pool_id for s in fleet_plan.summaries} == set("ABCDEFG")

    def test_overprovisioned_pools_save_more(self, fleet_plan):
        # D/F are provisioned at 12 % peak CPU; C/G near their limit.
        generous = np.mean([
            fleet_plan.summary_for(p).efficiency_savings for p in ("D", "F")
        ])
        tight = np.mean([
            fleet_plan.summary_for(p).efficiency_savings for p in ("C", "G")
        ])
        assert generous > tight

    def test_repurposed_pool_dominates_online_savings(self, fleet_plan):
        online = {s.pool_id: s.online_savings for s in fleet_plan.summaries}
        assert online["B"] == max(online.values())
        assert online["B"] > 0.15

    def test_total_savings_in_paper_band(self, fleet_plan):
        # Paper: 20 % to 40 % capacity reduction overall.
        assert 0.15 <= fleet_plan.mean_total_savings <= 0.5

    def test_latency_impact_small(self, fleet_plan):
        # Paper: ~5 ms average, "less than 1 % of overall service latency".
        assert fleet_plan.mean_latency_impact_ms < 12.0

    def test_render_savings_table(self, fleet_plan):
        table = fleet_plan.render_savings_table()
        assert "Server Pool" in table
        assert "Savings" in table
        for pool in "ABCDEFG":
            assert f"\n{pool} " in table or table.startswith(pool)

    def test_summary_for_unknown_raises(self, fleet_plan):
        with pytest.raises(KeyError):
            fleet_plan.summary_for("ZZ")


class TestPlannerGuards:
    def test_missing_qos_pool_skipped(self, fleet_store):
        planner = CapacityPlanner(
            fleet_store, {"B": QoSRequirement(latency_p95_ms=36.0)}
        )
        plan = planner.plan()
        assert [s.pool_id for s in plan.summaries] == ["B"]

    def test_plan_pool_without_qos_rejected(self, fleet_store):
        planner = CapacityPlanner(fleet_store, {})
        with pytest.raises(KeyError):
            planner.plan_pool("B")

    def test_empty_plan_rejected(self, fleet_store):
        planner = CapacityPlanner(fleet_store, {"nonexistent": QoSRequirement(10.0)})
        with pytest.raises(ValueError):
            planner.plan()


class TestSavingsSummary:
    def test_rows_match_plan(self, fleet_plan):
        summary = summarize_savings(fleet_plan)
        assert len(summary.rows) == 7
        row_b = summary.row_for("B")
        assert row_b.total_savings == fleet_plan.summary_for("B").total_savings

    def test_paper_reference_complete(self):
        assert set(PAPER_TABLE_IV) == set("ABCDEFG")

    def test_render_comparison(self, fleet_plan):
        text = summarize_savings(fleet_plan).render_comparison()
        assert "paper" in text
        assert "mean" in text

    def test_unknown_row_raises(self, fleet_plan):
        with pytest.raises(KeyError):
            summarize_savings(fleet_plan).row_for("ZZ")
