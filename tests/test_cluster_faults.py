"""Unit tests for repro.cluster.faults."""

import numpy as np
import pytest

from repro.cluster.faults import (
    AlwaysOnline,
    DatacenterOutage,
    MaintenancePolicy,
    RandomFailures,
    RepurposingPolicy,
    RollingMaintenance,
    TrafficSurge,
    policy_for_availability,
    policy_online_mask,
    policy_online_mask_block,
)
from repro.workload.diurnal import WINDOWS_PER_DAY


def _mean_availability(policy, n_servers=20, days=2):
    online = 0
    total = 0
    for w in range(days * WINDOWS_PER_DAY):
        for s in range(n_servers):
            online += policy.is_online(s, n_servers, w)
            total += 1
    return online / total


class TestRollingMaintenance:
    def test_target_downtime_achieved(self):
        policy = RollingMaintenance(daily_downtime_fraction=0.02)
        availability = _mean_availability(policy)
        assert availability == pytest.approx(0.98, abs=0.005)

    def test_zero_downtime(self):
        policy = RollingMaintenance(daily_downtime_fraction=0.0)
        assert _mean_availability(policy, n_servers=3, days=1) == 1.0

    def test_slots_staggered(self):
        # At any instant only a small share of servers should be out.
        policy = RollingMaintenance(daily_downtime_fraction=0.1)
        n = 50
        for w in range(0, WINDOWS_PER_DAY, 37):
            offline = sum(
                1 for s in range(n) if not policy.is_online(s, n, w)
            )
            assert offline <= n * 0.2

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            RollingMaintenance(daily_downtime_fraction=1.0)


class TestMaintenancePolicy:
    def test_high_target(self):
        policy = MaintenancePolicy(target_availability=0.95)
        assert _mean_availability(policy) == pytest.approx(0.95, abs=0.01)


class TestRepurposingPolicy:
    def test_for_target_availability(self):
        policy = RepurposingPolicy.for_target_availability(0.71)
        availability = _mean_availability(policy, n_servers=40, days=3)
        assert availability == pytest.approx(0.71, abs=0.04)

    def test_high_target_means_no_borrowing(self):
        policy = RepurposingPolicy.for_target_availability(0.99)
        assert policy.borrowed_fraction == 0.0

    def test_downtime_is_nocturnal(self):
        policy = RepurposingPolicy(borrowed_fraction=0.5, night_start_hour=1.0, night_hours=8.0)
        n = 20
        # Mid-afternoon window: no borrowing.
        afternoon = int(15 / 24 * WINDOWS_PER_DAY)
        offline_pm = sum(1 for s in range(n) if not policy.is_online(s, n, afternoon))
        # 3 AM window: borrowed subset offline.
        night = int(3 / 24 * WINDOWS_PER_DAY)
        offline_night = sum(1 for s in range(n) if not policy.is_online(s, n, night))
        assert offline_night >= 9
        assert offline_pm <= 2  # only base maintenance

    def test_rotation_spreads_downtime(self):
        policy = RepurposingPolicy(borrowed_fraction=0.5, base_maintenance=0.0)
        n = 10
        night = int(3 / 24 * WINDOWS_PER_DAY)
        day0 = {s for s in range(n) if not policy.is_online(s, n, night)}
        day1 = {
            s for s in range(n)
            if not policy.is_online(s, n, night + WINDOWS_PER_DAY)
        }
        assert day0 != day1


class TestPolicyForAvailability:
    def test_high_availability_uses_rolling(self):
        assert isinstance(policy_for_availability(0.98), MaintenancePolicy)

    def test_low_availability_uses_repurposing(self):
        assert isinstance(policy_for_availability(0.8), RepurposingPolicy)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            policy_for_availability(0.0)


class TestRandomFailures:
    def test_deterministic_per_seed(self):
        failures = RandomFailures(daily_probability=0.5, seed=3)
        flags1 = [failures.is_failed(4, w) for w in range(100)]
        flags2 = [failures.is_failed(4, w) for w in range(100)]
        assert flags1 == flags2

    def test_zero_probability_never_fails(self):
        failures = RandomFailures(daily_probability=0.0)
        assert not any(failures.is_failed(0, w) for w in range(2 * WINDOWS_PER_DAY))

    def test_rate_roughly_matches(self):
        failures = RandomFailures(daily_probability=0.5, duration_windows=10, seed=1)
        failed_days = 0
        for server in range(200):
            if any(failures.is_failed(server, w) for w in range(WINDOWS_PER_DAY)):
                failed_days += 1
        assert 60 <= failed_days <= 140  # ~100 expected


class TestBlockMasks:
    """Cross-window mask grids match the per-window masks row for row."""

    POLICIES = (
        AlwaysOnline(),
        RollingMaintenance(daily_downtime_fraction=0.1),
        MaintenancePolicy(target_availability=0.97),
        RepurposingPolicy(borrowed_fraction=0.4),
    )

    @pytest.mark.parametrize(
        "policy", POLICIES, ids=lambda p: type(p).__name__
    )
    def test_block_rows_equal_per_window_masks(self, policy):
        windows = np.arange(700, 740)
        block = policy_online_mask_block(policy, 13, windows)
        assert block.shape == (windows.size, 13)
        for row, window in zip(block, windows):
            np.testing.assert_array_equal(
                row, policy_online_mask(policy, 13, int(window))
            )

    def test_rolling_block_wraps_midnight(self):
        policy = RollingMaintenance(daily_downtime_fraction=0.3)
        windows = np.arange(WINDOWS_PER_DAY - 5, WINDOWS_PER_DAY + 5)
        block = policy_online_mask_block(policy, 10, windows)
        for row, window in zip(block, windows):
            np.testing.assert_array_equal(
                row, policy.online_mask(10, int(window))
            )

    def test_block_fallback_for_custom_policy(self):
        class OddWindowsOnly:
            def is_online(self, server_index, n_servers, window):
                return window % 2 == 1

        block = policy_online_mask_block(OddWindowsOnly(), 4, np.arange(6))
        np.testing.assert_array_equal(block[:, 0], [False, True] * 3)


class TestEvents:
    def test_outage_active_range(self):
        outage = DatacenterOutage("DC1", start_window=10, duration_windows=5)
        assert not outage.active_at(9)
        assert outage.active_at(10)
        assert outage.active_at(14)
        assert not outage.active_at(15)

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            DatacenterOutage("DC1", start_window=-1, duration_windows=5)
        with pytest.raises(ValueError):
            DatacenterOutage("DC1", start_window=0, duration_windows=0)

    def test_surge_applies_to(self):
        surge = TrafficSurge("DC5", 100, 50, factor=4.0, pool_id="D")
        assert surge.applies_to("D", "DC5", 120)
        assert not surge.applies_to("B", "DC5", 120)
        assert not surge.applies_to("D", "DC1", 120)
        assert not surge.applies_to("D", "DC5", 10)

    def test_surge_all_pools_when_unset(self):
        surge = TrafficSurge("DC5", 0, 10, factor=2.0)
        assert surge.applies_to("anything", "DC5", 5)

    def test_surge_validation(self):
        with pytest.raises(ValueError):
            TrafficSurge("DC1", 0, 10, factor=0.0)
