"""Unit tests for repro.workload.traces."""

import numpy as np
import pytest

from repro.workload.diurnal import DiurnalPattern
from repro.workload.request_mix import RequestClass, RequestMix
from repro.workload.traces import WorkloadTrace, generate_trace


@pytest.fixture()
def mix():
    return RequestMix(
        classes=(RequestClass("a", 0.01), RequestClass("b", 0.02)),
        proportions=(0.7, 0.3),
    )


@pytest.fixture()
def pattern():
    return DiurnalPattern(base_rps=500.0)


class TestWorkloadTrace:
    def test_class_volumes_align(self):
        trace = WorkloadTrace(
            start_window=0,
            totals=np.array([10.0, 20.0]),
            class_volumes={"a": np.array([10.0, 20.0])},
        )
        assert len(trace) == 2
        assert trace.class_names == ("a",)

    def test_misaligned_volumes_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTrace(
                start_window=0,
                totals=np.array([10.0, 20.0]),
                class_volumes={"a": np.array([10.0])},
            )

    def test_total_at_window(self):
        trace = WorkloadTrace(5, np.array([1.0, 2.0]), {"a": np.array([1.0, 2.0])})
        assert trace.total_at(6) == 2.0
        with pytest.raises(IndexError):
            trace.total_at(7)

    def test_class_volume_at(self):
        trace = WorkloadTrace(0, np.array([3.0]), {"a": np.array([3.0])})
        assert trace.class_volume_at(0) == {"a": 3.0}

    def test_scaled(self):
        trace = WorkloadTrace(0, np.array([2.0]), {"a": np.array([2.0])})
        doubled = trace.scaled(2.0)
        assert doubled.totals[0] == 4.0
        assert doubled.class_volumes["a"][0] == 4.0

    def test_scaled_negative_rejected(self):
        trace = WorkloadTrace(0, np.array([2.0]), {"a": np.array([2.0])})
        with pytest.raises(ValueError):
            trace.scaled(-1.0)

    def test_concat_contiguous(self):
        a = WorkloadTrace(0, np.array([1.0, 2.0]), {"x": np.array([1.0, 2.0])})
        b = WorkloadTrace(2, np.array([3.0]), {"x": np.array([3.0])})
        joined = a.concat(b)
        assert len(joined) == 3
        assert joined.total_at(2) == 3.0

    def test_concat_gap_rejected(self):
        a = WorkloadTrace(0, np.array([1.0]), {"x": np.array([1.0])})
        b = WorkloadTrace(5, np.array([1.0]), {"x": np.array([1.0])})
        with pytest.raises(ValueError):
            a.concat(b)

    def test_concat_class_mismatch_rejected(self):
        a = WorkloadTrace(0, np.array([1.0]), {"x": np.array([1.0])})
        b = WorkloadTrace(1, np.array([1.0]), {"y": np.array([1.0])})
        with pytest.raises(ValueError):
            a.concat(b)


class TestGenerateTrace:
    def test_shape_and_classes(self, pattern, mix, rng):
        trace = generate_trace(pattern, mix, 100, rng)
        assert len(trace) == 100
        assert set(trace.class_names) == {"a", "b"}

    def test_class_volumes_sum_to_totals(self, pattern, mix, rng):
        trace = generate_trace(pattern, mix, 50, rng)
        summed = trace.class_volumes["a"] + trace.class_volumes["b"]
        np.testing.assert_allclose(summed, trace.totals, rtol=1e-9)

    def test_noise_level(self, pattern, mix, rng):
        trace = generate_trace(pattern, mix, 720, rng, noise=0.05)
        expected = pattern.demand_series(720)
        ratio = trace.totals / expected
        assert np.std(ratio) == pytest.approx(0.05, rel=0.4)
        assert np.mean(ratio) == pytest.approx(1.0, rel=0.02)

    def test_zero_noise_deterministic(self, pattern, mix, rng):
        trace = generate_trace(pattern, mix, 50, rng, noise=0.0)
        np.testing.assert_allclose(trace.totals, pattern.demand_series(50))

    def test_reproducible_under_seed(self, pattern, mix):
        t1 = generate_trace(pattern, mix, 50, np.random.default_rng(3))
        t2 = generate_trace(pattern, mix, 50, np.random.default_rng(3))
        np.testing.assert_array_equal(t1.totals, t2.totals)

    def test_start_window_respected(self, pattern, mix, rng):
        trace = generate_trace(pattern, mix, 10, rng, start_window=100)
        assert trace.windows[0] == 100

    def test_invalid_args_rejected(self, pattern, mix, rng):
        with pytest.raises(ValueError):
            generate_trace(pattern, mix, -1, rng)
        with pytest.raises(ValueError):
            generate_trace(pattern, mix, 10, rng, noise=-0.1)
