"""Integration tests: the full methodology, end to end.

Each test walks more than one module boundary: simulate -> telemetry ->
validate -> group -> fit -> plan -> verify against the simulator's
ground truth (which the planner never saw).
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.service import service_catalog
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.curves import fit_pool_response
from repro.core.headroom import HeadroomPlanner
from repro.core.metric_validation import MetricValidator
from repro.core.slo import QoSRequirement
from repro.telemetry.counters import Counter


class TestBlackBoxDiscipline:
    """The planner recovers ground truth it was never shown."""

    def test_cpu_cost_recovered_from_telemetry(self, pool_b_store):
        model, _ = fit_pool_response(pool_b_store, "B", "DC1")
        truth = service_catalog()["B"].cpu_cost_per_rps()
        assert model.model.slope == pytest.approx(truth, rel=0.05)

    def test_idle_cpu_recovered(self, pool_b_store):
        model, _ = fit_pool_response(pool_b_store, "B", "DC1")
        truth = service_catalog()["B"].noise.idle_cpu_pct
        assert model.model.intercept == pytest.approx(truth, abs=0.5)

    def test_latency_floor_recovered(self, pool_b_store):
        _, qos = fit_pool_response(pool_b_store, "B", "DC1")
        profile = service_catalog()["B"]
        # Forecast at a moderate load point vs ground truth.
        rps = 300.0
        util = (profile.noise.idle_cpu_pct + profile.cpu_cost_per_rps() * rps) / 100
        truth = profile.latency.p95_ms(rps, util)
        assert qos.forecast_latency(rps) == pytest.approx(truth, rel=0.05)


class TestPlanThenVerify:
    """Apply a plan to the simulator and check QoS still holds."""

    @pytest.fixture(scope="class")
    def planned_world(self):
        fleet = build_single_pool_fleet(
            "B", n_datacenters=2, servers_per_deployment=24, seed=81
        )
        sim = Simulator(
            fleet, seed=81,
            config=SimulationConfig(apply_availability_policies=False),
        )
        sim.run(1440)
        qos = QoSRequirement(latency_p95_ms=36.0)
        planner = HeadroomPlanner(sim.store, survive_dc_loss=False)
        plan = planner.plan_pool("B", qos)
        return sim, plan, qos

    def test_plan_saves_capacity(self, planned_world):
        _sim, plan, _qos = planned_world
        assert plan.efficiency_savings > 0.15

    def test_qos_holds_after_applying_plan(self, planned_world):
        sim, plan, qos = planned_world
        for deployment_plan in plan.deployments:
            sim.resize_pool(
                "B", deployment_plan.datacenter_id, deployment_plan.planned_servers
            )
        start = sim.current_window
        sim.run(720)  # one full day at the reduced size
        for deployment_plan in plan.deployments:
            latency = sim.store.pool_window_aggregate(
                "B", Counter.LATENCY_P95.value,
                datacenter_id=deployment_plan.datacenter_id,
                start=start,
            )
            p95_of_means = latency.percentile(95)
            assert p95_of_means <= qos.latency_p95_ms * 1.05, (
                f"{deployment_plan.datacenter_id}: {p95_of_means:.1f} ms "
                f"exceeds SLO {qos.latency_p95_ms}"
            )

    def test_validation_still_passes_after_reduction(self, planned_world):
        sim, _plan, _qos = planned_world
        report = MetricValidator(sim.store).validate("B", "DC1")
        assert report.status.is_valid


class TestFailureInjection:
    """Unplanned failures must not corrupt planning inputs."""

    def test_random_failures_do_not_break_fits(self):
        from repro.cluster.faults import RandomFailures

        fleet = build_single_pool_fleet(
            "B", n_datacenters=1, servers_per_deployment=20, seed=83
        )
        sim = Simulator(
            fleet, seed=83,
            config=SimulationConfig(
                apply_availability_policies=False,
                random_failures=RandomFailures(daily_probability=0.1, seed=83),
            ),
        )
        sim.run(1440)
        resource, qos = fit_pool_response(sim.store, "B", "DC1")
        truth = service_catalog()["B"].cpu_cost_per_rps()
        assert resource.model.slope == pytest.approx(truth, rel=0.1)
        assert qos.model.coefficients[0] > 0

    def test_availability_counter_reflects_failures(self):
        from repro.cluster.faults import RandomFailures

        fleet = build_single_pool_fleet(
            "B", n_datacenters=1, servers_per_deployment=20, seed=85
        )
        sim = Simulator(
            fleet, seed=85,
            config=SimulationConfig(
                apply_availability_policies=False,
                random_failures=RandomFailures(daily_probability=0.5, seed=85),
            ),
        )
        sim.run(720)
        availability = sim.store.all_values(Counter.AVAILABILITY.value)
        assert 0.9 < availability.mean() < 1.0


class TestPublicApi:
    def test_top_level_imports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_docstring_flow(self):
        # The flow shown in repro.__doc__, at toy scale.
        from repro import (
            CapacityPlanner,
            QoSRequirement,
            Simulator,
            build_paper_fleet,
        )
        from repro.cluster.builders import PAPER_DATACENTERS

        fleet = build_paper_fleet(
            servers_per_deployment=3,
            datacenters=PAPER_DATACENTERS[:2],
            pools=["B", "D"],
            seed=7,
        )
        simulator = Simulator(fleet, seed=7)
        simulator.run_days(1)
        qos = {p: QoSRequirement(latency_p95_ms=60.0) for p in fleet.pool_ids}
        plan = CapacityPlanner(simulator.store, qos, survive_dc_loss=False).plan()
        table = plan.render_savings_table()
        assert "Server Pool" in table
