"""Unit tests for repro.telemetry.series."""

import numpy as np
import pytest

from repro.telemetry.series import TimeSeries


def _series(values, start=0):
    values = np.asarray(values, dtype=float)
    return TimeSeries(np.arange(start, start + values.size), values)


class TestConstruction:
    def test_from_pairs(self):
        ts = TimeSeries.from_pairs([(0, 1.0), (1, 2.0)])
        assert len(ts) == 2
        assert ts.values[1] == 2.0

    def test_from_pairs_empty(self):
        ts = TimeSeries.from_pairs([])
        assert ts.is_empty

    def test_unsorted_windows_are_sorted(self):
        ts = TimeSeries([3, 1, 2], [30.0, 10.0, 20.0])
        np.testing.assert_array_equal(ts.windows, [1, 2, 3])
        np.testing.assert_array_equal(ts.values, [10.0, 20.0, 30.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries([0, 1], [1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries([[0]], [[1.0]])


class TestSlicing:
    def test_slice_windows(self):
        ts = _series([1.0, 2.0, 3.0, 4.0])
        sliced = ts.slice_windows(1, 3)
        np.testing.assert_array_equal(sliced.windows, [1, 2])

    def test_slice_empty_result(self):
        ts = _series([1.0, 2.0])
        assert ts.slice_windows(10, 20).is_empty

    def test_where(self):
        ts = _series([1.0, 5.0, 2.0, 8.0])
        filtered = ts.where(lambda v: v > 2.0)
        np.testing.assert_array_equal(filtered.values, [5.0, 8.0])


class TestAggregates:
    def test_mean(self):
        assert _series([1.0, 2.0, 3.0]).mean() == pytest.approx(2.0)

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries.from_pairs([]).mean()

    def test_percentile(self):
        ts = _series(np.arange(101, dtype=float))
        assert ts.percentile(95) == pytest.approx(95.0)

    def test_percentiles_vector(self):
        ts = _series(np.arange(101, dtype=float))
        p = ts.percentiles([50, 95])
        assert p[0] == pytest.approx(50.0)
        assert p[1] == pytest.approx(95.0)


class TestAlign:
    def test_align_common_windows(self):
        a = TimeSeries([0, 1, 2, 5], [1.0, 2.0, 3.0, 6.0])
        b = TimeSeries([1, 2, 3], [20.0, 30.0, 40.0])
        va, vb = a.align_with(b)
        np.testing.assert_array_equal(va, [2.0, 3.0])
        np.testing.assert_array_equal(vb, [20.0, 30.0])

    def test_align_disjoint_is_empty(self):
        a = TimeSeries([0], [1.0])
        b = TimeSeries([1], [2.0])
        va, vb = a.align_with(b)
        assert va.size == 0 and vb.size == 0


class TestResample:
    def test_mean_resample(self):
        ts = _series([1.0, 3.0, 5.0, 7.0])
        down = ts.resample(2, "mean")
        np.testing.assert_array_equal(down.values, [2.0, 6.0])

    def test_max_resample(self):
        ts = _series([1.0, 3.0, 5.0, 7.0])
        down = ts.resample(2, "max")
        np.testing.assert_array_equal(down.values, [3.0, 7.0])

    def test_sum_resample(self):
        ts = _series([1.0, 1.0, 1.0])
        down = ts.resample(3, "sum")
        assert down.values[0] == 3.0

    def test_unknown_reducer_rejected(self):
        with pytest.raises(ValueError):
            _series([1.0, 2.0]).resample(2, "median")

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            _series([1.0]).resample(0)


class TestDiffFraction:
    def test_step_change(self):
        ts = _series([100.0, 150.0])
        diff = ts.diff_fraction()
        assert diff.values[0] == pytest.approx(0.5)

    def test_short_series_empty(self):
        assert _series([1.0]).diff_fraction().is_empty

    def test_zero_previous_handled(self):
        ts = _series([0.0, 10.0])
        assert ts.diff_fraction().values[0] == 0.0
