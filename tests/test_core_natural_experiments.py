"""Tests for natural-experiment detection and analysis (§II-B1)."""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.faults import DatacenterOutage, TrafficSurge
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.natural_experiments import (
    analyze_natural_experiment,
    detect_surge_events,
)
from repro.workload.diurnal import WINDOWS_PER_DAY


@pytest.fixture(scope="module")
def outage_sim():
    """4-DC pool B with a 2-hour DC1 outage in the middle of day 3."""
    fleet = build_single_pool_fleet(
        "B", n_datacenters=4, servers_per_deployment=14, seed=51
    )
    sim = Simulator(
        fleet, seed=51, config=SimulationConfig(apply_availability_policies=False)
    )
    start = 2 * WINDOWS_PER_DAY + 300
    sim.add_outage(DatacenterOutage("DC1", start, 60))  # 2 hours
    sim.run(4 * WINDOWS_PER_DAY)
    return sim, start


@pytest.fixture(scope="module")
def surge_sim():
    """Pool D in 2 DCs with a 4x surge on DC2 (the Fig 6 event)."""
    fleet = build_single_pool_fleet(
        "D", n_datacenters=2, servers_per_deployment=20, seed=53
    )
    sim = Simulator(
        fleet, seed=53, config=SimulationConfig(apply_availability_policies=False)
    )
    start = 2 * WINDOWS_PER_DAY + 350
    sim.add_surge(TrafficSurge("DC2", start, 45, factor=4.0, pool_id="D"))
    sim.run(4 * WINDOWS_PER_DAY)
    return sim, start


class TestDetection:
    def test_outage_surge_detected_on_survivors(self, outage_sim):
        sim, start = outage_sim
        events = detect_surge_events(sim.store, "B", "DC2", threshold=0.2)
        assert events, "no surge detected on surviving datacenter"
        event = max(events, key=lambda e: e.peak_increase_fraction)
        assert abs(event.start_window - start) <= 10
        assert event.median_increase_fraction > 0.2

    def test_no_false_positives_on_calm_dc(self, pool_b_store):
        events = detect_surge_events(pool_b_store, "B", "DC1", threshold=0.5)
        assert events == []

    def test_4x_surge_magnitude(self, surge_sim):
        sim, start = surge_sim
        events = detect_surge_events(sim.store, "D", "DC2", threshold=0.5)
        assert events
        event = max(events, key=lambda e: e.peak_increase_fraction)
        # 4x demand = +300 %.
        assert event.peak_increase_fraction > 2.0

    def test_short_history_returns_nothing(self, outage_sim):
        sim, _ = outage_sim
        # Re-detect over a store slice shorter than 2 days: none.
        from repro.telemetry.store import MetricStore

        assert detect_surge_events(MetricStore(), "B", "DC2") == []

    def test_describe(self, surge_sim):
        sim, _ = surge_sim
        events = detect_surge_events(sim.store, "D", "DC2", threshold=0.5)
        assert "surge in D@DC2" in events[0].describe()


class TestAnalysis:
    def test_linear_cpu_model_holds_through_event(self, outage_sim):
        sim, _ = outage_sim
        events = detect_surge_events(sim.store, "B", "DC2", threshold=0.2)
        event = max(events, key=lambda e: e.peak_increase_fraction)
        report = analyze_natural_experiment(sim.store, event)
        # Fig 5's claim: the pre/post-fit linear model predicts the
        # event-period CPU accurately.
        assert report.cpu_relative_error < 0.1

    def test_quadratic_latency_holds_through_4x(self, surge_sim):
        sim, _ = surge_sim
        events = detect_surge_events(sim.store, "D", "DC2", threshold=0.5)
        event = max(events, key=lambda e: e.peak_increase_fraction)
        report = analyze_natural_experiment(sim.store, event)
        assert report.latency_relative_error < 0.25
        assert report.load_extension_factor > 1.5
        assert report.model_held(tolerance=0.25)

    def test_event_extends_trusted_range(self, surge_sim):
        sim, _ = surge_sim
        events = detect_surge_events(sim.store, "D", "DC2", threshold=0.5)
        event = max(events, key=lambda e: e.peak_increase_fraction)
        report = analyze_natural_experiment(sim.store, event)
        assert report.max_event_rps_per_server > report.max_calm_rps_per_server
