"""Tests for the §III-A experiment orchestration."""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.experiments import SimulatorRunner, run_reduction_experiment


def _sim(pool="B", servers=30, seed=71):
    fleet = build_single_pool_fleet(
        pool, n_datacenters=1, servers_per_deployment=servers, seed=seed
    )
    return Simulator(
        fleet, seed=seed, config=SimulationConfig(apply_availability_policies=False)
    )


@pytest.fixture(scope="module")
def pool_b_report():
    sim = _sim()
    return run_reduction_experiment(
        sim, "B", "DC1",
        reduction_fraction=0.30,
        baseline_windows=1440,
        reduced_windows=720,
        demand_scale_during_reduction=1.1,
    )


class TestSimulatorRunner:
    def test_run_reduction_resizes_and_advances(self):
        sim = _sim(seed=72)
        runner = SimulatorRunner(sim)
        start, stop = runner.run_reduction("B", "DC1", 20, 50)
        assert (start, stop) == (0, 50)
        assert sim.fleet.deployment("B", "DC1").pool.size == 20


class TestReductionExperiment:
    def test_rps_per_server_increases(self, pool_b_report):
        report = pool_b_report
        assert report.reduced.rps_per_server_p95 > report.baseline.rps_per_server_p95
        assert report.rps_increase_at_p95 > 0.3  # 30 % fewer servers + growth

    def test_cpu_forecast_accurate(self, pool_b_report):
        # Paper: forecast 16.5 % vs measured 17.4 %.
        assert pool_b_report.cpu_forecast_error_pct < 1.5

    def test_latency_forecast_accurate(self, pool_b_report):
        # Paper: forecast 31.5 ms vs measured 30.9 ms.
        assert pool_b_report.latency_forecast_error_ms < 2.5

    def test_models_trained_on_baseline_only(self, pool_b_report):
        assert pool_b_report.resource_model.model.n == 1440

    def test_percentile_table_renders(self, pool_b_report):
        table = pool_b_report.render_percentile_table()
        assert "Original Server Count" in table
        assert "% Change" in table

    def test_describe_includes_forecasts(self, pool_b_report):
        text = pool_b_report.describe()
        assert "forecast CPU" in text
        assert "forecast p95 latency" in text

    def test_invalid_fraction_rejected(self):
        sim = _sim(seed=73, servers=10)
        with pytest.raises(ValueError):
            run_reduction_experiment(
                sim, "B", "DC1", reduction_fraction=1.5,
                baseline_windows=100, reduced_windows=50,
            )

    def test_invalid_demand_scale_rejected(self):
        sim = _sim(seed=74, servers=10)
        with pytest.raises(ValueError):
            run_reduction_experiment(
                sim, "B", "DC1", reduction_fraction=0.1,
                baseline_windows=100, reduced_windows=50,
                demand_scale_during_reduction=0.0,
            )


class TestPoolDExperiment:
    def test_pool_d_10pct_reduction(self):
        # The §III-A2 replication: 10 % reduction, smaller load shift.
        sim = _sim(pool="D", servers=30, seed=75)
        report = run_reduction_experiment(
            sim, "D", "DC1",
            reduction_fraction=0.10,
            baseline_windows=1440,
            reduced_windows=720,
            demand_scale_during_reduction=1.1,
        )
        assert report.cpu_forecast_error_pct < 1.5
        assert report.latency_forecast_error_ms < 3.0
        assert 0.1 < report.rps_increase_at_p95 < 0.5
