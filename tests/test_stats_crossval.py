"""Unit tests for repro.stats.crossval."""

import numpy as np
import pytest

from repro.stats.crossval import (
    auc_score,
    confusion_counts,
    cross_validate_classifier,
    k_fold_indices,
    roc_curve,
)
from repro.stats.decision_tree import DecisionTreeClassifier


class TestKFold:
    def test_partitions_cover_everything(self, rng):
        seen = np.zeros(50, dtype=int)
        for train, test in k_fold_indices(50, 5, rng=rng):
            seen[test] += 1
            assert len(set(train) & set(test)) == 0
            assert len(train) + len(test) == 50
        assert np.all(seen == 1)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            list(k_fold_indices(3, 5))

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError):
            list(k_fold_indices(10, 1))


class TestRoc:
    def test_perfect_classifier_auc_one(self):
        labels = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert auc_score(labels, scores) == pytest.approx(1.0)

    def test_random_classifier_auc_half(self, rng):
        labels = rng.integers(0, 2, 2000)
        scores = rng.uniform(0, 1, 2000)
        assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_inverted_classifier_auc_zero(self):
        labels = [0, 0, 1, 1]
        scores = [0.9, 0.8, 0.2, 0.1]
        assert auc_score(labels, scores) == pytest.approx(0.0)

    def test_roc_endpoints(self):
        fpr, tpr, _ = roc_curve([0, 1, 0, 1], [0.3, 0.6, 0.4, 0.9])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve([1, 1], [0.5, 0.6])


class TestConfusion:
    def test_counts(self):
        tp, fp, tn, fn = confusion_counts([1, 1, 0, 0], [1, 0, 0, 1])
        assert (tp, fp, tn, fn) == (1, 1, 1, 1)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts([1], [1, 0])


class TestCrossValidate:
    def test_tree_on_separable_data(self, rng):
        x = rng.normal(size=(300, 2))
        x[150:, 0] += 5.0
        y = np.r_[np.zeros(150, dtype=int), np.ones(150, dtype=int)]
        result = cross_validate_classifier(
            lambda: DecisionTreeClassifier(min_leaf_size=10),
            x, y, k=5, rng=rng,
        )
        assert result.auc > 0.95
        assert result.accuracy > 0.9
        assert result.k == 5
        assert "AUC" in result.describe()
