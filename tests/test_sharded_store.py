"""Unit tests of the hash-partitioned ShardedMetricStore facade.

The facade contract: identical answers to a single MetricStore fed the
same batches — bit-identical for every query whose accumulation order
is defined (aggregates, matrices, per-server reads, series, exports) —
with rows physically spread across shards by server index.  The
``pair`` fixture parametrizes the whole equivalence suite over all
four shard backends (serial, threads, processes, tcp), so every
assertion below — including the byte-identical export check — also
proves the worker-process and network RPC paths.
"""

import threading

import numpy as np
import pytest

from repro.telemetry.counters import CounterSample
from repro.telemetry.export import export_store, import_store
from repro.telemetry.sharding import BACKENDS, ShardedMetricStore
from repro.telemetry.store import MetricStore

REDUCERS = ("mean", "sum", "max", "count")


def _sharded(n_shards=3, backend="serial", server=None, **kwargs):
    """A sharded store for one backend, with a sensible worker width.

    ``server`` is the loopback ``ShardServer`` the tcp backend dials
    (``n_shards`` sessions against the one listener).
    """
    workers = n_shards if backend == "threads" else 1
    if backend == "tcp":
        kwargs["shard_addrs"] = [server.address] * n_shards
    return ShardedMetricStore(
        n_shards=n_shards, workers=workers, backend=backend, **kwargs
    )


def _fill(store, n_servers=20, n_windows=30, pools=("A", "B"), dcs=("dc1", "dc2")):
    """Feed identical batches through any store's record_batch path."""
    rng = np.random.default_rng(17)
    for pool in pools:
        for dc in dcs:
            server_ids = [f"{dc}.{pool}.s{i:03d}" for i in range(n_servers)]
            indices = store.intern_servers(server_ids)
            for window in range(n_windows):
                for counter in ("cpu", "rps"):
                    values = rng.uniform(0.0, 100.0, size=n_servers)
                    store.record_batch(pool, dc, counter, window, indices, values)
    return store


@pytest.fixture(scope="module", params=BACKENDS)
def pair(request, shard_server):
    single = _fill(MetricStore())
    sharded = _fill(_sharded(backend=request.param, server=shard_server))
    yield single, sharded
    sharded.close()


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedMetricStore(n_shards=0)
        with pytest.raises(ValueError):
            ShardedMetricStore(n_shards=2, workers=0)

    def test_workers_capped_at_shards(self):
        assert ShardedMetricStore(n_shards=2, workers=8).workers == 2

    def test_rows_actually_partitioned(self, pair):
        _single, sharded = pair
        counts = [shard.sample_count() for shard in sharded.shards]
        assert all(count > 0 for count in counts)
        assert sum(counts) == sharded.sample_count()

    def test_shard_routing_by_index(self, pair):
        _single, sharded = pair
        for shard_id, shard in enumerate(sharded.shards):
            for _key, _w, servers, _v in shard.iter_tables():
                assert np.all(servers % sharded.n_shards == shard_id)


class TestQueryEquivalence:
    def test_introspection(self, pair):
        single, sharded = pair
        assert single.pools == sharded.pools
        assert single.datacenters == sharded.datacenters
        assert single.max_window == sharded.max_window
        assert single.sample_count() == sharded.sample_count()
        for pool in single.pools:
            assert single.counters_for_pool(pool) == sharded.counters_for_pool(pool)
            assert single.datacenters_for_pool(pool) == sharded.datacenters_for_pool(
                pool
            )
            assert single.servers_in_pool(pool) == sharded.servers_in_pool(pool)
            assert single.servers_in_pool(pool, "dc1") == sharded.servers_in_pool(
                pool, "dc1"
            )

    @pytest.mark.parametrize("reducer", REDUCERS)
    def test_pool_window_aggregate_bit_identical(self, pair, reducer):
        single, sharded = pair
        for dc in (None, "dc1"):
            for start, stop in ((None, None), (5, 20)):
                a = single.pool_window_aggregate(
                    "A", "cpu", datacenter_id=dc, start=start, stop=stop,
                    reducer=reducer,
                )
                b = sharded.pool_window_aggregate(
                    "A", "cpu", datacenter_id=dc, start=start, stop=stop,
                    reducer=reducer,
                )
                np.testing.assert_array_equal(a.windows, b.windows)
                np.testing.assert_array_equal(a.values, b.values)

    def test_unknown_reducer_raises(self, pair):
        _single, sharded = pair
        with pytest.raises(ValueError):
            sharded.pool_window_aggregate("A", "cpu", reducer="median")

    def test_empty_aggregate(self, pair):
        _single, sharded = pair
        assert len(sharded.pool_window_aggregate("A", "nope")) == 0

    def test_per_server_values(self, pair):
        single, sharded = pair
        a = single.per_server_values("B", "rps")
        b = sharded.per_server_values("B", "rps")
        assert set(a) == set(b)
        for server in a:
            np.testing.assert_array_equal(a[server], b[server])

    def test_pool_matrix(self, pair):
        single, sharded = pair
        wa, na, ma = single.pool_matrix("A", "cpu")
        wb, nb, mb = sharded.pool_matrix("A", "cpu", start=None, stop=None)
        np.testing.assert_array_equal(wa, wb)
        assert na == nb
        np.testing.assert_array_equal(ma, mb)

    def test_pool_matrix_window_slice(self, pair):
        single, sharded = pair
        wa, na, ma = single.pool_matrix("B", "rps", datacenter_id="dc2", start=3, stop=9)
        wb, nb, mb = sharded.pool_matrix("B", "rps", datacenter_id="dc2", start=3, stop=9)
        np.testing.assert_array_equal(wa, wb)
        assert na == nb
        np.testing.assert_array_equal(ma, mb)

    def test_pool_matrix_empty(self, pair):
        _single, sharded = pair
        windows, names, matrix = sharded.pool_matrix("A", "nope")
        assert windows.size == 0 and names == () and matrix.size == 0

    def test_server_series(self, pair):
        single, sharded = pair
        for server in single.servers_in_pool("A")[:5]:
            a = single.server_series("A", "cpu", server, start=2, stop=25)
            b = sharded.server_series("A", "cpu", server, start=2, stop=25)
            np.testing.assert_array_equal(a.windows, b.windows)
            np.testing.assert_array_equal(a.values, b.values)
        assert len(sharded.server_series("A", "cpu", "unknown-server")) == 0

    def test_all_values_multiset(self, pair):
        single, sharded = pair
        a = np.sort(single.all_values("cpu"))
        b = np.sort(sharded.all_values("cpu"))
        np.testing.assert_array_equal(a, b)
        assert sharded.all_values("nope").size == 0

    def test_gather_columns_canonical_order(self, pair):
        single, sharded = pair
        wa, sa, va = single.gather_columns("A", "cpu")
        wb, sb, vb = sharded.gather_columns("A", "cpu")
        np.testing.assert_array_equal(wa, wb)
        np.testing.assert_array_equal(sa, sb)
        np.testing.assert_array_equal(va, vb)


class TestIngestPaths:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_record_fast_routes_to_owner_shard(self, backend, shard_server):
        with _sharded(n_shards=2, backend=backend, server=shard_server) as store:
            store.record_fast(0, "s0", "P", "dc", "cpu", 1.0)
            store.record_fast(0, "s1", "P", "dc", "cpu", 2.0)
            idx0 = store.interner.index["s0"]
            idx1 = store.interner.index["s1"]
            assert store.shards[store.shard_of(idx0)].sample_count() == 1
            assert store.shards[store.shard_of(idx1)].sample_count() == 1
            series = store.pool_window_aggregate("P", "cpu", reducer="sum")
            assert series.values[0] == pytest.approx(3.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_record_and_record_many(self, backend, shard_server):
        single = MetricStore()
        samples = [
            CounterSample(
                window_index=w,
                server_id=f"s{i}",
                pool_id="P",
                datacenter_id="dc",
                counter="cpu",
                value=float(w * 10 + i),
            )
            for w in range(4)
            for i in range(7)
        ]
        with _sharded(backend=backend, server=shard_server) as sharded:
            single.record_many(samples)
            sharded.record_many(samples)
            assert single.sample_count() == sharded.sample_count()
            a = single.pool_window_aggregate("P", "cpu")
            b = sharded.pool_window_aggregate("P", "cpu")
            np.testing.assert_array_equal(a.windows, b.windows)
            np.testing.assert_array_equal(a.values, b.values)
            sharded.record(samples[0])
            assert sharded.sample_count() == single.sample_count() + 1

    def test_record_batch_validation(self):
        store = ShardedMetricStore(n_shards=2)
        with pytest.raises(ValueError):
            store.record_batch("P", "dc", "cpu", 0, ["a", "b"], np.ones(3))
        store.record_batch("P", "dc", "cpu", 0, [], np.array([]))
        assert store.sample_count() == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cache_invalidated_on_ingest(self, backend, shard_server):
        with _fill(
            _sharded(n_shards=2, backend=backend, server=shard_server),
            n_servers=4, n_windows=3,
        ) as store:
            before = store.pool_window_aggregate("A", "cpu")
            assert store.pool_window_aggregate("A", "cpu") is before  # memoized
            store.record_batch(
                "A", "dc1", "cpu", 99, store.intern_servers(["dc1.A.s000"]),
                np.array([1.0]),
            )
            after = store.pool_window_aggregate("A", "cpu")
            assert after is not before
            assert after.windows[-1] == 99

    def test_memoized_series_frozen(self):
        store = _fill(ShardedMetricStore(n_shards=2), n_servers=4, n_windows=3)
        series = store.pool_window_aggregate("A", "cpu")
        with pytest.raises(ValueError):
            series.values[0] = -1.0

    def test_worker_pool_ingest_identical(self):
        serial = _fill(ShardedMetricStore(n_shards=4, workers=1))
        with ShardedMetricStore(n_shards=4, workers=4) as threaded:
            _fill(threaded)
            assert serial.sample_count() == threaded.sample_count()
            for pool in serial.pools:
                a = serial.pool_window_aggregate(pool, "cpu")
                b = threaded.pool_window_aggregate(pool, "cpu")
                np.testing.assert_array_equal(a.windows, b.windows)
                np.testing.assert_array_equal(a.values, b.values)

    def test_close_is_idempotent(self):
        store = ShardedMetricStore(n_shards=2, workers=2)
        _fill(store, n_servers=4, n_windows=2)
        store.close()
        store.close()


class TestCloseRace:
    """close() must be safe against in-flight ingest (threads backend).

    The historical race: a ``_dispatch`` that passed the executor
    check could submit to a pool ``close()`` had just shut down and
    die with the executor's own ``cannot schedule new futures``
    RuntimeError — an internals leak, and on remote backends a write
    to a torn-down connection.  The fix makes ingest-after-close a
    deterministic, clearly worded ``RuntimeError`` and the racing
    window atomic under the lifecycle lock.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ingest_after_close_raises_cleanly(self, backend, shard_server):
        store = _sharded(n_shards=2, backend=backend, server=shard_server)
        ids = store.intern_servers(["a", "b"])
        store.record_batch("P", "dc", "cpu", 0, ids, np.ones(2))
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.record_batch("P", "dc", "cpu", 1, ids, np.ones(2))
        with pytest.raises(RuntimeError, match="closed"):
            store.record_fast(1, "a", "P", "dc", "cpu", 1.0)

    def test_close_concurrent_with_ingest_threads_backend(self):
        """Hammer ingest from one thread while close() lands on another.

        The facade's contract is one ingesting caller; the fixed race
        is that caller being mid-``_dispatch`` when a second thread
        (a ``finally:`` block, an ``atexit`` hook) calls ``close()``.
        The racing ``record_batch`` must either complete or raise the
        clean closed-store error; anything else (the executor's
        'cannot schedule new futures', a write to a torn-down handle)
        is the regression.  Several attempts widen the race window.
        """
        for _attempt in range(5):
            store = ShardedMetricStore(n_shards=4, workers=4, backend="threads")
            ids = store.intern_servers([f"s{i}" for i in range(32)])
            # Warm the executor so close() has something to drain.
            store.record_batch("P", "dc", "cpu", 0, ids, np.ones(32))
            unexpected = []
            started = threading.Event()

            def ingest():
                started.set()
                window = 1
                while True:
                    try:
                        store.record_batch(
                            "P", "dc", "cpu", window, ids, np.ones(32)
                        )
                    except RuntimeError as error:
                        if "closed" not in str(error):
                            unexpected.append(error)
                        return
                    except BaseException as error:  # noqa: BLE001
                        unexpected.append(error)
                        return
                    window += 1

            thread = threading.Thread(target=ingest)
            thread.start()
            started.wait()
            store.close()
            thread.join(30)
            assert not thread.is_alive()
            assert not unexpected, unexpected


class TestExport:
    def test_export_identical_to_single_store(self, tmp_path, pair):
        single, sharded = pair
        single_path = tmp_path / "single.csv"
        sharded_path = tmp_path / "sharded.csv"
        assert export_store(single, single_path) == export_store(
            sharded, sharded_path
        )
        assert single_path.read_text() == sharded_path.read_text()

    def test_roundtrip_queries(self, tmp_path, pair):
        _single, sharded = pair
        path = tmp_path / "archive.csv"
        export_store(sharded, path)
        loaded = import_store(path)
        assert loaded.sample_count() == sharded.sample_count()
        a = loaded.pool_window_aggregate("A", "cpu", reducer="count")
        b = sharded.pool_window_aggregate("A", "cpu", reducer="count")
        np.testing.assert_array_equal(a.windows, b.windows)
        np.testing.assert_array_equal(a.values, b.values)
