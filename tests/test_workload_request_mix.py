"""Unit tests for repro.workload.request_mix."""

import numpy as np
import pytest

from repro.workload.request_mix import RequestClass, RequestMix


class TestRequestClass:
    def test_valid_construction(self):
        cls = RequestClass(name="q", cpu_cost=0.03)
        assert cls.latency_weight == 1.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RequestClass(name="", cpu_cost=0.1)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            RequestClass(name="x", cpu_cost=-0.1)


class TestRequestMix:
    def test_single_factory(self):
        mix = RequestMix.single("q", cpu_cost=0.05)
        assert mix.class_names == ("q",)
        assert mix.mean_cpu_cost() == pytest.approx(0.05)

    def test_proportions_normalised(self):
        mix = RequestMix(
            classes=(RequestClass("a", 0.1), RequestClass("b", 0.2)),
            proportions=(2.0, 2.0),
        )
        assert sum(mix.proportions) == pytest.approx(1.0)
        assert mix.proportions[0] == pytest.approx(0.5)

    def test_mean_cpu_cost_weighted(self):
        mix = RequestMix(
            classes=(RequestClass("a", 0.1), RequestClass("b", 0.3)),
            proportions=(0.75, 0.25),
        )
        assert mix.mean_cpu_cost() == pytest.approx(0.15)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(classes=(RequestClass("a", 0.1),), proportions=(0.5, 0.5))

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(classes=(), proportions=())

    def test_drift_bounds(self):
        with pytest.raises(ValueError):
            RequestMix(
                classes=(RequestClass("a", 0.1),), proportions=(1.0,), drift=1.0
            )


class TestShares:
    def test_no_drift_is_constant(self):
        mix = RequestMix(
            classes=(RequestClass("a", 0.1), RequestClass("b", 0.2)),
            proportions=(0.6, 0.4),
        )
        for w in (0, 100, 5000):
            np.testing.assert_allclose(mix.shares_at(w), [0.6, 0.4])

    def test_drift_changes_shares_over_time(self):
        mix = RequestMix(
            classes=(RequestClass("a", 0.1), RequestClass("b", 0.2)),
            proportions=(0.6, 0.4),
            drift=0.4,
        )
        s0 = mix.shares_at(0)
        s1 = mix.shares_at(400)
        assert not np.allclose(s0, s1)

    def test_shares_always_a_distribution(self):
        mix = RequestMix(
            classes=(RequestClass("a", 0.1), RequestClass("b", 0.2), RequestClass("c", 0.3)),
            proportions=(0.5, 0.3, 0.2),
            drift=0.6,
        )
        rng = np.random.default_rng(0)
        for w in range(0, 2000, 137):
            shares = mix.shares_at(w, rng)
            assert shares.sum() == pytest.approx(1.0)
            assert np.all(shares > 0)

    def test_split_volume_sums_to_total(self):
        mix = RequestMix(
            classes=(RequestClass("a", 0.1), RequestClass("b", 0.2)),
            proportions=(0.7, 0.3),
            drift=0.3,
        )
        split = mix.split_volume(1000.0, window=42)
        assert sum(split.values()) == pytest.approx(1000.0)

    def test_cpu_for_known_volume(self):
        mix = RequestMix(
            classes=(RequestClass("a", 0.01), RequestClass("b", 0.05)),
            proportions=(0.5, 0.5),
        )
        cpu = mix.cpu_for({"a": 100.0, "b": 10.0})
        assert cpu == pytest.approx(1.0 + 0.5)

    def test_cpu_for_unknown_class_rejected(self):
        mix = RequestMix.single("a")
        with pytest.raises(KeyError):
            mix.cpu_for({"zzz": 1.0})
