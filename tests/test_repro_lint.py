"""repro-lint: each pass fires, suppressions work, and the tree is clean.

The canary tests mutate a *copy* of ``src/repro`` (textually or via an
AST rewrite, per the rpc-surface drift canary) and assert the relevant
rule produces a named finding — proof that the gate would catch the
same drift landing in the real tree.  The clean-tree test is the other
half: zero findings on the repo as committed.
"""

from __future__ import annotations

import ast
import importlib.util
import json
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_DIR = REPO_ROOT / "tools" / "repro_lint"


def _load(module_name: str, path: Path):
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    # dataclass processing resolves string annotations through
    # sys.modules[cls.__module__], so register before executing.
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def engine():
    # engine.py puts its own directory on sys.path, so the rule modules
    # resolve regardless of how the engine itself was loaded.
    return _load("repro_lint_engine_under_test", LINT_DIR / "engine.py")


@pytest.fixture()
def tree(tmp_path):
    """A scratch copy of src/repro, ready to be mutated."""
    root = tmp_path / "tree"
    (root / "src").mkdir(parents=True)
    shutil.copytree(REPO_ROOT / "src" / "repro", root / "src" / "repro")
    return root


def _findings(engine, root, rule=None):
    found, _ = engine.run(root)
    if rule is None:
        return found
    return [f for f in found if f.rule == rule]


def _edit(root, rel, old, new):
    path = root / rel
    text = path.read_text()
    assert old in text, f"fixture drift: {old!r} not in {rel}"
    path.write_text(text.replace(old, new, 1))


class TestCleanTree:
    def test_repo_tree_is_clean(self, engine):
        found, n_files = engine.run(REPO_ROOT)
        assert found == [], "\n".join(f.text() for f in found)
        assert n_files > 50  # the walk really saw the package

    def test_no_suppressions_in_telemetry(self):
        for path in (REPO_ROOT / "src" / "repro" / "telemetry").rglob("*.py"):
            assert "repro-lint: disable" not in path.read_text(), (
                f"{path} carries a suppression — the telemetry layer "
                f"must satisfy every invariant outright"
            )


class TestDeterminism:
    def test_each_forbidden_source_fires(self, engine, tree):
        (tree / "src" / "repro" / "canary.py").write_text(
            "import random\n"
            "import time\n"
            "import numpy as np\n"
            "\n"
            "def f():\n"
            "    t = time.time()\n"
            "    d = time.perf_counter()\n"
            "    fresh = np.random.default_rng()\n"
            "    np.random.shuffle([1, 2])\n"
            "    return t, d, fresh\n"
        )
        lines = {
            f.line for f in _findings(engine, tree, "determinism")
            if f.path == "src/repro/canary.py"
        }
        assert {1, 6, 7, 8, 9} <= lines

    def test_perf_counter_allowed_only_at_stage_timers(self, engine, tree):
        # cli.py and cluster/simulation.py read perf_counter today and
        # the clean-tree test already proves they pass; the same call
        # anywhere else must fire.
        (tree / "src" / "repro" / "timer.py").write_text(
            "import time\n\ndef f():\n    return time.perf_counter()\n"
        )
        found = _findings(engine, tree, "determinism")
        assert any(f.path == "src/repro/timer.py" and f.line == 4 for f in found)

    def test_suppression_silences_and_unused_fires(self, engine, tree):
        (tree / "src" / "repro" / "canary.py").write_text(
            "import time\n"
            "\n"
            "def f():\n"
            "    return time.time()  # repro-lint: disable=determinism\n"
            "\n"
            "def g():\n"
            "    return 1  # repro-lint: disable=determinism\n"
        )
        found = [
            f for f in _findings(engine, tree)
            if f.path == "src/repro/canary.py"
        ]
        assert [(f.rule, f.line) for f in found] == [("unused-suppression", 7)]


class TestLockDiscipline:
    def test_store_self_lock_fires(self, engine, tree):
        _edit(
            tree,
            "src/repro/telemetry/store.py",
            "    def sample_count(self) -> int:",
            "    def locked_peek(self):\n"
            "        with self._lock:\n"
            "            return self._max_window\n"
            "\n"
            "    def sample_count(self) -> int:",
        )
        found = _findings(engine, tree, "lock-discipline")
        assert any("MetricStore must never take its own lock" in f.message
                   for f in found)

    def test_unlocked_surface_read_fires(self, engine, tree):
        _edit(
            tree,
            "src/repro/telemetry/query_server.py",
            "    def sample_count(self) -> int:\n"
            "        with self._lock:\n"
            "            return self._store.sample_count()",
            "    def sample_count(self) -> int:\n"
            "        return self._store.sample_count()",
        )
        found = _findings(engine, tree, "lock-discipline")
        assert any("LiveQuerySurface.sample_count" in f.message for f in found)


class TestRpcSurface:
    def test_fake_mutator_canary(self, engine, tree):
        """The ISSUE's drift canary: a mutator injected into a copied
        store.py AST must trip the pass (it is absent from the
        STORE_MUTATORS deny-list in query_server.py)."""
        store = tree / "src" / "repro" / "telemetry" / "store.py"
        module = ast.parse(store.read_text())
        cls = next(
            node for node in module.body
            if isinstance(node, ast.ClassDef) and node.name == "MetricStore"
        )
        fake = ast.parse(
            "def reset_everything(self):\n    self._tables = {}\n"
        ).body[0]
        cls.body.append(fake)
        store.write_text(ast.unparse(ast.fix_missing_locations(module)))

        found = _findings(engine, tree, "rpc-surface")
        assert any("reset_everything" in f.message for f in found)

    def test_mutator_on_surface_fires(self, engine, tree):
        _edit(
            tree,
            "src/repro/telemetry/query_server.py",
            "    def sample_count(self) -> int:",
            "    def evict_windows(self, before):\n"
            "        with self._lock:\n"
            "            return self._store.evict_windows(before)\n"
            "\n"
            "    def sample_count(self) -> int:",
        )
        found = _findings(engine, tree, "rpc-surface")
        assert any(
            "LiveQuerySurface exposes 'evict_windows'" in f.message
            for f in found
        )

    def test_renamed_dispatch_string_fires(self, engine, tree):
        _edit(
            tree,
            "src/repro/telemetry/workers.py",
            'self.call("pool_matrix"',
            'self.call("pool_matrixx"',
        )
        found = _findings(engine, tree, "rpc-surface")
        assert any("pool_matrixx" in f.message for f in found)

    def test_stale_denylist_entry_fires(self, engine, tree):
        _edit(
            tree,
            "src/repro/telemetry/query_server.py",
            '"rejoin_shard",',
            '"rejoin_shard",\n    "departed_method",',
        )
        found = _findings(engine, tree, "rpc-surface")
        assert any("departed_method" in f.message for f in found)


class TestWireCapabilities:
    def test_unimplemented_advertisement_fires(self, engine, tree):
        _edit(
            tree,
            "src/repro/telemetry/workers.py",
            '"binary_ingest": True, "resync": True}',
            '"binary_ingest": True, "resync": True, "qqzz_frames": True}',
        )
        found = _findings(engine, tree, "wire-capabilities")
        assert any("qqzz_frames" in f.message for f in found)

    def test_unadvertised_probe_fires(self, engine, tree):
        _edit(
            tree,
            "src/repro/telemetry/workers.py",
            'capabilities.get("binary_ingest", False)',
            'capabilities.get("zzq_mode", False)',
        )
        found = _findings(engine, tree, "wire-capabilities")
        assert any("zzq_mode" in f.message for f in found)


class TestCliSurface:
    def test_json_output_and_exit_codes(self, engine, tree, capsys):
        (tree / "src" / "repro" / "canary.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        code = engine.main(["--root", str(tree), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["clean"] is False
        assert any(
            f["rule"] == "determinism" and f["path"] == "src/repro/canary.py"
            for f in report["findings"]
        )

        code = engine.main(["--root", str(REPO_ROOT), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["clean"] is True and report["findings"] == []

    def test_only_selects_a_single_rule(self, engine, tree, capsys):
        (tree / "src" / "repro" / "canary.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        code = engine.main(
            ["--root", str(tree), "--only", "wire-capabilities"]
        )
        capsys.readouterr()
        assert code == 0  # the determinism canary is out of scope

    def test_run_checks_wraps_lint(self, capsys):
        run_checks = _load(
            "run_checks_under_test", REPO_ROOT / "tools" / "run_checks.py"
        )
        code = run_checks.main(["--only", "lint", "--only", "hygiene"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS] repro-lint" in out
        assert "[PASS] hygiene-check" in out
