"""Unit tests for repro.cluster.server, hardware, latency and deployment."""

import numpy as np
import pytest

from repro.cluster.deployment import (
    BASELINE_VERSION,
    SoftwareVersion,
    leak_fix_with_latency_regression,
    leaky_version,
)
from repro.cluster.hardware import GENERATION_2014, GENERATION_2017, HardwareSpec
from repro.cluster.latency import LatencyModel
from repro.cluster.server import Server, ServerState
from repro.cluster.service import service_catalog
from repro.telemetry.counters import Counter


@pytest.fixture()
def profile():
    return service_catalog()["B"]


@pytest.fixture()
def server(profile):
    return Server(
        server_id="s0", pool_id="B", datacenter_id="DC1", profile=profile
    )


class TestHardware:
    def test_newer_generation_cheaper_cpu(self):
        assert GENERATION_2017.cpu_scale < GENERATION_2014.cpu_scale

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            HardwareSpec(generation="bad", cpu_scale=0.0)


class TestLatencyModel:
    def test_base_latency_at_zero_load(self):
        model = LatencyModel(base_ms=10.0, cold_ms=5.0)
        # At zero RPS the cold-work term is maximal.
        assert model.p95_ms(0.0, 0.0) == pytest.approx(15.0)

    def test_cold_term_decays_with_rps(self):
        model = LatencyModel(base_ms=10.0, cold_ms=5.0, warmup_rps=50.0, queue_coeff_ms=0.0)
        assert model.p95_ms(500.0, 0.1) < model.p95_ms(1.0, 0.1)

    def test_latency_convex_in_utilization(self):
        model = LatencyModel(base_ms=10.0, cold_ms=0.0, queue_coeff_ms=100.0)
        lat = [model.p95_ms(100.0, u) for u in (0.1, 0.3, 0.5, 0.7, 0.9)]
        diffs = np.diff(lat)
        assert np.all(np.diff(diffs) > 0)  # increasing increments

    def test_saturation_clamped_finite(self):
        model = LatencyModel(base_ms=10.0)
        assert np.isfinite(model.p95_ms(100.0, 1.5))

    def test_median_below_p95(self):
        model = LatencyModel(base_ms=10.0)
        assert model.p50_ms(100.0, 0.2) < model.p95_ms(100.0, 0.2)

    def test_negative_rps_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base_ms=10.0).p95_ms(-1.0, 0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base_ms=0.0)
        with pytest.raises(ValueError):
            LatencyModel(base_ms=1.0, utilization_cap=1.5)


class TestSoftwareVersion:
    def test_baseline_is_neutral(self):
        assert BASELINE_VERSION.cpu_multiplier == 1.0
        assert BASELINE_VERSION.memory_leak_mb_per_window == 0.0

    def test_leaky_version_leaks(self):
        assert leaky_version().memory_leak_mb_per_window > 0

    def test_leak_fix_regresses_queue(self):
        fix = leak_fix_with_latency_regression()
        assert fix.memory_leak_mb_per_window == 0.0
        assert fix.latency_queue_multiplier > 1.0

    def test_invalid_versions_rejected(self):
        with pytest.raises(ValueError):
            SoftwareVersion(name="")
        with pytest.raises(ValueError):
            SoftwareVersion(name="x", cpu_multiplier=0.0)


class TestServerGroundTruth:
    def test_cpu_linear_in_rps(self, server, profile):
        cost = profile.cpu_cost_per_rps()
        idle = profile.noise.idle_cpu_pct
        cpu = server.true_cpu_pct({"query": 100.0})
        assert cpu == pytest.approx(idle + 100.0 * cost)

    def test_newer_hardware_uses_less_cpu(self, profile):
        old = Server("a", "B", "DC1", profile, hardware=GENERATION_2014)
        new = Server("b", "B", "DC1", profile, hardware=GENERATION_2017)
        load = {"query": 200.0}
        assert new.true_cpu_pct(load) < old.true_cpu_pct(load)

    def test_version_cpu_multiplier_applies(self, profile):
        regressed = SoftwareVersion(name="slow", cpu_multiplier=1.5)
        a = Server("a", "B", "DC1", profile)
        b = Server("b", "B", "DC1", profile, version=regressed)
        load = {"query": 200.0}
        idle = profile.noise.idle_cpu_pct
        assert b.true_cpu_pct(load) - idle == pytest.approx(
            1.5 * (a.true_cpu_pct(load) - idle)
        )

    def test_queue_multiplier_only_affects_load_term(self, profile):
        regressed = leak_fix_with_latency_regression(queue_multiplier=2.0)
        a = Server("a", "B", "DC1", profile)
        b = Server("b", "B", "DC1", profile, version=regressed)
        # At zero utilization the queue term vanishes: same latency.
        assert b.true_latency_p95_ms(300.0, 0.0) == pytest.approx(
            a.true_latency_p95_ms(300.0, 0.0)
        )
        # Under load the regressed version is slower.
        assert b.true_latency_p95_ms(300.0, 0.5) > a.true_latency_p95_ms(300.0, 0.5)


class TestObserve:
    def test_offline_server_reports_only_availability(self, server, rng):
        server.state = ServerState.OFFLINE_MAINTENANCE
        obs = server.observe(0, {"query": 100.0}, rng)
        assert obs == {Counter.AVAILABILITY.value: 0.0}

    def test_online_counters_present(self, server, rng):
        obs = server.observe(0, {"query": 100.0}, rng)
        assert obs[Counter.AVAILABILITY.value] == 1.0
        assert obs[Counter.REQUESTS.value] == pytest.approx(100.0)
        assert obs[Counter.PROCESSOR_UTILIZATION.value] > 0
        assert obs[Counter.LATENCY_P95.value] > 0
        assert "Requests/sec[query]" in obs

    def test_cpu_tracks_load(self, server, rng):
        low = np.mean([
            server.observe(w, {"query": 50.0}, rng)[Counter.PROCESSOR_UTILIZATION.value]
            for w in range(40)
        ])
        high = np.mean([
            server.observe(w, {"query": 400.0}, rng)[Counter.PROCESSOR_UTILIZATION.value]
            for w in range(40)
        ])
        assert high > low + 5.0

    def test_memory_leak_growth(self, profile, rng):
        leaky = Server("s", "B", "DC1", profile, version=leaky_version(mb_per_window=5.0))
        first = leaky.observe(0, {"query": 10.0}, rng)[Counter.MEMORY_WORKING_SET.value]
        for w in range(1, 50):
            last = leaky.observe(w, {"query": 10.0}, rng)[Counter.MEMORY_WORKING_SET.value]
        assert last > first
        leaky.restart()
        assert leaky.working_set_mb < first / 1e6 + 1.0

    def test_log_upload_spikes_disk(self, profile, rng):
        server = Server("s", "B", "DC1", profile, noise_phase=0)
        period = profile.noise.log_upload_period_windows
        spike_obs = server.observe(0, {"query": 10.0}, rng)
        quiet_obs = server.observe(period // 2, {"query": 10.0}, rng)
        assert (
            spike_obs[Counter.DISK_READ_BYTES.value]
            > quiet_obs[Counter.DISK_READ_BYTES.value]
        )

    def test_latency_dips_then_rises_with_load(self, profile):
        # The cold-start term makes very low workloads slower than
        # moderate ones (Fig 6's elevated left edge).
        server = Server("s", "D", "DC1", service_catalog()["D"])
        rng = np.random.default_rng(0)
        def mean_lat(rps, n=60):
            vals = []
            for w in range(n):
                cpu = server.true_cpu_pct({"render": rps})
                vals.append(server.true_latency_p95_ms(rps, cpu / 100.0))
            return np.mean(vals)
        assert mean_lat(2.0) > mean_lat(60.0)
