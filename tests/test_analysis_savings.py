"""Unit tests for the savings summary rendering and paper references."""

import numpy as np
import pytest

from repro.analysis.savings import (
    PAPER_AGGREGATE,
    PAPER_TABLE_IV,
    SavingsRow,
    SavingsSummary,
)


def _summary():
    rows = (
        SavingsRow("B", 0.30, 2.0, 0.25, 0.55),
        SavingsRow("G", 0.05, 1.0, 0.00, 0.05),
    )
    return SavingsSummary(rows=rows)


class TestPaperReference:
    def test_table_values_match_paper(self):
        assert PAPER_TABLE_IV["B"] == (0.33, 2.0, 0.27, 0.60)
        assert PAPER_TABLE_IV["G"] == (0.05, 1.0, 0.00, 0.05)
        assert PAPER_AGGREGATE == (0.20, 5.0, 0.10, 0.30)

    def test_row_paper_lookup(self):
        row = SavingsRow("B", 0.3, 2.0, 0.25, 0.55)
        assert row.paper_values == PAPER_TABLE_IV["B"]

    def test_unknown_pool_paper_values_nan(self):
        row = SavingsRow("Z", 0.1, 1.0, 0.0, 0.1)
        assert all(np.isnan(v) for v in row.paper_values)


class TestSummary:
    def test_means(self):
        summary = _summary()
        assert summary.mean_efficiency == pytest.approx(0.175)
        assert summary.mean_online == pytest.approx(0.125)
        assert summary.mean_total == pytest.approx(0.30)
        assert summary.mean_latency_impact_ms == pytest.approx(1.5)

    def test_row_for(self):
        summary = _summary()
        assert summary.row_for("G").efficiency_savings == 0.05
        with pytest.raises(KeyError):
            summary.row_for("nope")

    def test_render_comparison_includes_unknown_pools(self):
        rows = (SavingsRow("Z", 0.1, 1.0, 0.0, 0.1),)
        text = SavingsSummary(rows=rows).render_comparison()
        assert "Z" in text
        assert "-" in text  # dashes for missing paper values

    def test_render_comparison_layout(self):
        text = _summary().render_comparison()
        lines = text.splitlines()
        assert lines[0].startswith("Table IV")
        # header + rule + 2 pools + mean
        assert len(lines) == 6
