"""Coverage for small remaining surfaces: diff helpers, describe paths."""

import numpy as np
import pytest

from repro.core.headroom import DeploymentPlan
from repro.core.rsm import RsmIteration
from repro.core.whatif import Scenario, ScenarioOutcome
from repro.stats.crossval import CrossValidationResult
from repro.core.metric_validation import AnomalyFinding


class TestDescribeMethods:
    def test_anomaly_finding_describe(self):
        finding = AnomalyFinding(
            period_windows=60,
            affected_window_fraction=0.05,
            mean_spike_magnitude=4.2,
        )
        text = finding.describe()
        assert "60" in text and "4.2" in text

    def test_rsm_iteration_describe_variants(self):
        with_forecast = RsmIteration(
            iteration=1, n_servers=30, measured_latency_p95_ms=12.0,
            forecast_next_latency_ms=13.5, next_n_servers=27, qos_violated=False,
        )
        violated = RsmIteration(
            iteration=2, n_servers=27, measured_latency_p95_ms=15.0,
            forecast_next_latency_ms=None, next_n_servers=None, qos_violated=True,
        )
        assert "forecast" in with_forecast.describe()
        assert "QoS limit hit" in violated.describe()

    def test_cv_result_describe(self):
        result = CrossValidationResult(
            k=5, auc=0.98, r2=0.74, accuracy=0.92, fold_aucs=(0.97, 0.99)
        )
        assert "5-fold" in result.describe()

    def test_scenario_outcome_describe_signs(self):
        up = ScenarioOutcome(
            scenario=Scenario(label="up"), required_servers=12,
            baseline_servers=10, max_rps_per_server=100.0,
        )
        down = ScenarioOutcome(
            scenario=Scenario(label="down"), required_servers=8,
            baseline_servers=10, max_rps_per_server=100.0,
        )
        assert "+2" in up.describe()
        assert "-2" in down.describe()
        assert up.delta_fraction == pytest.approx(0.2)
        assert down.delta_fraction == pytest.approx(-0.2)


class TestDeploymentPlan:
    def test_savings_non_negative(self):
        plan = DeploymentPlan(
            pool_id="B", datacenter_id="DC1", current_servers=10,
            required_normal=4, required_with_dr=6,
            peak_demand_rps=1000.0, max_rps_per_server=200.0,
        )
        assert plan.planned_servers == 6
        assert plan.savings_servers == 4

    def test_growth_clamped_to_zero_savings(self):
        plan = DeploymentPlan(
            pool_id="B", datacenter_id="DC1", current_servers=5,
            required_normal=8, required_with_dr=9,
            peak_demand_rps=1000.0, max_rps_per_server=100.0,
        )
        assert plan.savings_servers == 0
