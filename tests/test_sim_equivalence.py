"""Old-vs-new engine equivalence and determinism of the columnar path.

Three guarantees protect the vectorized rewrite:

* the batched ingest path stores *bit-identical* telemetry to the
  per-sample compatibility path (same emission, same RNG draws);
* a fixed seed reproduces bit-identical store contents run over run;
* the legacy per-server engine — the seed implementation — agrees
  statistically with the columnar engine (identical availability,
  matching means for the noisy counters).
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.faults import RandomFailures
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.telemetry.counters import Counter


def _run(engine: str, seed: int = 41, windows: int = 180, **config_kwargs):
    fleet = build_single_pool_fleet(
        "B", n_datacenters=2, servers_per_deployment=6, seed=seed
    )
    sim = Simulator(
        fleet,
        seed=seed,
        config=SimulationConfig(
            engine=engine,
            random_failures=RandomFailures(daily_probability=0.3, seed=7),
            **config_kwargs,
        ),
    )
    sim.run(windows)
    return sim.store


def _assert_stores_identical(a, b):
    assert a.pools == b.pools
    assert a.sample_count() == b.sample_count()
    assert a.max_window == b.max_window
    for pool in a.pools:
        assert a.counters_for_pool(pool) == b.counters_for_pool(pool)
        for counter in a.counters_for_pool(pool):
            for reducer in ("mean", "sum", "max", "count"):
                sa = a.pool_window_aggregate(pool, counter, reducer=reducer)
                sb = b.pool_window_aggregate(pool, counter, reducer=reducer)
                np.testing.assert_array_equal(sa.windows, sb.windows)
                np.testing.assert_array_equal(sa.values, sb.values)
            assert a.servers_in_pool(pool) == b.servers_in_pool(pool)
            for server in a.servers_in_pool(pool):
                xa = a.server_series(pool, counter, server)
                xb = b.server_series(pool, counter, server)
                np.testing.assert_array_equal(xa.windows, xb.windows)
                np.testing.assert_array_equal(xa.values, xb.values)


class TestBatchedEquivalence:
    def test_batch_matches_per_sample_bit_identical(self):
        """Batched and per-sample ingest store identical telemetry."""
        _assert_stores_identical(_run("batch"), _run("per-sample"))

    def test_batch_matches_per_sample_all_counters(self):
        """Equivalence also holds with every counter persisted."""
        a = _run("batch", counters=None, windows=60)
        b = _run("per-sample", counters=None, windows=60)
        _assert_stores_identical(a, b)

    def test_deterministic_bit_identical(self):
        """Same seed => bit-identical store contents."""
        _assert_stores_identical(_run("batch"), _run("batch"))

    def test_request_class_counters_equivalent(self):
        a = _run("batch", record_request_classes=True, windows=60)
        b = _run("per-sample", record_request_classes=True, windows=60)
        assert "Requests/sec[query]" in a.counters_for_pool("B")
        _assert_stores_identical(a, b)

    def test_empty_counter_tuple_means_record_everything(self):
        """counters=() is falsy => all counters, matching legacy."""
        batch = _run("batch", counters=(), windows=30)
        legacy = _run("legacy", counters=(), windows=30)
        assert batch.sample_count() > 0
        assert batch.counters_for_pool("B") == legacy.counters_for_pool("B")
        assert batch.sample_count() == legacy.sample_count()


class TestLegacyEquivalence:
    """The seed per-server engine agrees with the columnar engine."""

    @pytest.fixture(scope="class")
    def stores(self):
        return _run("batch", windows=720), _run("legacy", windows=720)

    def test_availability_identical(self, stores):
        batch, legacy = stores
        for dc in batch.datacenters_for_pool("B"):
            a = batch.pool_window_aggregate(
                "B", Counter.AVAILABILITY.value, datacenter_id=dc
            )
            b = legacy.pool_window_aggregate(
                "B", Counter.AVAILABILITY.value, datacenter_id=dc
            )
            np.testing.assert_array_equal(a.windows, b.windows)
            np.testing.assert_array_equal(a.values, b.values)

    def test_sample_counts_identical(self, stores):
        batch, legacy = stores
        assert batch.sample_count() == legacy.sample_count()

    @pytest.mark.parametrize(
        "counter, tolerance",
        [
            (Counter.REQUESTS.value, 0.02),
            (Counter.PROCESSOR_UTILIZATION.value, 0.02),
            (Counter.LATENCY_P95.value, 0.02),
        ],
    )
    def test_noisy_counters_statistically_equivalent(
        self, stores, counter, tolerance
    ):
        batch, legacy = stores
        a = batch.pool_window_aggregate("B", counter).values
        b = legacy.pool_window_aggregate("B", counter).values
        assert a.mean() == pytest.approx(b.mean(), rel=tolerance)
        assert a.std() == pytest.approx(b.std(), rel=0.15)
