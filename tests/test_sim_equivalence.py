"""Old-vs-new engine equivalence and determinism of the columnar path.

Guarantees protecting the vectorized rewrite and the sharded/blocked
extensions:

* the batched ingest path stores *bit-identical* telemetry to the
  per-sample compatibility path (same emission, same RNG draws);
* a fixed seed reproduces bit-identical store contents run over run;
* a :class:`~repro.telemetry.sharding.ShardedMetricStore` — any shard
  count, any backend (serial, thread-pool, worker-process or
  loopback-TCP ingest) — answers every query bit-identically to a
  single store fed by the same engine;
* blocked emission with ``block_windows=1`` is bit-identical to
  per-window batch stepping; larger blocks keep identical availability
  masks and sample counts and agree statistically on noisy counters;
* the legacy per-server engine — the seed implementation — agrees
  statistically with the columnar engine (identical availability,
  matching means for the noisy counters).
"""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.faults import RandomFailures
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.telemetry.counters import Counter
from repro.telemetry.sharding import BACKENDS, ShardedMetricStore


def _sharded(n_shards=3, backend="serial", server=None):
    workers = n_shards if backend == "threads" else 1
    kwargs = {}
    if backend == "tcp":
        kwargs["shard_addrs"] = [server.address] * n_shards
    return ShardedMetricStore(
        n_shards=n_shards, workers=workers, backend=backend, **kwargs
    )


def _run(engine: str, seed: int = 41, windows: int = 180, store=None, **config_kwargs):
    fleet = build_single_pool_fleet(
        "B", n_datacenters=2, servers_per_deployment=6, seed=seed
    )
    sim = Simulator(
        fleet,
        store=store,
        seed=seed,
        config=SimulationConfig(
            engine=engine,
            random_failures=RandomFailures(daily_probability=0.3, seed=7),
            **config_kwargs,
        ),
    )
    sim.run(windows)
    return sim.store


def _assert_stores_identical(a, b):
    assert a.pools == b.pools
    assert a.sample_count() == b.sample_count()
    assert a.max_window == b.max_window
    for pool in a.pools:
        assert a.counters_for_pool(pool) == b.counters_for_pool(pool)
        for counter in a.counters_for_pool(pool):
            for reducer in ("mean", "sum", "max", "count"):
                sa = a.pool_window_aggregate(pool, counter, reducer=reducer)
                sb = b.pool_window_aggregate(pool, counter, reducer=reducer)
                np.testing.assert_array_equal(sa.windows, sb.windows)
                np.testing.assert_array_equal(sa.values, sb.values)
            assert a.servers_in_pool(pool) == b.servers_in_pool(pool)
            for server in a.servers_in_pool(pool):
                xa = a.server_series(pool, counter, server)
                xb = b.server_series(pool, counter, server)
                np.testing.assert_array_equal(xa.windows, xb.windows)
                np.testing.assert_array_equal(xa.values, xb.values)


class TestBatchedEquivalence:
    def test_batch_matches_per_sample_bit_identical(self):
        """Batched and per-sample ingest store identical telemetry."""
        _assert_stores_identical(_run("batch"), _run("per-sample"))

    def test_batch_matches_per_sample_all_counters(self):
        """Equivalence also holds with every counter persisted."""
        a = _run("batch", counters=None, windows=60)
        b = _run("per-sample", counters=None, windows=60)
        _assert_stores_identical(a, b)

    def test_deterministic_bit_identical(self):
        """Same seed => bit-identical store contents."""
        _assert_stores_identical(_run("batch"), _run("batch"))

    def test_request_class_counters_equivalent(self):
        a = _run("batch", record_request_classes=True, windows=60)
        b = _run("per-sample", record_request_classes=True, windows=60)
        assert "Requests/sec[query]" in a.counters_for_pool("B")
        _assert_stores_identical(a, b)

    def test_empty_counter_tuple_means_record_everything(self):
        """counters=() is falsy => all counters, matching legacy."""
        batch = _run("batch", counters=(), windows=30)
        legacy = _run("legacy", counters=(), windows=30)
        assert batch.sample_count() > 0
        assert batch.counters_for_pool("B") == legacy.counters_for_pool("B")
        assert batch.sample_count() == legacy.sample_count()


class TestShardedEquivalence:
    """Sharded batch ingest is bit-identical to the single-store engine,
    whichever backend (serial / threads / processes / tcp) holds the
    shards."""

    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_sharded_matches_single_store(self, n_shards):
        single = _run("batch")
        sharded = _run("batch", store=ShardedMetricStore(n_shards=n_shards))
        _assert_stores_identical(single, sharded)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_matches_single_store(self, backend, shard_server):
        """Every backend stores and answers exactly like one store."""
        single = _run("batch")
        with _sharded(n_shards=4, backend=backend, server=shard_server) as store:
            sharded = _run("batch", store=store)
            _assert_stores_identical(single, sharded)

    def test_worker_pool_matches_serial(self):
        """Thread fan-out stores the same rows as serial fan-out."""
        serial = _run("batch", store=ShardedMetricStore(n_shards=4, workers=1))
        with ShardedMetricStore(n_shards=4, workers=4) as store:
            threaded = _run("batch", store=store)
            _assert_stores_identical(serial, threaded)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded_blocked_matches_single_blocked(self, backend, shard_server):
        """Sharding composes with cross-window block emission."""
        single = _run("batch", block_windows=16)
        with _sharded(n_shards=3, backend=backend, server=shard_server) as store:
            sharded = _run("batch", store=store, block_windows=16)
            _assert_stores_identical(single, sharded)

    def test_sharded_all_counters(self):
        single = _run("batch", counters=None, windows=60)
        sharded = _run(
            "batch", counters=None, windows=60, store=ShardedMetricStore(3)
        )
        _assert_stores_identical(single, sharded)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sharded_per_sample_shim(self, backend, shard_server):
        """Even the per-sample compatibility path shards identically —
        through the remote ingest buffer too."""
        single = _run("per-sample", windows=60)
        with _sharded(backend=backend, server=shard_server) as store:
            sharded = _run("per-sample", windows=60, store=store)
            _assert_stores_identical(single, sharded)

    @pytest.mark.parametrize("backend", ("threads", "processes", "tcp"))
    def test_backend_exports_byte_identical(self, backend, tmp_path, shard_server):
        """The archive written through any backend is byte-identical."""
        from repro.telemetry.export import export_store

        single = _run("batch", windows=60)
        single_path = tmp_path / "single.csv"
        export_store(single, single_path)
        with _sharded(n_shards=4, backend=backend, server=shard_server) as store:
            sharded = _run("batch", windows=60, store=store)
            sharded_path = tmp_path / f"{backend}.csv"
            export_store(sharded, sharded_path)
        assert single_path.read_bytes() == sharded_path.read_bytes()


class TestBlockedEquivalence:
    """Cross-window block emission vs per-window batch stepping."""

    def test_block_of_one_bit_identical(self):
        """block_windows=1 consumes the same RNG stream as per-window."""
        _assert_stores_identical(_run("batch"), _run("batch", block_windows=1))

    def test_blocked_availability_and_counts_identical(self):
        """Masks are RNG-free, so any block size keeps them identical."""
        batch = _run("batch")
        blocked = _run("batch", block_windows=32)
        assert batch.sample_count() == blocked.sample_count()
        for dc in batch.datacenters_for_pool("B"):
            a = batch.pool_window_aggregate(
                "B", Counter.AVAILABILITY.value, datacenter_id=dc
            )
            b = blocked.pool_window_aggregate(
                "B", Counter.AVAILABILITY.value, datacenter_id=dc
            )
            np.testing.assert_array_equal(a.windows, b.windows)
            np.testing.assert_array_equal(a.values, b.values)

    def test_blocked_truncates_final_partial_block(self):
        """n_windows not divisible by block_windows still runs them all."""
        blocked = _run("batch", block_windows=50, windows=130)
        assert blocked.max_window == 129

    def test_blocked_deterministic(self):
        _assert_stores_identical(
            _run("batch", block_windows=16), _run("batch", block_windows=16)
        )

    @pytest.mark.parametrize(
        "counter, tolerance",
        [
            (Counter.REQUESTS.value, 0.02),
            (Counter.PROCESSOR_UTILIZATION.value, 0.02),
            (Counter.LATENCY_P95.value, 0.02),
        ],
    )
    def test_blocked_statistically_equivalent(self, counter, tolerance):
        batch = _run("batch", windows=720)
        blocked = _run("batch", block_windows=48, windows=720)
        a = batch.pool_window_aggregate("B", counter).values
        b = blocked.pool_window_aggregate("B", counter).values
        assert a.mean() == pytest.approx(b.mean(), rel=tolerance)
        assert a.std() == pytest.approx(b.std(), rel=0.15)

    def test_blocked_request_classes(self):
        batch = _run("batch", record_request_classes=True, windows=60)
        blocked = _run(
            "batch", record_request_classes=True, windows=60, block_windows=8
        )
        assert "Requests/sec[query]" in blocked.counters_for_pool("B")
        assert batch.sample_count() == blocked.sample_count()

    def test_block_requires_batch_engine(self):
        with pytest.raises(ValueError):
            SimulationConfig(engine="legacy", block_windows=8)
        with pytest.raises(ValueError):
            SimulationConfig(block_windows=0)


@pytest.mark.legacy
@pytest.mark.slow
class TestLegacyEquivalence:
    """The seed per-server engine agrees with the columnar engine.

    Opt-in (``pytest -m legacy``): the legacy engine runs ~35 windows/s,
    so these 720-window baselines cost more than the rest of the suite
    combined and are excluded from the default tier-1 run.
    """

    @pytest.fixture(scope="class")
    def stores(self):
        return _run("batch", windows=720), _run("legacy", windows=720)

    def test_availability_identical(self, stores):
        batch, legacy = stores
        for dc in batch.datacenters_for_pool("B"):
            a = batch.pool_window_aggregate(
                "B", Counter.AVAILABILITY.value, datacenter_id=dc
            )
            b = legacy.pool_window_aggregate(
                "B", Counter.AVAILABILITY.value, datacenter_id=dc
            )
            np.testing.assert_array_equal(a.windows, b.windows)
            np.testing.assert_array_equal(a.values, b.values)

    def test_sample_counts_identical(self, stores):
        batch, legacy = stores
        assert batch.sample_count() == legacy.sample_count()

    @pytest.mark.parametrize(
        "counter, tolerance",
        [
            (Counter.REQUESTS.value, 0.02),
            (Counter.PROCESSOR_UTILIZATION.value, 0.02),
            (Counter.LATENCY_P95.value, 0.02),
        ],
    )
    def test_noisy_counters_statistically_equivalent(
        self, stores, counter, tolerance
    ):
        batch, legacy = stores
        a = batch.pool_window_aggregate("B", counter).values
        b = legacy.pool_window_aggregate("B", counter).values
        assert a.mean() == pytest.approx(b.mean(), rel=tolerance)
        assert a.std() == pytest.approx(b.std(), rel=0.15)
