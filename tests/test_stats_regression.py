"""Unit tests for repro.stats.regression."""

import numpy as np
import pytest

from repro.stats.regression import (
    fit_linear,
    fit_multilinear,
    fit_polynomial,
    r_squared,
)


class TestRSquared:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r_squared(y, pred) == pytest.approx(0.0)

    def test_constant_response_exact(self):
        y = np.array([2.0, 2.0, 2.0])
        assert r_squared(y, y) == 1.0

    def test_constant_response_wrong(self):
        y = np.array([2.0, 2.0, 2.0])
        assert r_squared(y, y + 1.0) == 0.0


class TestFitLinear:
    def test_recovers_exact_line(self):
        x = np.linspace(0, 10, 50)
        model = fit_linear(x, 3.0 * x + 2.0)
        assert model.slope == pytest.approx(3.0)
        assert model.intercept == pytest.approx(2.0)
        assert model.r2 == pytest.approx(1.0)
        assert model.n == 50

    def test_recovers_noisy_line(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 100, 500)
        y = 0.028 * x + 1.37 + rng.normal(0, 0.1, x.size)
        model = fit_linear(x, y)
        assert model.slope == pytest.approx(0.028, abs=0.002)
        assert model.intercept == pytest.approx(1.37, abs=0.1)
        assert model.r2 > 0.9

    def test_predict_matches_scalar(self):
        model = fit_linear([0.0, 1.0], [1.0, 3.0])
        assert model.predict_scalar(2.0) == pytest.approx(5.0)
        np.testing.assert_allclose(model.predict([2.0, 3.0]), [5.0, 7.0])

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            fit_linear([1.0], [2.0])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            fit_linear([1.0, 2.0], [1.0])

    def test_describe_contains_r2(self):
        model = fit_linear([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
        assert "R^2" in model.describe()

    def test_residual_std_positive_for_noise(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 10, 100)
        model = fit_linear(x, x + rng.normal(0, 0.5, 100))
        assert 0.3 < model.residual_std < 0.8


class TestFitPolynomial:
    def test_recovers_quadratic(self):
        x = np.linspace(0, 100, 200)
        y = 4.028e-5 * x**2 - 0.031 * x + 36.68
        model = fit_polynomial(x, y, degree=2)
        assert model.coefficients[0] == pytest.approx(4.028e-5, rel=1e-3)
        assert model.coefficients[1] == pytest.approx(-0.031, rel=1e-3)
        assert model.coefficients[2] == pytest.approx(36.68, rel=1e-3)
        assert model.r2 == pytest.approx(1.0)

    def test_degree_property(self):
        model = fit_polynomial([0, 1, 2, 3], [0, 1, 4, 9], degree=2)
        assert model.degree == 2

    def test_extrapolation_flag(self):
        model = fit_polynomial([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 4.0, 9.0], degree=2)
        assert not model.is_extrapolating(1.5)
        assert model.is_extrapolating(5.0)
        assert model.is_extrapolating(-1.0)

    def test_insufficient_points_raise(self):
        with pytest.raises(ValueError):
            fit_polynomial([0.0, 1.0], [0.0, 1.0], degree=2)

    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            fit_polynomial([0.0, 1.0], [0.0, 1.0], degree=0)

    def test_describe_renders_terms(self):
        model = fit_polynomial([0, 1, 2], [1, 2, 5], degree=2)
        text = model.describe()
        assert "x^2" in text and "R^2" in text


class TestFitMultilinear:
    def test_recovers_plane(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 10, size=(200, 2))
        y = 2.0 * x[:, 0] + 5.0 * x[:, 1] + 1.0
        model = fit_multilinear(x, y)
        assert model.coefficients[0] == pytest.approx(2.0, abs=1e-9)
        assert model.coefficients[1] == pytest.approx(5.0, abs=1e-9)
        assert model.intercept == pytest.approx(1.0, abs=1e-9)
        assert model.r2 == pytest.approx(1.0)

    def test_single_feature_matches_linear(self):
        x = np.linspace(0, 10, 30)
        multi = fit_multilinear(x.reshape(-1, 1), 3 * x + 1)
        linear = fit_linear(x, 3 * x + 1)
        assert multi.coefficients[0] == pytest.approx(linear.slope)
        assert multi.intercept == pytest.approx(linear.intercept)

    def test_underdetermined_raises(self):
        with pytest.raises(ValueError):
            fit_multilinear([[1.0, 2.0]], [1.0])

    def test_predict_shape(self):
        model = fit_multilinear([[0.0], [1.0], [2.0]], [0.0, 2.0, 4.0])
        pred = model.predict([[3.0]])
        assert pred.shape == (1,)
        assert pred[0] == pytest.approx(6.0)
