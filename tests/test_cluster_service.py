"""Tests for the service catalogue and builder internals."""

import numpy as np
import pytest

from repro.cluster.builders import (
    PAPER_DATACENTERS,
    noisy_variant,
    pattern_for_deployment,
    peak_rps_per_server,
)
from repro.cluster.hardware import GENERATION_2014
from repro.cluster.service import (
    CATALOG_POOLS,
    BackgroundNoise,
    MicroServiceProfile,
    service_catalog,
)
from repro.workload.request_mix import RequestMix


class TestCatalog:
    def test_seven_pools(self):
        catalog = service_catalog()
        assert tuple(sorted(catalog)) == CATALOG_POOLS

    def test_availability_spectrum(self):
        catalog = service_catalog()
        # Pool B is the repurposed low-availability pool; D/F/G are the
        # well-managed 98 % pools (§III-B2).
        assert catalog["B"].availability_mean < 0.8
        for pool in "DFG":
            assert catalog[pool].availability_mean >= 0.98

    def test_pool_a_has_drifting_mix(self):
        # The §II-A1 noisy-metric case study needs a multi-class mix.
        profile = service_catalog()["A"]
        assert len(profile.mix.classes) == 2
        assert profile.mix.drift > 0

    def test_slo_above_operating_latency(self):
        # Every pool's SLO must exceed the latency at its provisioned
        # operating point — otherwise the pool is born out of contract.
        for profile in service_catalog().values():
            rps = peak_rps_per_server(profile, GENERATION_2014)
            util = profile.provisioned_peak_utilization
            latency = profile.latency.p95_ms(rps, util)
            assert latency < profile.slo_latency_ms, profile.name

    def test_catalog_returns_fresh_instances(self):
        a = service_catalog()
        b = service_catalog()
        assert a is not b
        assert a["B"] == b["B"]


class TestProfileValidation:
    def _profile(self, **overrides):
        defaults = dict(
            name="X",
            description="test",
            mix=RequestMix.single("x", cpu_cost=0.01),
            latency=service_catalog()["B"].latency,
        )
        defaults.update(overrides)
        return MicroServiceProfile(**defaults)

    def test_valid_profile(self):
        assert self._profile().cpu_cost_per_rps() == pytest.approx(0.01)

    def test_bad_utilization_rejected(self):
        with pytest.raises(ValueError):
            self._profile(provisioned_peak_utilization=1.5)

    def test_bad_slo_rejected(self):
        with pytest.raises(ValueError):
            self._profile(slo_latency_ms=0.0)

    def test_bad_availability_rejected(self):
        with pytest.raises(ValueError):
            self._profile(availability_mean=0.0)


class TestBuilderHelpers:
    def test_peak_rps_inverts_provisioning(self):
        profile = service_catalog()["D"]
        rps = peak_rps_per_server(profile, GENERATION_2014)
        cpu = profile.noise.idle_cpu_pct + profile.cpu_cost_per_rps() * rps
        assert cpu == pytest.approx(profile.provisioned_peak_utilization * 100)

    def test_peak_rps_below_idle_rejected(self):
        profile = service_catalog()["B"]
        bad = MicroServiceProfile(
            name="bad",
            description="idle exceeds target",
            mix=profile.mix,
            latency=profile.latency,
            noise=BackgroundNoise(idle_cpu_pct=50.0),
            provisioned_peak_utilization=0.1,
        )
        with pytest.raises(ValueError):
            peak_rps_per_server(bad, GENERATION_2014)

    def test_pattern_scales_with_servers(self):
        profile = service_catalog()["B"]
        dc = PAPER_DATACENTERS[0]
        p10 = pattern_for_deployment(profile, dc, 10, GENERATION_2014)
        p20 = pattern_for_deployment(profile, dc, 20, GENERATION_2014)
        assert p20.base_rps == pytest.approx(2 * p10.base_rps)

    def test_noisy_variant_is_noisier(self):
        base = service_catalog()["B"]
        noisy = noisy_variant(base)
        assert noisy.noise.idle_cpu_noise_pct > base.noise.idle_cpu_noise_pct
        assert noisy.noise.log_upload_period_windows < base.noise.log_upload_period_windows
        assert noisy.cpu_observation_noise > base.cpu_observation_noise
        assert "background admin tasks" in noisy.description
