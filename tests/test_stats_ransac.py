"""Unit tests for repro.stats.ransac."""

import numpy as np
import pytest

from repro.stats.ransac import RansacRegressor


def _line_with_outliers(rng, n=200, outlier_fraction=0.2):
    x = np.linspace(0, 100, n)
    y = 0.5 * x + 10.0 + rng.normal(0, 0.3, n)
    n_out = int(outlier_fraction * n)
    idx = rng.choice(n, size=n_out, replace=False)
    y[idx] += rng.uniform(20, 60, n_out)
    return x, y, idx


class TestRansacLinear:
    def test_ignores_gross_outliers(self):
        rng = np.random.default_rng(5)
        x, y, _ = _line_with_outliers(rng)
        result = RansacRegressor(degree=1, rng=rng).fit(x, y)
        assert result.model.slope == pytest.approx(0.5, abs=0.02)
        assert result.model.intercept == pytest.approx(10.0, abs=1.0)

    def test_flags_outliers(self):
        rng = np.random.default_rng(6)
        x, y, outlier_idx = _line_with_outliers(rng)
        result = RansacRegressor(degree=1, rng=rng).fit(x, y)
        flagged = set(np.flatnonzero(~result.inlier_mask))
        # Most injected outliers should be flagged.
        overlap = len(flagged & set(outlier_idx)) / len(outlier_idx)
        assert overlap >= 0.75

    def test_ols_beats_nothing_on_clean_data(self):
        rng = np.random.default_rng(7)
        x = np.linspace(0, 10, 50)
        y = 2.0 * x + 1.0
        result = RansacRegressor(degree=1, rng=rng).fit(x, y)
        assert result.n_outliers == 0
        assert result.inlier_fraction == 1.0


class TestRansacQuadratic:
    def test_recovers_quadratic_with_outliers(self):
        rng = np.random.default_rng(8)
        x = np.linspace(10, 100, 300)
        y = 4.66e-3 * x**2 - 0.8 * x + 86.5 + rng.normal(0, 0.5, 300)
        y[::10] += 40.0  # deployment-coincident latency spikes
        result = RansacRegressor(degree=2, rng=rng).fit(x, y)
        coeffs = result.model.coefficients
        assert coeffs[0] == pytest.approx(4.66e-3, rel=0.1)
        assert coeffs[2] == pytest.approx(86.5, rel=0.1)

    def test_predict_scalar(self):
        rng = np.random.default_rng(9)
        x = np.linspace(0, 10, 50)
        y = x**2
        result = RansacRegressor(degree=2, rng=rng).fit(x, y)
        assert result.predict_scalar(4.0) == pytest.approx(16.0, abs=0.5)


class TestRansacEdgeCases:
    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            RansacRegressor(degree=2).fit([1.0, 2.0], [1.0, 2.0])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            RansacRegressor(degree=1).fit([1.0, 2.0, 3.0], [1.0, 2.0])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RansacRegressor(degree=0)
        with pytest.raises(ValueError):
            RansacRegressor(max_iterations=0)
        with pytest.raises(ValueError):
            RansacRegressor(min_inlier_fraction=0.0)

    def test_constant_response(self):
        rng = np.random.default_rng(10)
        x = np.linspace(0, 10, 30)
        y = np.full(30, 5.0)
        result = RansacRegressor(degree=1, rng=rng).fit(x, y)
        assert result.model.predict_scalar(100.0) == pytest.approx(5.0, abs=1e-6)

    def test_no_consensus_falls_back_to_ols(self):
        # Pure noise: RANSAC may find no majority consensus, but the
        # caller still gets a usable model.
        rng = np.random.default_rng(11)
        x = rng.uniform(0, 1, 40)
        y = rng.uniform(0, 1000, 40)
        result = RansacRegressor(
            degree=1, residual_threshold=1e-6, rng=rng
        ).fit(x, y)
        assert result.model.n >= 2

    def test_deterministic_under_seed(self):
        x = np.linspace(0, 10, 60)
        y = 2 * x + np.sin(x) * 5
        a = RansacRegressor(degree=1, rng=np.random.default_rng(42)).fit(x, y)
        b = RansacRegressor(degree=1, rng=np.random.default_rng(42)).fit(x, y)
        assert a.model.slope == b.model.slope
        assert np.array_equal(a.inlier_mask, b.inlier_mask)
