"""Unit tests for repro.stats.clustering."""

import numpy as np
import pytest

from repro.stats.clustering import KMeans, select_k, silhouette_score


def _two_blobs(rng, n=60, separation=10.0):
    a = rng.normal(0.0, 0.5, (n // 2, 2))
    b = rng.normal(separation, 0.5, (n // 2, 2))
    return np.vstack([a, b])


class TestKMeans:
    def test_two_blobs_recovered(self, rng):
        points = _two_blobs(rng)
        result = KMeans(2, rng=rng).fit(points)
        sizes = sorted(result.cluster_sizes())
        assert sizes == [30, 30]
        centers = sorted(result.centers[:, 0])
        assert centers[0] == pytest.approx(0.0, abs=0.5)
        assert centers[1] == pytest.approx(10.0, abs=0.5)

    def test_k1_center_is_mean(self, rng):
        points = rng.normal(5.0, 1.0, (40, 2))
        result = KMeans(1, rng=rng).fit(points)
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0), atol=1e-9)

    def test_inertia_decreases_with_k(self, rng):
        points = _two_blobs(rng)
        inertia1 = KMeans(1, rng=np.random.default_rng(0)).fit(points).inertia
        inertia2 = KMeans(2, rng=np.random.default_rng(0)).fit(points).inertia
        assert inertia2 < inertia1

    def test_more_clusters_than_points_rejected(self, rng):
        with pytest.raises(ValueError):
            KMeans(5, rng=rng).fit([[1.0, 2.0]])

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_1d_input_reshaped(self, rng):
        result = KMeans(2, rng=rng).fit([0.0, 0.1, 9.9, 10.0])
        assert result.k == 2
        assert sorted(result.cluster_sizes()) == [2, 2]


class TestSilhouette:
    def test_well_separated_high_score(self, rng):
        points = _two_blobs(rng)
        labels = np.r_[np.zeros(30, dtype=int), np.ones(30, dtype=int)]
        assert silhouette_score(points, labels) > 0.8

    def test_single_cluster_scores_zero(self, rng):
        points = rng.normal(size=(20, 2))
        assert silhouette_score(points, np.zeros(20, dtype=int)) == 0.0

    def test_bad_labels_score_low(self, rng):
        points = _two_blobs(rng)
        labels = rng.integers(0, 2, 60)
        good = np.r_[np.zeros(30, dtype=int), np.ones(30, dtype=int)]
        assert silhouette_score(points, labels) < silhouette_score(points, good)


class TestSelectK:
    def test_two_blobs_select_two(self, rng):
        points = _two_blobs(rng)
        result = select_k(points, max_k=4, rng=rng)
        assert result.k == 2

    def test_single_blob_stays_one(self, rng):
        points = rng.normal(0.0, 1.0, (50, 2))
        result = select_k(points, max_k=4, rng=rng)
        assert result.k == 1

    def test_conservatism_threshold(self, rng):
        # Two barely separated blobs: a high threshold keeps them merged.
        points = _two_blobs(rng, separation=1.0)
        result = select_k(points, max_k=4, min_silhouette=0.95, rng=rng)
        assert result.k == 1
