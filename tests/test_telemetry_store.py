"""Unit tests for repro.telemetry.store and counters."""

import numpy as np
import pytest

from repro.telemetry.counters import Counter, CounterSample, WINDOW_SECONDS, workload_counter
from repro.telemetry.store import MetricStore


def _sample(window, server="s0", pool="P", dc="DC1", counter="cpu", value=1.0):
    return CounterSample(
        window_index=window,
        server_id=server,
        pool_id=pool,
        datacenter_id=dc,
        counter=counter,
        value=value,
    )


@pytest.fixture()
def store():
    s = MetricStore()
    for w in range(10):
        s.record(_sample(w, server="s0", value=float(w)))
        s.record(_sample(w, server="s1", value=float(w) * 2))
        s.record(_sample(w, server="s0", counter="lat", value=10.0 + w))
    s.record(_sample(0, server="s2", pool="Q", dc="DC2", value=5.0))
    return s


class TestCounters:
    def test_window_seconds_is_paper_value(self):
        assert WINDOW_SECONDS == 120

    def test_workload_counter_name(self):
        assert workload_counter("table_a") == "Requests/sec[table_a]"

    def test_workload_counter_empty_rejected(self):
        with pytest.raises(ValueError):
            workload_counter("")

    def test_sample_time_seconds(self):
        assert _sample(3).time_seconds == 360.0

    def test_resource_classification(self):
        assert Counter.PROCESSOR_UTILIZATION.is_resource
        assert not Counter.LATENCY_P95.is_resource
        assert Counter.LATENCY_P95.is_qos
        assert not Counter.AVAILABILITY.is_qos


class TestIngest:
    def test_sample_count(self, store):
        assert store.sample_count() == 31

    def test_pools_and_datacenters(self, store):
        assert store.pools == ("P", "Q")
        assert store.datacenters == ("DC1", "DC2")

    def test_max_window(self, store):
        assert store.max_window == 9

    def test_empty_store(self):
        s = MetricStore()
        assert s.max_window == -1
        assert s.sample_count() == 0

    def test_record_fast_equivalent(self):
        a, b = MetricStore(), MetricStore()
        a.record(_sample(1, value=3.0))
        b.record_fast(1, "s0", "P", "DC1", "cpu", 3.0)
        sa = a.server_series("P", "cpu", "s0")
        sb = b.server_series("P", "cpu", "s0")
        np.testing.assert_array_equal(sa.values, sb.values)
        np.testing.assert_array_equal(sa.windows, sb.windows)


class TestBatchIngest:
    def test_record_batch_equivalent_to_record(self):
        a, b = MetricStore(), MetricStore()
        for w in range(3):
            for i, server in enumerate(["s0", "s1", "s2"]):
                a.record(_sample(w, server=server, value=float(w * 10 + i)))
        for w in range(3):
            b.record_batch(
                "P", "DC1", "cpu", w,
                ["s0", "s1", "s2"],
                np.array([w * 10.0, w * 10.0 + 1, w * 10.0 + 2]),
            )
        assert a.sample_count() == b.sample_count()
        for server in ("s0", "s1", "s2"):
            sa = a.server_series("P", "cpu", server)
            sb = b.server_series("P", "cpu", server)
            np.testing.assert_array_equal(sa.windows, sb.windows)
            np.testing.assert_array_equal(sa.values, sb.values)
        for reducer in ("mean", "sum", "max", "count"):
            np.testing.assert_array_equal(
                a.pool_window_aggregate("P", "cpu", reducer=reducer).values,
                b.pool_window_aggregate("P", "cpu", reducer=reducer).values,
            )

    def test_record_batch_with_interned_indices(self):
        store = MetricStore()
        indices = store.intern_servers(["s0", "s1"])
        store.record_batch("P", "DC1", "cpu", 0, indices, np.array([1.0, 2.0]))
        store.record_batch("P", "DC1", "cpu", 1, indices, np.array([3.0, 4.0]))
        assert store.servers_in_pool("P") == ("s0", "s1")
        series = store.server_series("P", "cpu", "s1")
        np.testing.assert_array_equal(series.values, [2.0, 4.0])

    def test_record_batch_copies_caller_buffers(self):
        store = MetricStore()
        buffer = np.array([1.0, 2.0])
        indices = store.intern_servers(["s0", "s1"])
        store.record_batch("P", "DC1", "cpu", 0, indices, buffer)
        buffer[:] = 99.0  # caller reuses the scratch array
        np.testing.assert_array_equal(
            store.pool_window_aggregate("P", "cpu", reducer="sum").values, [3.0]
        )

    def test_record_batch_misaligned_rejected(self):
        store = MetricStore()
        with pytest.raises(ValueError):
            store.record_batch("P", "DC1", "cpu", 0, ["s0"], np.array([1.0, 2.0]))

    def test_record_many_delegates_to_batch_path(self):
        store = MetricStore()
        store.record_many(
            [
                _sample(0, server="s0", value=1.0),
                _sample(0, server="s1", value=2.0),
                _sample(1, server="s0", counter="lat", value=9.0),
            ]
        )
        assert store.sample_count() == 3
        assert store.pool_window_aggregate("P", "cpu", reducer="sum").values[0] == 3.0
        assert store.server_series("P", "lat", "s0").values[0] == 9.0

    def test_aggregate_cache_invalidated_on_ingest(self):
        store = MetricStore()
        store.record_batch("P", "DC1", "cpu", 0, ["s0"], np.array([1.0]))
        first = store.pool_window_aggregate("P", "cpu")
        # Same query twice returns the memoized object.
        assert store.pool_window_aggregate("P", "cpu") is first
        store.record_batch("P", "DC1", "cpu", 1, ["s0"], np.array([5.0]))
        refreshed = store.pool_window_aggregate("P", "cpu")
        assert refreshed is not first
        np.testing.assert_array_equal(refreshed.values, [1.0, 5.0])

    def test_pool_matrix_dense_view(self):
        store = MetricStore()
        store.record_batch("P", "DC1", "cpu", 0, ["s0", "s1"], np.array([1.0, 2.0]))
        store.record_batch("P", "DC1", "cpu", 2, ["s0"], np.array([3.0]))
        windows, names, matrix = store.pool_matrix("P", "cpu")
        np.testing.assert_array_equal(windows, [0, 2])
        assert names == ("s0", "s1")
        np.testing.assert_array_equal(matrix[:, 0], [1.0, 3.0])
        assert matrix[1, 1] != matrix[1, 1]  # NaN for the missing sample


class TestQueries:
    def test_server_series(self, store):
        series = store.server_series("P", "cpu", "s0")
        assert len(series) == 10
        assert series.values[3] == 3.0

    def test_server_series_sliced(self, store):
        series = store.server_series("P", "cpu", "s0", start=2, stop=5)
        np.testing.assert_array_equal(series.windows, [2, 3, 4])

    def test_missing_series_empty(self, store):
        assert store.server_series("P", "cpu", "nope").is_empty

    def test_pool_mean_aggregate(self, store):
        series = store.pool_window_aggregate("P", "cpu")
        # mean of (w, 2w) = 1.5w
        assert series.values[4] == pytest.approx(6.0)

    def test_pool_sum_aggregate(self, store):
        series = store.pool_window_aggregate("P", "cpu", reducer="sum")
        assert series.values[4] == pytest.approx(12.0)

    def test_pool_max_aggregate(self, store):
        series = store.pool_window_aggregate("P", "cpu", reducer="max")
        assert series.values[4] == pytest.approx(8.0)

    def test_pool_count_aggregate(self, store):
        series = store.pool_window_aggregate("P", "cpu", reducer="count")
        assert series.values[0] == 2.0

    def test_unknown_reducer_rejected(self, store):
        with pytest.raises(ValueError):
            store.pool_window_aggregate("P", "cpu", reducer="median")

    def test_dc_filter(self, store):
        series = store.pool_window_aggregate("Q", "cpu", datacenter_id="DC2")
        assert len(series) == 1
        empty = store.pool_window_aggregate("Q", "cpu", datacenter_id="DC1")
        assert empty.is_empty

    def test_per_server_values(self, store):
        per_server = store.per_server_values("P", "cpu")
        assert set(per_server) == {"s0", "s1"}
        assert per_server["s1"][2] == 4.0

    def test_per_server_values_window_sliced(self, store):
        per_server = store.per_server_values("P", "cpu", start=8)
        assert per_server["s0"].size == 2

    def test_all_values(self, store):
        values = store.all_values("cpu")
        assert values.size == 21

    def test_all_values_pool_filtered(self, store):
        values = store.all_values("cpu", pool_ids=["Q"])
        assert values.size == 1

    def test_all_values_missing_counter(self, store):
        assert store.all_values("nothing").size == 0

    def test_servers_in_pool(self, store):
        assert store.servers_in_pool("P") == ("s0", "s1")
        assert store.servers_in_pool("P", datacenter_id="DC2") == ()

    def test_counters_for_pool(self, store):
        assert set(store.counters_for_pool("P")) == {"cpu", "lat"}

    def test_datacenters_for_pool(self, store):
        assert store.datacenters_for_pool("P") == ("DC1",)
        assert store.datacenters_for_pool("Q") == ("DC2",)
