"""Unit tests for repro.telemetry.store and counters."""

import numpy as np
import pytest

from repro.telemetry.counters import Counter, CounterSample, WINDOW_SECONDS, workload_counter
from repro.telemetry.store import MetricStore


def _sample(window, server="s0", pool="P", dc="DC1", counter="cpu", value=1.0):
    return CounterSample(
        window_index=window,
        server_id=server,
        pool_id=pool,
        datacenter_id=dc,
        counter=counter,
        value=value,
    )


@pytest.fixture()
def store():
    s = MetricStore()
    for w in range(10):
        s.record(_sample(w, server="s0", value=float(w)))
        s.record(_sample(w, server="s1", value=float(w) * 2))
        s.record(_sample(w, server="s0", counter="lat", value=10.0 + w))
    s.record(_sample(0, server="s2", pool="Q", dc="DC2", value=5.0))
    return s


class TestCounters:
    def test_window_seconds_is_paper_value(self):
        assert WINDOW_SECONDS == 120

    def test_workload_counter_name(self):
        assert workload_counter("table_a") == "Requests/sec[table_a]"

    def test_workload_counter_empty_rejected(self):
        with pytest.raises(ValueError):
            workload_counter("")

    def test_sample_time_seconds(self):
        assert _sample(3).time_seconds == 360.0

    def test_resource_classification(self):
        assert Counter.PROCESSOR_UTILIZATION.is_resource
        assert not Counter.LATENCY_P95.is_resource
        assert Counter.LATENCY_P95.is_qos
        assert not Counter.AVAILABILITY.is_qos


class TestIngest:
    def test_sample_count(self, store):
        assert store.sample_count() == 31

    def test_pools_and_datacenters(self, store):
        assert store.pools == ("P", "Q")
        assert store.datacenters == ("DC1", "DC2")

    def test_max_window(self, store):
        assert store.max_window == 9

    def test_empty_store(self):
        s = MetricStore()
        assert s.max_window == -1
        assert s.sample_count() == 0

    def test_record_fast_equivalent(self):
        a, b = MetricStore(), MetricStore()
        a.record(_sample(1, value=3.0))
        b.record_fast(1, "s0", "P", "DC1", "cpu", 3.0)
        sa = a.server_series("P", "cpu", "s0")
        sb = b.server_series("P", "cpu", "s0")
        np.testing.assert_array_equal(sa.values, sb.values)
        np.testing.assert_array_equal(sa.windows, sb.windows)


class TestQueries:
    def test_server_series(self, store):
        series = store.server_series("P", "cpu", "s0")
        assert len(series) == 10
        assert series.values[3] == 3.0

    def test_server_series_sliced(self, store):
        series = store.server_series("P", "cpu", "s0", start=2, stop=5)
        np.testing.assert_array_equal(series.windows, [2, 3, 4])

    def test_missing_series_empty(self, store):
        assert store.server_series("P", "cpu", "nope").is_empty

    def test_pool_mean_aggregate(self, store):
        series = store.pool_window_aggregate("P", "cpu")
        # mean of (w, 2w) = 1.5w
        assert series.values[4] == pytest.approx(6.0)

    def test_pool_sum_aggregate(self, store):
        series = store.pool_window_aggregate("P", "cpu", reducer="sum")
        assert series.values[4] == pytest.approx(12.0)

    def test_pool_max_aggregate(self, store):
        series = store.pool_window_aggregate("P", "cpu", reducer="max")
        assert series.values[4] == pytest.approx(8.0)

    def test_pool_count_aggregate(self, store):
        series = store.pool_window_aggregate("P", "cpu", reducer="count")
        assert series.values[0] == 2.0

    def test_unknown_reducer_rejected(self, store):
        with pytest.raises(ValueError):
            store.pool_window_aggregate("P", "cpu", reducer="median")

    def test_dc_filter(self, store):
        series = store.pool_window_aggregate("Q", "cpu", datacenter_id="DC2")
        assert len(series) == 1
        empty = store.pool_window_aggregate("Q", "cpu", datacenter_id="DC1")
        assert empty.is_empty

    def test_per_server_values(self, store):
        per_server = store.per_server_values("P", "cpu")
        assert set(per_server) == {"s0", "s1"}
        assert per_server["s1"][2] == 4.0

    def test_per_server_values_window_sliced(self, store):
        per_server = store.per_server_values("P", "cpu", start=8)
        assert per_server["s0"].size == 2

    def test_all_values(self, store):
        values = store.all_values("cpu")
        assert values.size == 21

    def test_all_values_pool_filtered(self, store):
        values = store.all_values("cpu", pool_ids=["Q"])
        assert values.size == 1

    def test_all_values_missing_counter(self, store):
        assert store.all_values("nothing").size == 0

    def test_servers_in_pool(self, store):
        assert store.servers_in_pool("P") == ("s0", "s1")
        assert store.servers_in_pool("P", datacenter_id="DC2") == ()

    def test_counters_for_pool(self, store):
        assert set(store.counters_for_pool("P")) == {"cpu", "lat"}

    def test_datacenters_for_pool(self, store):
        assert store.datacenters_for_pool("P") == ("DC1",)
        assert store.datacenters_for_pool("Q") == ("DC2",)
