"""CLI argument parsing and the simulate command's store/engine wiring.

Covers the engine/shards/workers/shard-backend/block-windows
combinations and the archive-optional path of
``python -m repro simulate``.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.cli import build_parser, main


def _load_docs_check():
    path = Path(__file__).resolve().parent.parent / "tools" / "docs_check.py"
    spec = importlib.util.spec_from_file_location("docs_check", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSimulateParsing:
    def setup_method(self):
        self.parser = build_parser()

    def test_defaults(self):
        args = self.parser.parse_args(["simulate"])
        assert args.output is None
        assert args.engine == "batch"
        assert args.shards == 1
        assert args.workers == 1
        assert args.block_windows == 1
        assert args.shard_backend is None
        assert args.windows is None
        assert args.days == 2.0

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_shard_backend_choices(self, backend):
        args = self.parser.parse_args(["simulate", "--shard-backend", backend])
        assert args.shard_backend == backend

    def test_unknown_shard_backend_rejected(self):
        with pytest.raises(SystemExit):
            self.parser.parse_args(["simulate", "--shard-backend", "rayon"])

    @pytest.mark.parametrize("engine", ["batch", "per-sample", "legacy"])
    def test_engine_choices(self, engine):
        args = self.parser.parse_args(["simulate", "--engine", engine])
        assert args.engine == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            self.parser.parse_args(["simulate", "--engine", "warp"])

    def test_shard_flags(self):
        args = self.parser.parse_args(
            [
                "simulate",
                "out.csv",
                "--shards", "4",
                "--workers", "2",
                "--block-windows", "32",
                "--windows", "10",
            ]
        )
        assert args.output == "out.csv"
        assert (args.shards, args.workers, args.block_windows) == (4, 2, 32)
        assert args.windows == 10

    def test_archive_is_optional(self):
        args = self.parser.parse_args(["simulate", "--windows", "5"])
        assert args.output is None

    @pytest.mark.parametrize("flag", ["--shards", "--workers", "--block-windows"])
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_out_of_range_values_rejected_cleanly(self, flag, value):
        """Invalid shard/worker/block values exit 2 via argparse."""
        with pytest.raises(SystemExit) as excinfo:
            self.parser.parse_args(["simulate", flag, value])
        assert excinfo.value.code == 2

    def test_other_commands_require_archive(self):
        for command in ("plan", "validate", "availability"):
            with pytest.raises(SystemExit):
                self.parser.parse_args([command])
            args = self.parser.parse_args([command, "some.csv"])
            assert args.archive == "some.csv"


class TestSimulateExecution:
    """Tiny end-to-end runs through main() for each store configuration."""

    BASE = [
        "simulate",
        "--windows", "4",
        "--servers", "2",
        "--datacenters", "1",
        "--pools", "B",
    ]

    @pytest.mark.parametrize(
        "extra",
        [
            [],
            ["--engine", "per-sample"],
            ["--engine", "legacy"],
            ["--shards", "2"],
            ["--shards", "2", "--workers", "2"],
            ["--block-windows", "2"],
            ["--shards", "3", "--workers", "2", "--block-windows", "2"],
            ["--shards", "2", "--shard-backend", "serial"],
            ["--shards", "2", "--shard-backend", "threads"],
            ["--shards", "2", "--shard-backend", "processes"],
            ["--shard-backend", "processes"],  # implies a sharded store
        ],
        ids=lambda extra: " ".join(extra) or "defaults",
    )
    def test_simulate_without_archive(self, extra):
        assert main(self.BASE + extra) == 0

    def test_simulate_writes_archive(self, tmp_path):
        archive = tmp_path / "telemetry.csv"
        assert main(self.BASE + ["--shards", "2", str(archive)]) == 0
        header = archive.read_text().splitlines()[0]
        assert header == "window,server_id,pool_id,datacenter_id,counter,value"

    def test_blocked_sharded_archive_matches_single(self, tmp_path):
        """The full CLI path: sharded+blocked export == single-store export."""
        single = tmp_path / "single.csv"
        sharded = tmp_path / "sharded.csv"
        base = self.BASE + ["--windows", "6"]
        assert main(base + [str(single)]) == 0
        assert main(
            base + ["--shards", "2", "--block-windows", "1", str(sharded)]
        ) == 0
        assert single.read_text() == sharded.read_text()

    def test_block_windows_with_legacy_engine_fails_cleanly(self):
        assert main(self.BASE + ["--engine", "legacy", "--block-windows", "4"]) == 2

    def test_serial_backend_with_workers_fails_cleanly(self):
        assert main(
            self.BASE + ["--shards", "2", "--workers", "2",
                         "--shard-backend", "serial"]
        ) == 2

    def test_processes_archive_matches_single(self, tmp_path):
        """CLI process-backed export is byte-identical to unsharded."""
        import multiprocessing

        single = tmp_path / "single.csv"
        procs = tmp_path / "procs.csv"
        assert main(self.BASE + [str(single)]) == 0
        assert main(
            self.BASE + ["--shards", "2", "--shard-backend", "processes",
                         str(procs)]
        ) == 0
        assert single.read_bytes() == procs.read_bytes()
        # The command must have reaped its worker processes.
        assert multiprocessing.active_children() == []


class TestDocsCheck:
    """The docs-check tool: README and the CLI must agree."""

    def test_repo_readme_passes(self):
        docs_check = _load_docs_check()
        assert docs_check.check() == []

    def test_detects_unknown_flag(self, tmp_path):
        docs_check = _load_docs_check()
        bad = tmp_path / "README.md"
        bad.write_text(
            "```bash\npython -m repro simulate --warp-speed 9\n```\n"
            + "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        errors = docs_check.check(bad)
        assert any("--warp-speed" in error for error in errors)

    def test_detects_undocumented_simulate_flag(self, tmp_path):
        docs_check = _load_docs_check()
        bare = tmp_path / "README.md"
        bare.write_text("no flags documented at all\n")
        errors = docs_check.check(bare)
        assert any("--shards" in error for error in errors)
        assert any("--block-windows" in error for error in errors)
        assert any("--shard-backend" in error for error in errors)

    def test_detects_stale_inline_flag_mention(self, tmp_path):
        """The reverse drift direction: prose naming a removed flag."""
        docs_check = _load_docs_check()
        bad = tmp_path / "README.md"
        bad.write_text(
            "Pass `--warp-speed` to go faster.\n"
            + "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        errors = docs_check.check(bad)
        assert any(
            "--warp-speed" in error and "mentions" in error for error in errors
        )

    def test_fenced_code_of_any_language_is_not_flag_checked(self, tmp_path):
        """Flags inside non-bash fences (e.g. python) are not prose."""
        docs_check = _load_docs_check()
        ok = tmp_path / "README.md"
        ok.write_text(
            "```python\n# pass ``--not-a-real-flag`` here\nx = 1\n```\n"
            + "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        assert docs_check.check(ok) == []

    def test_non_cli_tool_flags_are_allowlisted(self, tmp_path):
        docs_check = _load_docs_check()
        ok = tmp_path / "README.md"
        ok.write_text(
            "Run the benchmark with `--smoke` or `--backends`.\n"
            + "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        assert docs_check.check(ok) == []
