"""CLI argument parsing and the simulate command's store/engine wiring.

Covers the engine/shards/workers/shard-backend/block-windows
combinations, the archive-optional path of ``python -m repro
simulate``, and the distributed path: ``repro shard-server`` hosting
remote shards that ``simulate --shard-backend tcp`` writes through.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_docs_check():
    path = Path(__file__).resolve().parent.parent / "tools" / "docs_check.py"
    spec = importlib.util.spec_from_file_location("docs_check", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSimulateParsing:
    def setup_method(self):
        self.parser = build_parser()

    def test_defaults(self):
        args = self.parser.parse_args(["simulate"])
        assert args.output is None
        assert args.engine == "batch"
        assert args.shards == 1
        assert args.workers == 1
        assert args.block_windows == 1
        assert args.shard_backend is None
        assert args.windows is None
        assert args.days == 2.0

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_shard_backend_choices(self, backend):
        args = self.parser.parse_args(["simulate", "--shard-backend", backend])
        assert args.shard_backend == backend

    def test_unknown_shard_backend_rejected(self):
        with pytest.raises(SystemExit):
            self.parser.parse_args(["simulate", "--shard-backend", "rayon"])

    @pytest.mark.parametrize("engine", ["batch", "per-sample", "legacy"])
    def test_engine_choices(self, engine):
        args = self.parser.parse_args(["simulate", "--engine", engine])
        assert args.engine == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            self.parser.parse_args(["simulate", "--engine", "warp"])

    def test_shard_flags(self):
        args = self.parser.parse_args(
            [
                "simulate",
                "out.csv",
                "--shards", "4",
                "--workers", "2",
                "--block-windows", "32",
                "--windows", "10",
            ]
        )
        assert args.output == "out.csv"
        assert (args.shards, args.workers, args.block_windows) == (4, 2, 32)
        assert args.windows == 10

    def test_archive_is_optional(self):
        args = self.parser.parse_args(["simulate", "--windows", "5"])
        assert args.output is None

    @pytest.mark.parametrize("flag", ["--shards", "--workers", "--block-windows"])
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_out_of_range_values_rejected_cleanly(self, flag, value):
        """Invalid shard/worker/block values exit 2 via argparse."""
        with pytest.raises(SystemExit) as excinfo:
            self.parser.parse_args(["simulate", flag, value])
        assert excinfo.value.code == 2

    def test_shard_addrs_flag(self):
        args = self.parser.parse_args(
            ["simulate", "--shard-backend", "tcp",
             "--shard-addrs", "127.0.0.1:9400,127.0.0.1:9401"]
        )
        assert args.shard_backend == "tcp"
        assert args.shard_addrs == "127.0.0.1:9400,127.0.0.1:9401"
        assert self.parser.parse_args(["simulate"]).shard_addrs is None

    def test_pipeline_and_timeout_defaults(self):
        args = self.parser.parse_args(["simulate"])
        assert args.pipeline_depth == 4
        assert args.io_timeout == 60.0

    def test_pipeline_and_timeout_flags(self):
        args = self.parser.parse_args(
            ["simulate", "--pipeline-depth", "0", "--io-timeout", "2.5"]
        )
        assert args.pipeline_depth == 0
        assert args.io_timeout == 2.5

    def test_negative_pipeline_depth_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            self.parser.parse_args(["simulate", "--pipeline-depth", "-1"])
        assert excinfo.value.code == 2

    def test_shard_server_defaults(self):
        args = self.parser.parse_args(["shard-server"])
        assert args.listen == "127.0.0.1:0"
        assert args.max_sessions is None

    def test_shard_server_flags(self):
        args = self.parser.parse_args(
            ["shard-server", "--listen", "0.0.0.0:9400", "--max-sessions", "4"]
        )
        assert args.listen == "0.0.0.0:9400"
        assert args.max_sessions == 4
        with pytest.raises(SystemExit):
            self.parser.parse_args(["shard-server", "--max-sessions", "0"])

    def test_other_commands_require_archive(self):
        for command in ("plan", "validate", "availability"):
            with pytest.raises(SystemExit):
                self.parser.parse_args([command])
            args = self.parser.parse_args([command, "some.csv"])
            assert args.archive == "some.csv"


class TestSimulateExecution:
    """Tiny end-to-end runs through main() for each store configuration."""

    BASE = [
        "simulate",
        "--windows", "4",
        "--servers", "2",
        "--datacenters", "1",
        "--pools", "B",
    ]

    @pytest.mark.parametrize(
        "extra",
        [
            [],
            ["--engine", "per-sample"],
            ["--engine", "legacy"],
            ["--shards", "2"],
            ["--shards", "2", "--workers", "2"],
            ["--block-windows", "2"],
            ["--shards", "3", "--workers", "2", "--block-windows", "2"],
            ["--shards", "2", "--shard-backend", "serial"],
            ["--shards", "2", "--shard-backend", "threads"],
            ["--shards", "2", "--shard-backend", "processes"],
            ["--shard-backend", "processes"],  # implies a sharded store
        ],
        ids=lambda extra: " ".join(extra) or "defaults",
    )
    def test_simulate_without_archive(self, extra):
        assert main(self.BASE + extra) == 0

    def test_simulate_writes_archive(self, tmp_path):
        archive = tmp_path / "telemetry.csv"
        assert main(self.BASE + ["--shards", "2", str(archive)]) == 0
        header = archive.read_text().splitlines()[0]
        assert header == "window,server_id,pool_id,datacenter_id,counter,value"

    def test_blocked_sharded_archive_matches_single(self, tmp_path):
        """The full CLI path: sharded+blocked export == single-store export."""
        single = tmp_path / "single.csv"
        sharded = tmp_path / "sharded.csv"
        base = self.BASE + ["--windows", "6"]
        assert main(base + [str(single)]) == 0
        assert main(
            base + ["--shards", "2", "--block-windows", "1", str(sharded)]
        ) == 0
        assert single.read_text() == sharded.read_text()

    def test_block_windows_with_legacy_engine_fails_cleanly(self):
        assert main(self.BASE + ["--engine", "legacy", "--block-windows", "4"]) == 2

    def test_serial_backend_with_workers_fails_cleanly(self):
        assert main(
            self.BASE + ["--shards", "2", "--workers", "2",
                         "--shard-backend", "serial"]
        ) == 2

    def test_processes_archive_matches_single(self, tmp_path):
        """CLI process-backed export is byte-identical to unsharded."""
        import multiprocessing

        single = tmp_path / "single.csv"
        procs = tmp_path / "procs.csv"
        assert main(self.BASE + [str(single)]) == 0
        assert main(
            self.BASE + ["--shards", "2", "--shard-backend", "processes",
                         str(procs)]
        ) == 0
        assert single.read_bytes() == procs.read_bytes()
        # The command must have reaped its worker processes.
        assert multiprocessing.active_children() == []

    def test_shard_addrs_without_tcp_backend_fails_cleanly(self):
        assert main(
            self.BASE + ["--shard-addrs", "127.0.0.1:9400"]
        ) == 2
        assert main(
            self.BASE + ["--shard-backend", "processes",
                         "--shard-addrs", "127.0.0.1:9400"]
        ) == 2

    def test_tcp_backend_without_addrs_fails_cleanly(self):
        assert main(self.BASE + ["--shard-backend", "tcp"]) == 2

    @pytest.mark.parametrize(
        "bad_addrs",
        [
            "127.0.0.1:notaport",
            "127.0.0.1:99999",
            "no-port-at-all",
            "[::1:9400",          # unbalanced IPv6 brackets
            "::1:9400",           # bare-colon IPv6 (brackets required)
            "127.0.0.1:9400,:9401",  # one good, one empty host
        ],
    )
    def test_malformed_shard_addrs_exit_2(self, bad_addrs, capsys):
        """Bad addresses are a usage error (exit 2, message on stderr,
        naming the bad input) — never a traceback or a late crash."""
        assert main(
            self.BASE + ["--shard-backend", "tcp", "--shard-addrs", bad_addrs]
        ) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "invalid address" in captured.err or "requires" in captured.err

    def test_tcp_backend_with_dead_server_fails_cleanly(self):
        """Nothing listening: exit 2 with a clear error, no traceback."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(
            self.BASE + ["--shard-backend", "tcp",
                         "--shard-addrs", f"127.0.0.1:{port}",
                         "--connect-timeout", "0.3"]
        ) == 2

    @pytest.mark.slow
    def test_tcp_archive_matches_single_via_real_server(
        self, tmp_path, shard_server_processes
    ):
        """The acceptance path: ``--shard-backend tcp`` against a real
        ``repro shard-server`` subprocess on loopback writes an archive
        byte-identical to a single store's, and the server exits 0 once
        its ``--max-sessions`` sessions ended."""
        server, address = shard_server_processes.spawn(max_sessions=2)
        try:
            single = tmp_path / "single.csv"
            tcp = tmp_path / "tcp.csv"
            assert main(self.BASE + [str(single)]) == 0
            assert main(
                self.BASE + [
                    "--shard-backend", "tcp",
                    "--shard-addrs", f"{address},{address}",
                    str(tcp),
                ]
            ) == 0
            assert single.read_bytes() == tcp.read_bytes()
            assert server.wait(timeout=30) == 0
        finally:
            shard_server_processes.reap(server)

    @pytest.mark.slow
    def test_tcp_pipeline_flags_through_cli(
        self, tmp_path, shard_server_processes
    ):
        """--pipeline-depth / --io-timeout reach the store: a pipelined
        run and a synchronous (depth 0) run both write archives
        byte-identical to the unsharded baseline."""
        server, address = shard_server_processes.spawn(max_sessions=4)
        try:
            single = tmp_path / "single.csv"
            assert main(self.BASE + [str(single)]) == 0
            for depth, name in (("2", "pipelined.csv"), ("0", "sync.csv")):
                archive = tmp_path / name
                assert main(
                    self.BASE + [
                        "--shard-backend", "tcp",
                        "--shard-addrs", f"{address},{address}",
                        "--pipeline-depth", depth,
                        "--io-timeout", "30",
                        str(archive),
                    ]
                ) == 0
                assert single.read_bytes() == archive.read_bytes()
            assert server.wait(timeout=30) == 0
        finally:
            shard_server_processes.reap(server)


class TestQueryCliValidation:
    """Bad --query-listen / repro-query input is a usage error (exit 2)
    raised before any socket is dialed."""

    def test_query_listen_requires_stream(self, capsys):
        assert main(["simulate", "--windows", "4",
                     "--query-listen", "127.0.0.1:0"]) == 2
        assert "--query-listen requires --stream" in capsys.readouterr().err

    def test_query_listen_address_validated_before_run(self, capsys):
        assert main(["simulate", "--stream", "--windows", "4",
                     "--query-listen", "localhost"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "localhost" in err

    def test_query_address_validated_before_dial(self, capsys):
        assert main(["query", "not-an-address"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not-an-address" in err

    def test_query_pool_and_counter_must_pair(self, capsys):
        assert main(["query", "127.0.0.1:9400", "--pool", "B"]) == 2
        assert "--pool and --counter" in capsys.readouterr().err

    def test_query_refused_connection_exits_2(self, capsys):
        """A dead address is a clean usage-level failure, not a traceback."""
        import socket

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()  # nothing listens here any more
        assert main(["query", f"127.0.0.1:{port}",
                     "--connect-timeout", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert str(port) in err


class TestDocsCheck:
    """The docs-check tool: README and the CLI must agree."""

    def test_repo_readme_passes(self):
        docs_check = _load_docs_check()
        assert docs_check.check() == []

    def test_detects_unknown_flag(self, tmp_path):
        docs_check = _load_docs_check()
        bad = tmp_path / "README.md"
        bad.write_text(
            "```bash\npython -m repro simulate --warp-speed 9\n```\n"
            + "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        errors = docs_check.check(bad)
        assert any("--warp-speed" in error for error in errors)

    def test_detects_undocumented_simulate_flag(self, tmp_path):
        docs_check = _load_docs_check()
        bare = tmp_path / "README.md"
        bare.write_text("no flags documented at all\n")
        errors = docs_check.check(bare)
        assert any("--shards" in error for error in errors)
        assert any("--block-windows" in error for error in errors)
        assert any("--shard-backend" in error for error in errors)

    def test_detects_stale_inline_flag_mention(self, tmp_path):
        """The reverse drift direction: prose naming a removed flag."""
        docs_check = _load_docs_check()
        bad = tmp_path / "README.md"
        bad.write_text(
            "Pass `--warp-speed` to go faster.\n"
            + "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        errors = docs_check.check(bad)
        assert any(
            "--warp-speed" in error and "mentions" in error for error in errors
        )

    def test_fenced_code_of_any_language_is_not_flag_checked(self, tmp_path):
        """Flags inside non-bash fences (e.g. python) are not prose."""
        docs_check = _load_docs_check()
        ok = tmp_path / "README.md"
        ok.write_text(
            "```python\n# pass ``--not-a-real-flag`` here\nx = 1\n```\n"
            + "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        assert docs_check.check(ok) == []

    def test_non_cli_tool_flags_are_allowlisted(self, tmp_path):
        docs_check = _load_docs_check()
        ok = tmp_path / "README.md"
        ok.write_text(
            "Run the benchmark with `--smoke` or `--backends`.\n"
            + "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        assert docs_check.check(ok) == []

    def test_undocumented_command_detected(self):
        """Direction 4: a CLI command no doc mentions is drift."""
        docs_check = _load_docs_check()
        commands = docs_check.cli_options()
        assert "shard-server" in commands
        errors = docs_check.undocumented_commands(
            commands, "only `simulate`, `plan`, `validate`, `availability`"
        )
        assert any("shard-server" in error for error in errors)
        everything = " ".join(commands)
        assert docs_check.undocumented_commands(commands, everything) == []

    def test_distributed_doc_must_cover_shard_server_surface(self, tmp_path):
        """Direction 5: DISTRIBUTED.md owns the shard-server docs, so a
        copy that drops the command or any of its live parser flags
        (or the distributed simulate flags) fails the check."""
        docs_check = _load_docs_check()
        readme = tmp_path / "README.md"
        readme.write_text(
            "".join(
                f"`{flag}` "
                for flag in sorted(docs_check.cli_options()["simulate"])
            )
        )
        bare = tmp_path / "DISTRIBUTED.md"
        bare.write_text("all about distributed ingest, naming nothing\n")
        errors = docs_check.check(readme, doc_paths=[readme, bare])
        assert any(
            "shard-server" in error and "command" in error for error in errors
        )
        for flag in ("--listen", "--max-sessions", "--shard-addrs"):
            assert any(flag in error for error in errors), flag

    def test_repo_distributed_doc_covers_all_server_flags(self):
        """The real docs/DISTRIBUTED.md satisfies its coverage contract
        against the live parser (so a new shard-server flag cannot land
        without a docs update)."""
        docs_check = _load_docs_check()
        text = (REPO_ROOT / "docs" / "DISTRIBUTED.md").read_text()
        for flag in sorted(docs_check.cli_options()["shard-server"]):
            if flag in ("-h", "--help"):
                continue
            assert flag in text, f"docs/DISTRIBUTED.md misses {flag}"
