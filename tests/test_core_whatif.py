"""Tests for the offline what-if analyzer."""

import numpy as np
import pytest

from repro.core.slo import QoSRequirement
from repro.core.whatif import Scenario, WhatIfAnalyzer


@pytest.fixture(scope="module")
def analyzer(multi_dc_sim):
    return WhatIfAnalyzer(
        multi_dc_sim.store,
        "D",
        QoSRequirement(latency_p95_ms=58.0),
        rng=np.random.default_rng(0),
    )


class TestScenario:
    def test_defaults_are_neutral(self):
        s = Scenario(label="x")
        assert s.demand_factor == 1.0
        assert s.cpu_cost_factor == 1.0

    def test_invalid_factors_rejected(self):
        with pytest.raises(ValueError):
            Scenario(label="x", demand_factor=0.0)
        with pytest.raises(ValueError):
            Scenario(label="x", cpu_cost_factor=-1.0)


class TestWhatIf:
    def test_baseline_is_stable(self, analyzer):
        baseline = analyzer.required_servers(Scenario(label="baseline"))
        assert baseline >= 4  # at least one server per DC

    def test_demand_growth_needs_more(self, analyzer):
        base = analyzer.required_servers(Scenario(label="base"))
        grown = analyzer.required_servers(
            Scenario(label="grow", demand_factor=1.5)
        )
        assert grown > base
        # Roughly proportional (ceilings allow slack).
        assert grown <= int(np.ceil(base * 1.5)) + len(
            analyzer.store.datacenters_for_pool("D")
        )

    def test_loosened_slo_needs_less(self, analyzer):
        # "Reducing QoS requirements by 5 ms may require 10 % less
        # services" — the headline what-if of §II.
        tight = analyzer.required_servers(
            Scenario(label="tight", latency_slo_delta_ms=-4.0)
        )
        loose = analyzer.required_servers(
            Scenario(label="loose", latency_slo_delta_ms=+6.0)
        )
        assert loose <= tight

    def test_cpu_regression_needs_more(self, analyzer):
        base = analyzer.required_servers(Scenario(label="base"))
        slower = analyzer.required_servers(
            Scenario(label="hog", cpu_cost_factor=1.4)
        )
        assert slower > base

    def test_added_latency_needs_more(self, analyzer):
        base = analyzer.required_servers(Scenario(label="base"))
        regressed = analyzer.required_servers(
            Scenario(label="regress", added_latency_ms=6.0)
        )
        assert regressed >= base

    def test_retiring_a_datacenter_folds_traffic(self, analyzer):
        base = analyzer.required_servers(Scenario(label="base"))
        retired = analyzer.required_servers(
            Scenario(label="retire", retired_datacenters=("DC1",))
        )
        # Fewer sites but the same total traffic: the survivor total is
        # near the baseline (retired DC servers are repurposed).
        assert retired == pytest.approx(base, abs=max(2, base // 4))

    def test_retiring_all_rejected(self, analyzer):
        dcs = analyzer.store.datacenters_for_pool("D")
        with pytest.raises(ValueError):
            analyzer.required_servers(
                Scenario(label="all", retired_datacenters=tuple(dcs))
            )

    def test_unknown_datacenter_rejected(self, analyzer):
        with pytest.raises(KeyError):
            analyzer.required_servers(
                Scenario(label="bad", retired_datacenters=("DC99",))
            )

    def test_impossible_slo_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.required_servers(
                Scenario(label="zero", latency_slo_delta_ms=-58.0)
            )

    def test_evaluate_outcomes(self, analyzer):
        outcomes = analyzer.evaluate(
            [
                Scenario(label="grow 30%", demand_factor=1.3),
                Scenario(label="slo +5ms", latency_slo_delta_ms=5.0),
            ]
        )
        assert len(outcomes) == 2
        grow, slo = outcomes
        assert grow.delta_servers > 0
        assert slo.delta_servers <= 0
        assert "grow 30%" in grow.describe()

    def test_from_regression_report(self, analyzer):
        from dataclasses import dataclass

        # A minimal stand-in for a Step-4 report.
        @dataclass
        class FakeProfile:
            label: str

        @dataclass
        class FakeReport:
            change: FakeProfile
            max_latency_regression_ms: float

        scenario = Scenario.from_regression_report(
            FakeReport(change=FakeProfile("v9"), max_latency_regression_ms=3.5)
        )
        assert scenario.added_latency_ms == 3.5
        assert "v9" in scenario.label


class TestGuards:
    def test_missing_pool_rejected(self, multi_dc_sim):
        with pytest.raises(KeyError):
            WhatIfAnalyzer(
                multi_dc_sim.store, "ZZ", QoSRequirement(latency_p95_ms=10.0)
            )

    def test_invalid_safety_margin_rejected(self, multi_dc_sim):
        with pytest.raises(ValueError):
            WhatIfAnalyzer(
                multi_dc_sim.store, "D",
                QoSRequirement(latency_p95_ms=58.0), safety_margin=0.0,
            )
