"""Tests for fleet-wide utilization analysis (Figs 12-13)."""

import numpy as np
import pytest

from repro.analysis.utilization import study_fleet_utilization
from repro.telemetry.store import MetricStore


@pytest.fixture(scope="module")
def study(fleet_store):
    return study_fleet_utilization(fleet_store)


class TestHeadlineNumbers:
    def test_global_mean_low(self, study):
        # Paper: 23 % average.  Our fleet is provisioned similarly cold;
        # the exact value depends on catalogue provisioning targets.
        assert 5.0 < study.global_mean_utilization < 35.0

    def test_efficiency_factor(self, study):
        factor = study.theoretical_efficiency_factor
        assert factor == pytest.approx(100.0 / study.global_mean_utilization)
        assert factor > 2.5

    def test_majority_of_servers_below_30pct(self, study):
        # Paper: 80 % of servers use less than 30 % CPU.
        assert study.fraction_of_servers_below(30.0) > 0.6

    def test_high_cpu_samples_rare(self, study):
        # Paper Fig 13: few samples above 40 %.
        assert study.fraction_of_samples_above(40.0) < 0.05

    def test_spikes_are_minority(self, study):
        assert study.fraction_of_servers_spiking_above(40.0) < 0.6


class TestFigureSeries:
    def test_cdf_monotone(self, study):
        cdf = study.p95_cdf()
        assert np.all(np.diff(cdf.ps) >= 0)
        assert cdf.ps[-1] == pytest.approx(1.0)

    def test_histogram_fractions_sum(self, study):
        _edges, fractions = study.sample_histogram()
        assert fractions.sum() == pytest.approx(1.0, abs=0.01)

    def test_histogram_mass_at_low_cpu(self, study):
        edges, fractions = study.sample_histogram(bin_width_pct=5.0)
        low_mass = fractions[: 6].sum()  # below 30 %
        assert low_mass > 0.6
        del edges


class TestGuards:
    def test_empty_store_rejected(self):
        with pytest.raises(ValueError):
            study_fleet_utilization(MetricStore())

    def test_pool_filter(self, fleet_store):
        only_b = study_fleet_utilization(fleet_store, pool_ids=["B"])
        everything = study_fleet_utilization(fleet_store)
        assert only_b.all_samples.size < everything.all_samples.size
