"""Lifecycle and protocol tests of the process-backed shard workers.

The equivalence guarantees (process shards answer bit-identically to a
single store) live in ``test_sharded_store.py`` /
``test_sim_equivalence.py``, which parametrize over all backends.  This
file covers what is specific to the worker actor itself: process
lifecycle (close is orderly, idempotent and fork-safe — no leaked
children), the batching/flush ingest protocol, interner replication,
and deferred ingest-error delivery.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.telemetry.sharding import ShardedMetricStore
from repro.telemetry.workers import ShardWorker


def _fill(store, n_servers=6, n_windows=4):
    rng = np.random.default_rng(3)
    ids = [f"s{i:02d}" for i in range(n_servers)]
    indices = store.intern_servers(ids)
    for window in range(n_windows):
        store.record_batch(
            "P", "dc", "cpu", window, indices, rng.uniform(0, 1, n_servers)
        )
    return store


def _assert_no_active_children():
    # active_children() also joins finished processes, so a passing
    # assertion proves the workers were reaped, not merely signalled.
    assert multiprocessing.active_children() == []


class TestLifecycle:
    def test_backend_validation(self):
        with pytest.raises(ValueError):
            ShardedMetricStore(n_shards=2, backend="rayon")
        with pytest.raises(ValueError):
            ShardedMetricStore(n_shards=2, backend="serial", workers=2)
        with pytest.raises(ValueError):
            # processes always runs one worker child per shard.
            ShardedMetricStore(n_shards=2, backend="processes", workers=2)
        with pytest.raises(ValueError):
            ShardedMetricStore(n_shards=2, backend="processes", flush_rows=0)
        with pytest.raises(ValueError):
            # tcp cannot guess where its shard servers live ...
            ShardedMetricStore(n_shards=2, backend="tcp")
        with pytest.raises(ValueError):
            # ... runs one session per address ...
            ShardedMetricStore(
                backend="tcp", shard_addrs=["127.0.0.1:1"], workers=2
            )
        with pytest.raises(ValueError):
            # ... and owns the shard_addrs knob exclusively.
            ShardedMetricStore(n_shards=2, backend="serial",
                               shard_addrs=["127.0.0.1:1"])

    def test_tcp_shard_count_follows_addresses(self, shard_server):
        addrs = [shard_server.address] * 3
        with ShardedMetricStore(backend="tcp", shard_addrs=addrs) as store:
            assert store.backend == "tcp"
            assert store.n_shards == 3
            assert [shard.address for shard in store.shards] == addrs

    def test_backend_defaults_keep_historic_behaviour(self):
        serial = ShardedMetricStore(n_shards=2)
        assert serial.backend == "serial"
        threaded = ShardedMetricStore(n_shards=2, workers=2)
        assert threaded.backend == "threads"
        threaded.close()
        # Explicit threads backend defaults its pool to one thread per
        # shard instead of a pointless single-thread pool.
        explicit = ShardedMetricStore(n_shards=3, backend="threads")
        assert explicit.workers == 3
        explicit.close()

    def test_processes_spawn_one_worker_per_shard(self):
        with ShardedMetricStore(n_shards=3, backend="processes") as store:
            assert store.backend == "processes"
            assert all(isinstance(s, ShardWorker) for s in store.shards)
            pids = {shard.pid for shard in store.shards}
            assert len(pids) == 3 and os.getpid() not in pids
            assert len(multiprocessing.active_children()) == 3
        _assert_no_active_children()

    def test_double_close_leaks_no_children(self):
        store = ShardedMetricStore(n_shards=2, backend="processes")
        _fill(store)
        store.close()
        store.close()  # must be a no-op, not an error
        _assert_no_active_children()
        for shard in store.shards:
            assert shard.closed and shard.pid is None

    def test_close_after_fork_leaks_no_children(self):
        """A forked copy of the store must not kill the parent's workers.

        Forks inherit the proxy objects (and their pipe fds); only the
        creating process may terminate the worker children, otherwise a
        fork that exits cleanly would yank live shards out from under
        the parent.
        """
        store = ShardedMetricStore(n_shards=2, backend="processes")
        _fill(store)
        expected = store.sample_count()

        child = multiprocessing.get_context("fork").Process(
            target=ShardedMetricStore.close, args=(store,)
        )
        child.start()
        child.join(30)
        assert child.exitcode == 0

        # Parent's workers survived the fork's close() and still answer.
        assert store.sample_count() == expected
        store.close()
        _assert_no_active_children()

    def test_query_after_close_raises(self):
        store = ShardedMetricStore(n_shards=2, backend="processes")
        _fill(store)
        store.close()
        with pytest.raises(RuntimeError):
            store.sample_count()
        with pytest.raises(RuntimeError):
            store.record_batch(
                "P", "dc", "cpu", 99, np.array([0], dtype=np.int64), np.ones(1)
            )

    def test_context_manager_reaps_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with ShardedMetricStore(n_shards=2, backend="processes") as store:
                _fill(store)
                raise RuntimeError("boom")
        _assert_no_active_children()


class TestIngestProtocol:
    def test_small_parts_coalesce_until_flush(self):
        """Ingest buffers parts and ships them as one message."""
        with ShardedMetricStore(
            n_shards=2, backend="processes", flush_rows=10_000
        ) as store:
            _fill(store, n_servers=4, n_windows=5)
            # Nothing forced a flush yet: every part is still pending
            # parent-side (5 windows x 1 part per shard per window).
            assert all(shard._pending for shard in store.shards)
            assert all(shard._pending_rows == 10 for shard in store.shards)
            # The first query flushes and observes all writes.
            assert store.sample_count() == 20
            assert all(not shard._pending for shard in store.shards)

    def test_flush_rows_threshold_triggers_send(self):
        with ShardedMetricStore(
            n_shards=2, backend="processes", flush_rows=8
        ) as store:
            _fill(store, n_servers=4, n_windows=5)
            # 2 rows/shard/window with an 8-row threshold: the buffer
            # must have been shipped at least once before any query.
            assert all(shard._pending_rows < 8 for shard in store.shards)
            assert store.sample_count() == 20

    def test_facade_flush_is_explicit_barrier(self):
        with ShardedMetricStore(
            n_shards=2, backend="processes", flush_rows=10_000
        ) as store:
            _fill(store, n_servers=4, n_windows=2)
            store.flush()
            assert all(not shard._pending for shard in store.shards)
            assert store.sample_count() == 8

    def test_deferred_ingest_error_surfaces_on_next_query(self):
        """A bad ingest command fails in the child; the error is
        delivered on the next RPC instead of being dropped."""
        with ShardedMetricStore(n_shards=2, backend="processes") as store:
            worker = store.shards[0]
            empty = np.array([], dtype=np.int64)
            # values non-empty but windows empty: the child's
            # record_columns calls windows.max() and raises.
            worker.record_columns("P", "dc", "cpu", empty, empty, np.ones(1))
            with pytest.raises(ValueError):
                worker.sample_count()
            # The worker survives its own error and keeps serving.
            assert worker.sample_count() >= 0

    def test_interner_replication_names_queries(self):
        """Workers learn names via deltas, never via shared memory."""
        with ShardedMetricStore(n_shards=2, backend="processes") as store:
            _fill(store, n_servers=5, n_windows=3)
            per_server = store.per_server_values("P", "cpu")
            assert set(per_server) == {f"s{i:02d}" for i in range(5)}
            # Late-interned servers reach workers with later messages.
            late = store.intern_servers(["late0", "late1"])
            store.record_batch("P", "dc", "cpu", 7, late, np.ones(2))
            assert "late0" in store.per_server_values("P", "cpu")
            _windows, names, _matrix = store.pool_matrix("P", "cpu")
            assert "late1" in names

    def test_record_fast_and_record_many_ride_the_buffer(self):
        from repro.telemetry.counters import CounterSample

        with ShardedMetricStore(n_shards=2, backend="processes") as store:
            store.record_fast(0, "a", "P", "dc", "cpu", 1.0)
            store.record_fast(0, "b", "P", "dc", "cpu", 2.0)
            store.record_many(
                [
                    CounterSample(
                        window_index=1,
                        server_id="a",
                        pool_id="P",
                        datacenter_id="dc",
                        counter="cpu",
                        value=3.0,
                    )
                ]
            )
            assert store.sample_count() == 3
            sums = store.pool_window_aggregate("P", "cpu", reducer="sum")
            np.testing.assert_array_equal(sums.windows, [0, 1])
            np.testing.assert_array_equal(sums.values, [3.0, 3.0])


class TestCloseFailoverRace:
    """Group close() racing a member retirement must not double-close.

    The regression: ``ReplicatedShardClient._retire`` closes a failed
    member on whichever thread observed the failure, *outside* the
    membership lock, while a concurrent group ``close()`` walks the
    same member list — before ``ShardClient.close`` became a
    lock-guarded test-and-set, both paths could run the full teardown
    (pipeline abort + ``stop`` + transport close) twice on one member.
    These hammers lose the race on purpose, many times in a row.
    """

    ROUNDS = 15

    def test_close_racing_failover_never_double_closes(self, shard_server):
        import threading

        from repro.telemetry.store import ServerInterner
        from repro.telemetry.workers import ReplicatedShardClient

        failures = []
        for _ in range(self.ROUNDS):
            client = ReplicatedShardClient(
                0,
                ServerInterner(),
                [shard_server.address, shard_server.address],
                pipeline_depth=2,
                io_timeout=10,
            )
            primary = client._live_members()[0]
            barrier = threading.Barrier(3)

            def crash_then_query(client=client, primary=primary, barrier=barrier):
                barrier.wait()
                # The failure the failover path reacts to: the primary's
                # socket dies under it mid-session.
                primary._transport.close()
                try:
                    client.call("sample_count")
                except RuntimeError:
                    pass  # closed under us or every member gone: clean ends
                except Exception as error:  # pragma: no cover - regression
                    failures.append(error)

            def close_group(client=client, barrier=barrier):
                barrier.wait()
                try:
                    client.close()
                except Exception as error:  # pragma: no cover - regression
                    failures.append(error)

            threads = [
                threading.Thread(target=crash_then_query),
                threading.Thread(target=close_group),
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            for thread in threads:
                thread.join(30)
            assert not any(thread.is_alive() for thread in threads)
            client.close()  # idempotent once the dust settles
            assert client.closed
        assert failures == []

    def test_many_threads_close_one_session(self, shard_server):
        """N concurrent close() calls collapse to exactly one teardown."""
        import threading

        from repro.telemetry.store import ServerInterner
        from repro.telemetry.workers import TcpShardClient

        for _ in range(self.ROUNDS):
            client = TcpShardClient(
                0, ServerInterner(), shard_server.address, pipeline_depth=2
            )
            errors = []
            barrier = threading.Barrier(5)

            def close_it(client=client, barrier=barrier, errors=errors):
                barrier.wait()
                try:
                    client.close()
                except Exception as error:  # pragma: no cover - regression
                    errors.append(error)

            threads = [threading.Thread(target=close_it) for _ in range(4)]
            for thread in threads:
                thread.start()
            barrier.wait()
            for thread in threads:
                thread.join(30)
            assert not any(thread.is_alive() for thread in threads)
            assert errors == []
            assert client.closed
