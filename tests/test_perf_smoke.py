"""Tier-1 performance guard for the columnar simulation engine.

A 200-server x 200-window run must finish far inside a generous
wall-clock budget; the seed per-sample path took multiple seconds at
this scale, the columnar engine takes well under one.  The budget is
deliberately loose (slow CI machines) — it exists to catch order-of-
magnitude regressions such as an accidental fall-back to per-sample
ingestion, not to benchmark.
"""

import time

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.telemetry.counters import Counter

#: Generous wall-clock ceiling (seconds) for the 200x200 run.
BUDGET_SECONDS = 15.0


def test_simulation_throughput_smoke():
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=200, seed=37
    )
    sim = Simulator(
        fleet,
        seed=37,
        config=SimulationConfig(apply_availability_policies=False),
    )
    started = time.perf_counter()
    sim.run(200)
    elapsed = time.perf_counter() - started
    assert elapsed < BUDGET_SECONDS, (
        f"200x200 simulation took {elapsed:.2f}s; the columnar engine "
        f"should finish far inside {BUDGET_SECONDS:.0f}s"
    )
    # All four default counters for every server-window made it in.
    assert sim.store.sample_count() == 200 * 200 * 4
    rps = sim.store.pool_window_aggregate("B", Counter.REQUESTS.value)
    assert len(rps) == 200


def test_query_layer_smoke():
    """Aggregate + per-server queries stay fast on a wide store."""
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=300, seed=39
    )
    sim = Simulator(
        fleet, seed=39, config=SimulationConfig(apply_availability_policies=False)
    )
    sim.run(100)
    store = sim.store
    started = time.perf_counter()
    for _ in range(50):
        store.pool_window_aggregate("B", Counter.PROCESSOR_UTILIZATION.value)
        store.pool_window_aggregate(
            "B", Counter.REQUESTS.value, reducer="sum"
        )
    per_server = store.per_server_values("B", Counter.PROCESSOR_UTILIZATION.value)
    elapsed = time.perf_counter() - started
    assert len(per_server) == 300
    assert elapsed < 5.0
