"""Tests for the RSM optimizer (§II-B2, Fig 7)."""

import numpy as np
import pytest

from repro.cluster.builders import build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.core.rsm import ResponseSurfaceOptimizer
from repro.core.slo import QoSRequirement
from repro.experiments import SimulatorRunner


def _make_sim(seed=43, servers=40):
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=servers, seed=seed
    )
    return Simulator(
        fleet, seed=seed, config=SimulationConfig(apply_availability_policies=False)
    )


@pytest.fixture(scope="module")
def rsm_result():
    sim = _make_sim()
    sim.run(720)  # a day of history before experimenting
    optimizer = ResponseSurfaceOptimizer(
        store=sim.store,
        pool_id="B",
        datacenter_id="DC1",
        qos=QoSRequirement(latency_p95_ms=33.0),
        runner=SimulatorRunner(sim),
        iteration_windows=240,
        reduction_step=0.12,
        max_iterations=8,
    )
    return optimizer.optimize(initial_servers=40)


class TestRsmLoop:
    def test_recommends_fewer_servers(self, rsm_result):
        assert rsm_result.recommended_servers < rsm_result.initial_servers
        assert rsm_result.reduction_fraction > 0.1

    def test_measured_latency_within_qos(self, rsm_result):
        final = rsm_result.iterations[-1]
        # Either the loop stopped on a forecast (last measurement OK),
        # or it rolled back after a violation.
        ok_iterations = [i for i in rsm_result.iterations if not i.qos_violated]
        assert ok_iterations, "RSM never had a QoS-compliant stage"
        assert all(
            i.measured_latency_p95_ms <= rsm_result.qos.latency_p95_ms
            for i in ok_iterations
        )
        del final

    def test_latency_rises_across_iterations(self, rsm_result):
        measured = [
            i.measured_latency_p95_ms
            for i in rsm_result.iterations
            if not i.qos_violated
        ]
        if len(measured) >= 2:
            assert measured[-1] > measured[0] - 0.5

    def test_partition_models_fitted(self, rsm_result):
        assert len(rsm_result.partition_models) >= 1

    def test_describe_lists_iterations(self, rsm_result):
        text = rsm_result.describe()
        assert "RSM for pool B" in text
        assert "iter 0" in text

    def test_recommended_meets_forecast(self, rsm_result):
        # The worst-case partition forecast at the recommendation must
        # respect the QoS limit (that is what the loop guarantees).
        forecasts = [
            m.forecast_latency(rsm_result.recommended_servers)
            for m in rsm_result.partition_models
        ]
        assert max(forecasts) <= rsm_result.qos.latency_p95_ms + 1.0


class TestRsmGuards:
    def test_invalid_parameters_rejected(self):
        sim = _make_sim(seed=44, servers=10)
        runner = SimulatorRunner(sim)
        qos = QoSRequirement(latency_p95_ms=33.0)
        with pytest.raises(ValueError):
            ResponseSurfaceOptimizer(
                sim.store, "B", "DC1", qos, runner, reduction_step=0.9
            )
        with pytest.raises(ValueError):
            ResponseSurfaceOptimizer(
                sim.store, "B", "DC1", qos, runner, iteration_windows=5
            )

    def test_initial_below_min_rejected(self):
        sim = _make_sim(seed=45, servers=10)
        optimizer = ResponseSurfaceOptimizer(
            sim.store, "B", "DC1", QoSRequirement(latency_p95_ms=33.0),
            SimulatorRunner(sim), min_servers=5,
        )
        with pytest.raises(ValueError):
            optimizer.optimize(initial_servers=3)

    def test_tight_qos_stops_early(self):
        # A QoS limit already violated at the starting size: the loop
        # must roll back immediately and keep the initial count.
        sim = _make_sim(seed=46, servers=12)
        sim.run(360)
        optimizer = ResponseSurfaceOptimizer(
            sim.store, "B", "DC1", QoSRequirement(latency_p95_ms=5.0),
            SimulatorRunner(sim), iteration_windows=120, max_iterations=3,
        )
        result = optimizer.optimize(initial_servers=12)
        assert result.recommended_servers == 12
        assert result.iterations[0].qos_violated
