"""Tests for the demand forecaster."""

import numpy as np
import pytest

from repro.core.forecasting import (
    DemandForecast,
    SeasonalTrendForecaster,
    forecast_pool_demand,
)
from repro.telemetry.series import TimeSeries
from repro.workload.diurnal import DiurnalPattern, WINDOWS_PER_DAY


def _history(days=4, growth=0.0, noise=0.03, seed=0, base=1000.0):
    pattern = DiurnalPattern(
        base_rps=base, weekly_growth=growth, weekend_factor=1.0
    )
    rng = np.random.default_rng(seed)
    n = days * WINDOWS_PER_DAY
    values = pattern.demand_series(n)
    if noise:
        values = values * rng.normal(1.0, noise, n)
    return TimeSeries(np.arange(n), values)


class TestFit:
    def test_requires_two_seasons(self):
        short = TimeSeries(np.arange(100), np.ones(100))
        with pytest.raises(ValueError):
            SeasonalTrendForecaster().fit(short)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SeasonalTrendForecaster(season_windows=1)
        with pytest.raises(ValueError):
            SeasonalTrendForecaster(band_quantile=0.4)

    def test_unfitted_forecast_raises(self):
        with pytest.raises(RuntimeError):
            SeasonalTrendForecaster().forecast(10)


class TestForecastAccuracy:
    def test_seasonal_shape_recovered(self):
        history = _history(days=4)
        forecaster = SeasonalTrendForecaster().fit(history)
        forecast = forecaster.forecast(WINDOWS_PER_DAY)
        truth = DiurnalPattern(
            base_rps=1000.0, weekend_factor=1.0
        ).demand_series(WINDOWS_PER_DAY, start_window=4 * WINDOWS_PER_DAY)
        rel_err = np.abs(forecast.expected - truth) / truth
        assert float(rel_err.mean()) < 0.05

    def test_trend_extrapolated(self):
        history = _history(days=14, growth=0.10)  # +10 % per week
        forecaster = SeasonalTrendForecaster().fit(history)
        ahead = forecaster.forecast(WINDOWS_PER_DAY)
        # Demand a day past 2 weeks of 10 %/week growth exceeds the
        # historical mean visibly.
        assert ahead.expected.mean() > history.values[:WINDOWS_PER_DAY].mean() * 1.1

    def test_upper_band_covers_most_actuals(self):
        history = _history(days=4, noise=0.05)
        forecaster = SeasonalTrendForecaster(band_quantile=0.95).fit(history)
        forecast = forecaster.forecast(WINDOWS_PER_DAY)
        future = _history(days=5, noise=0.05, seed=99).slice_windows(
            4 * WINDOWS_PER_DAY, 5 * WINDOWS_PER_DAY
        )
        covered = float((future.values <= forecast.upper).mean())
        assert covered > 0.85

    def test_upper_band_above_expected(self):
        history = _history(days=3, noise=0.05)
        forecast = SeasonalTrendForecaster().fit(history).forecast(100)
        assert np.all(forecast.upper >= forecast.expected * 0.99)

    def test_horizon_validation(self):
        forecaster = SeasonalTrendForecaster().fit(_history(days=2))
        with pytest.raises(ValueError):
            forecaster.forecast(0)

    def test_peaks(self):
        forecaster = SeasonalTrendForecaster().fit(_history(days=3))
        forecast = forecaster.forecast(WINDOWS_PER_DAY)
        assert forecast.peak_upper() >= forecast.peak_expected()
        assert len(forecast) == WINDOWS_PER_DAY
        assert forecast.windows[0] == 3 * WINDOWS_PER_DAY


class TestStoreIntegration:
    def test_forecast_pool_demand(self, pool_b_store):
        forecast = forecast_pool_demand(
            pool_b_store, "B", "DC1", horizon_windows=WINDOWS_PER_DAY
        )
        history = pool_b_store.pool_window_aggregate(
            "B", "Requests/sec", datacenter_id="DC1", reducer="sum"
        )
        # Forecast magnitude matches the diurnal range of history.
        assert history.values.min() * 0.8 <= forecast.expected.mean() <= history.values.max() * 1.2
        # Peak lands near the historical daily peak (no trend in fixture).
        assert forecast.peak_expected() == pytest.approx(
            history.values.max(), rel=0.15
        )
