"""Tests for headroom right-sizing (§III-B1, Table IV mechanics)."""

import numpy as np
import pytest

from repro.core.headroom import HeadroomPlanner
from repro.core.slo import QoSRequirement


class TestSingleDcPlanning:
    def test_overprovisioned_pool_shrinks(self, pool_b_store):
        planner = HeadroomPlanner(pool_b_store, survive_dc_loss=False)
        plan = planner.plan_pool("B", QoSRequirement(latency_p95_ms=36.0))
        assert plan.efficiency_savings > 0.15
        assert plan.planned_servers < plan.current_servers

    def test_latency_impact_bounded(self, pool_b_store):
        planner = HeadroomPlanner(pool_b_store, survive_dc_loss=False)
        plan = planner.plan_pool("B", QoSRequirement(latency_p95_ms=36.0))
        # Moving to the SLO boundary costs a few ms, not tens.
        assert 0.0 <= plan.latency_impact_ms < 10.0

    def test_tight_slo_means_no_savings(self, pool_b_store):
        planner = HeadroomPlanner(pool_b_store, survive_dc_loss=False)
        # SLO equal to the current operating latency: nothing to reclaim.
        plan = planner.plan_pool("B", QoSRequirement(latency_p95_ms=31.0))
        loose = planner.plan_pool("B", QoSRequirement(latency_p95_ms=40.0))
        assert plan.efficiency_savings <= loose.efficiency_savings

    def test_never_plans_above_current(self, pool_b_store):
        planner = HeadroomPlanner(pool_b_store, survive_dc_loss=False)
        plan = planner.plan_pool("B", QoSRequirement(latency_p95_ms=31.5))
        for d in plan.deployments:
            assert d.planned_servers <= d.current_servers

    def test_describe(self, pool_b_store):
        planner = HeadroomPlanner(pool_b_store, survive_dc_loss=False)
        plan = planner.plan_pool("B", QoSRequirement(latency_p95_ms=36.0))
        assert "pool B" in plan.describe()

    def test_unknown_pool_rejected(self, pool_b_store):
        with pytest.raises(KeyError):
            HeadroomPlanner(pool_b_store).plan_pool(
                "Z", QoSRequirement(latency_p95_ms=10.0)
            )


class TestDisasterRecovery:
    def test_dr_requires_more_than_normal(self, multi_dc_sim):
        store = multi_dc_sim.store
        qos = QoSRequirement(latency_p95_ms=65.0)
        with_dr = HeadroomPlanner(store, survive_dc_loss=True).plan_pool("D", qos)
        without = HeadroomPlanner(store, survive_dc_loss=False).plan_pool("D", qos)
        assert with_dr.planned_servers >= without.planned_servers
        assert any(
            d.required_with_dr >= d.required_normal for d in with_dr.deployments
        )

    def test_binding_scenario_reported(self, multi_dc_sim):
        qos = QoSRequirement(latency_p95_ms=65.0)
        plan = HeadroomPlanner(
            multi_dc_sim.store, survive_dc_loss=True
        ).plan_pool("D", qos)
        assert plan.binding_scenario.startswith(("normal", "loss of"))

    def test_dr_still_saves_capacity(self, multi_dc_sim):
        # Even preserving survive-one-DC headroom, the overprovisioned
        # pool yields savings (the paper's central claim).
        qos = QoSRequirement(latency_p95_ms=65.0)
        plan = HeadroomPlanner(
            multi_dc_sim.store, survive_dc_loss=True
        ).plan_pool("D", qos)
        assert plan.efficiency_savings > 0.05


class TestPlanAll:
    def test_plan_all_covers_registered_pools(self, pool_b_store):
        planner = HeadroomPlanner(pool_b_store, survive_dc_loss=False)
        plans = planner.plan_all({"B": QoSRequirement(latency_p95_ms=36.0)})
        assert set(plans) == {"B"}

    def test_safety_margin_monotone(self, pool_b_store):
        qos = QoSRequirement(latency_p95_ms=36.0)
        tight = HeadroomPlanner(
            pool_b_store, safety_margin=0.7, survive_dc_loss=False
        ).plan_pool("B", qos)
        loose = HeadroomPlanner(
            pool_b_store, safety_margin=1.0, survive_dc_loss=False
        ).plan_pool("B", qos)
        assert tight.planned_servers >= loose.planned_servers

    def test_invalid_parameters_rejected(self, pool_b_store):
        with pytest.raises(ValueError):
            HeadroomPlanner(pool_b_store, safety_margin=0.0)
        with pytest.raises(ValueError):
            HeadroomPlanner(pool_b_store, demand_percentile=10.0)
