"""Unit tests for repro.stats.decision_tree."""

import numpy as np
import pytest

from repro.stats.decision_tree import DecisionTreeClassifier


def _separable_data(rng, n=400):
    """Two clusters separable on feature 0."""
    x0 = rng.normal(0.0, 1.0, (n // 2, 3))
    x1 = rng.normal(0.0, 1.0, (n // 2, 3))
    x1[:, 0] += 6.0
    x = np.vstack([x0, x1])
    y = np.r_[np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)]
    return x, y


class TestFit:
    def test_separable_data_perfectly_classified(self, rng):
        x, y = _separable_data(rng)
        tree = DecisionTreeClassifier(min_leaf_size=10).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.99

    def test_split_count_positive(self, rng):
        x, y = _separable_data(rng)
        tree = DecisionTreeClassifier(min_leaf_size=10).fit(x, y)
        assert tree.count_splits() >= 1

    def test_pure_labels_yield_leaf_root(self):
        x = np.random.default_rng(0).normal(size=(50, 2))
        y = np.ones(50, dtype=int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.count_splits() == 0
        assert tree.predict_proba(x)[0] == 1.0

    def test_min_leaf_size_respected(self, rng):
        x, y = _separable_data(rng, n=100)
        tree = DecisionTreeClassifier(min_leaf_size=40).fit(x, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree.root)) >= 40

    def test_max_depth_respected(self, rng):
        x = rng.normal(size=(300, 4))
        y = (x[:, 0] + x[:, 1] * x[:, 2] > 0).astype(int)
        tree = DecisionTreeClassifier(min_leaf_size=2, max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_non_binary_labels_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[1.0], [2.0]], [0, 2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[1.0], [2.0]], [0])


class TestPredict:
    def test_proba_in_unit_interval(self, rng):
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(min_leaf_size=20).fit(x, y)
        probs = tree.predict_proba(x)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_wrong_feature_count_raises(self, rng):
        x, y = _separable_data(rng, n=100)
        tree = DecisionTreeClassifier(min_leaf_size=5).fit(x, y)
        with pytest.raises(ValueError):
            tree.predict([[1.0]])

    def test_single_row_prediction(self, rng):
        x, y = _separable_data(rng, n=100)
        tree = DecisionTreeClassifier(min_leaf_size=5).fit(x, y)
        assert tree.predict_proba([10.0, 0.0, 0.0]).shape == (1,)


class TestFeatureImportances:
    def test_informative_feature_dominates(self, rng):
        x, y = _separable_data(rng)
        tree = DecisionTreeClassifier(min_leaf_size=10).fit(x, y)
        importances = tree.feature_importances()
        assert importances.argmax() == 0
        assert importances.sum() == pytest.approx(1.0)

    def test_no_split_gives_zero_importances(self):
        x = np.zeros((20, 2))
        y = np.ones(20, dtype=int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.feature_importances().sum() == 0.0
