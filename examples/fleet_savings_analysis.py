"""Fleet-wide capacity study (§III-B): utilization, availability, savings.

Simulates the full nine-datacenter Table I fleet for two days with each
pool's real-world maintenance habits (rolling deployments, off-peak
repurposing), then reproduces the paper's fleet analyses:

* global CPU utilization and the Fig 12 / Fig 13 distributions;
* the Fig 14 availability distribution and per-pool availability;
* the Table IV savings summary combining headroom and availability
  savings, rendered next to the paper's published numbers.

Run:
    python examples/fleet_savings_analysis.py
"""

from repro import CapacityPlanner, QoSRequirement, Simulator, build_paper_fleet
from repro.cluster.simulation import SimulationConfig
from repro.analysis.savings import summarize_savings
from repro.analysis.utilization import study_fleet_utilization
from repro.cluster.service import service_catalog
from repro.core.availability import study_fleet_availability


def main() -> None:
    fleet = build_paper_fleet(servers_per_deployment=6, seed=29)
    print(
        f"simulating {fleet.total_servers()} servers across "
        f"{len(fleet.datacenters)} datacenters for 2 days ..."
    )
    simulator = Simulator(
        fleet, seed=29,
        config=SimulationConfig(record_request_classes=True),
    )
    simulator.run_days(2)
    store = simulator.store

    # ------------------------------------------------------------------
    # Utilization (Figs 12-13, §I headline stats)
    # ------------------------------------------------------------------
    utilization = study_fleet_utilization(store)
    print("\n=== utilization (paper vs measured) ===")
    print(f"global mean CPU:            23%    vs  {utilization.global_mean_utilization:.0f}%")
    print(
        "servers below 30% CPU:      80%    vs  "
        f"{utilization.fraction_of_servers_below(30.0):.0%}"
    )
    print(
        "samples above 40% CPU:      <0.1%  vs  "
        f"{utilization.fraction_of_samples_above(40.0):.2%}"
    )
    print(
        "servers spiking over 40%:   15%    vs  "
        f"{utilization.fraction_of_servers_spiking_above(40.0):.0%}"
    )
    print(
        "theoretical efficiency:     ~4x    vs  "
        f"{utilization.theoretical_efficiency_factor:.1f}x"
    )

    # ------------------------------------------------------------------
    # Availability (Figs 14-15, §III-B2)
    # ------------------------------------------------------------------
    availability = study_fleet_availability(store)
    print("\n=== availability ===")
    print(f"fleet mean availability: {availability.overall_mean:.1%} (paper: 83%)")
    print(
        f"infrastructure overhead: {availability.infrastructure_overhead:.1%} "
        "(paper: ~2%)"
    )
    for report in availability.reports:
        print(f"  {report.describe()}")

    # ------------------------------------------------------------------
    # Savings (Table IV)
    # ------------------------------------------------------------------
    qos = {
        name: QoSRequirement(latency_p95_ms=profile.slo_latency_ms)
        for name, profile in service_catalog().items()
    }
    plan = CapacityPlanner(store, qos, survive_dc_loss=True).plan()
    print()
    print(summarize_savings(plan).render_comparison())


if __name__ == "__main__":
    main()
