"""Forward-looking and counterfactual capacity planning.

The methodology exists so that capacity questions can be answered
*offline*, before money is spent or a change is deployed (§II: "It
needs to enable offline 'what-if' regression analysis of changes to
determine their capacity and QoS consequences").  This example:

1. simulates three weeks of a growing service (+6 % demand per week);
2. forecasts the next week of demand (seasonal shape + trend + an
   empirical 95 % band);
3. answers what-if questions against the fitted black-box models:
   demand growth, SLO changes, a costlier software version, and a
   datacenter retirement.

Run:
    python examples/whatif_planning.py
"""

from dataclasses import replace

import numpy as np

from repro import QoSRequirement, Simulator, build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig
from repro.core.forecasting import SeasonalTrendForecaster
from repro.core.whatif import Scenario, WhatIfAnalyzer
from repro.telemetry.counters import Counter
from repro.workload.diurnal import WINDOWS_PER_DAY


def main() -> None:
    fleet = build_single_pool_fleet(
        "D", n_datacenters=3, servers_per_deployment=14, seed=23
    )
    # The service is growing 6 % per week.
    for deployment in fleet.deployments():
        deployment.pattern = replace(deployment.pattern, weekly_growth=0.06)

    simulator = Simulator(
        fleet, seed=23,
        config=SimulationConfig(apply_availability_policies=False),
    )
    print("simulating 21 days of a growing service ...")
    simulator.run_days(21)
    store = simulator.store

    # ------------------------------------------------------------------
    # Forecast next week's demand for one datacenter.
    # ------------------------------------------------------------------
    history = store.pool_window_aggregate(
        "D", Counter.REQUESTS.value, datacenter_id="DC1", reducer="sum"
    )
    forecaster = SeasonalTrendForecaster(band_quantile=0.95).fit(history)
    forecast = forecaster.forecast(7 * WINDOWS_PER_DAY)
    print(
        f"\nDC1 demand forecast for next week: "
        f"peak {forecast.peak_expected():,.0f} RPS expected, "
        f"{forecast.peak_upper():,.0f} RPS at the 95% band "
        f"(historical peak {history.values.max():,.0f} RPS)"
    )

    # ------------------------------------------------------------------
    # What-if analysis against the fitted response curves.
    # ------------------------------------------------------------------
    qos = QoSRequirement(latency_p95_ms=58.0)
    analyzer = WhatIfAnalyzer(store, "D", qos, rng=np.random.default_rng(1))
    growth_factor = forecast.peak_upper() / history.values.max()
    scenarios = [
        Scenario(label="next week's growth (forecast band)", demand_factor=growth_factor),
        Scenario(label="demand doubles", demand_factor=2.0),
        Scenario(label="loosen SLO by 5 ms", latency_slo_delta_ms=5.0),
        Scenario(label="tighten SLO by 5 ms", latency_slo_delta_ms=-5.0),
        Scenario(label="deploy 1.2x-cost version", cpu_cost_factor=1.2),
        Scenario(label="retire DC3", retired_datacenters=("DC3",)),
    ]
    print(f"\nwhat-if analysis (SLO p95 <= {qos.latency_p95_ms:g} ms):")
    for outcome in analyzer.evaluate(scenarios):
        print(f"  {outcome.describe()}")
    print(
        "\nNote the §II trade-off: loosening the latency SLO buys a "
        "measurable capacity reduction, computed entirely offline."
    )


if __name__ == "__main__":
    main()
