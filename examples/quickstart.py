"""Quickstart: right-size a small geo-distributed service.

Builds the Table I micro-service fleet across the paper's nine
datacenters, simulates diurnal production traffic, then runs the
black-box capacity planner over the recorded telemetry and prints the
per-pool savings table (the paper's Table IV layout).

The simulation knobs mirror the CLI (``python -m repro simulate``):

Run:
    python examples/quickstart.py
    python examples/quickstart.py --windows 240 --engine batch
    python examples/quickstart.py --shards 4 --workers 2 --block-windows 32
    python examples/quickstart.py --shards 4 --shard-backend processes

    # distributed: `python -m repro shard-server` in another terminal,
    # then point the shards at it (docs/DISTRIBUTED.md):
    python examples/quickstart.py --shard-backend tcp \
        --shard-addrs 127.0.0.1:9400,127.0.0.1:9400
"""

import argparse

from repro import (
    CapacityPlanner,
    MetricStore,
    QoSRequirement,
    ShardedMetricStore,
    Simulator,
    build_paper_fleet,
)
from repro.cluster.builders import PAPER_DATACENTERS
from repro.cluster.service import service_catalog
from repro.cluster.simulation import ENGINES, SimulationConfig


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--windows", type=positive_int, default=1440,
        help="windows to simulate (720 = 1 day; default 2 days)",
    )
    parser.add_argument(
        "--engine", default="batch", choices=ENGINES,
        help="simulation engine (batch = vectorized columnar default)",
    )
    parser.add_argument(
        "--block-windows", type=positive_int, default=1,
        help="cross-window block size for the batch engine",
    )
    parser.add_argument(
        "--shards", type=positive_int, default=1,
        help="metric store shard count (1 = single store)",
    )
    parser.add_argument(
        "--workers", type=positive_int, default=1,
        help="thread fan-out for the 'threads' shard backend",
    )
    parser.add_argument(
        "--shard-backend", default=None,
        choices=("serial", "threads", "processes", "tcp"),
        help="where shards live (default: serial, or threads when "
             "--workers > 1; 'processes' runs one worker per shard, "
             "'tcp' one shard-server session per --shard-addrs entry)",
    )
    parser.add_argument(
        "--shard-addrs", default=None, metavar="HOST:PORT,...",
        help="shard-server addresses for --shard-backend tcp "
             "(one session = one shard)",
    )
    parser.add_argument(
        "--pipeline-depth", type=nonnegative_int, default=4, metavar="N",
        help="ingest frames queued/in flight per remote shard "
             "(0 = synchronous sends)",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    if args.shard_addrs is not None and args.shard_backend != "tcp":
        parser.error("--shard-addrs requires --shard-backend tcp")
    if args.shard_backend == "tcp" and args.shard_addrs is None:
        parser.error("--shard-backend tcp requires --shard-addrs")
    return args


def main() -> None:
    args = parse_args()
    # Every pool of Table I across all nine regions.  Nine matters:
    # the survive-one-datacenter headroom is then ~1/8 of demand, as in
    # the paper's fleet; with very few regions the disaster-recovery
    # constraint alone would consume all the reclaimable capacity.
    fleet = build_paper_fleet(
        servers_per_deployment=6,
        datacenters=PAPER_DATACENTERS,
        seed=args.seed,
    )
    shard_addrs = (
        [addr.strip() for addr in args.shard_addrs.split(",") if addr.strip()]
        if args.shard_addrs is not None
        else None
    )
    store = (
        ShardedMetricStore(
            n_shards=args.shards,
            workers=args.workers,
            backend=args.shard_backend,
            shard_addrs=shard_addrs,
            pipeline_depth=args.pipeline_depth,
        )
        if args.shards > 1 or args.shard_backend is not None
        else MetricStore()
    )
    sharded = isinstance(store, ShardedMetricStore)
    print(
        f"simulating {fleet.total_servers()} servers, "
        f"{len(fleet.pool_ids)} micro-services, "
        f"{len(fleet.datacenters)} datacenters "
        f"({args.windows} windows, engine={args.engine!r}, "
        f"block={args.block_windows}, "
        f"shards={store.n_shards if sharded else 1}, "
        f"backend={store.backend if sharded else '-'}) ..."
    )
    simulator = Simulator(
        fleet,
        store=store,
        seed=args.seed,
        config=SimulationConfig(
            record_request_classes=True,
            engine=args.engine,
            block_windows=args.block_windows,
        ),
    )
    simulator.run(args.windows)

    # Each pool's QoS contract comes from its owning team; here we use
    # the catalogue's SLOs.
    qos = {
        name: QoSRequirement(latency_p95_ms=profile.slo_latency_ms)
        for name, profile in service_catalog().items()
    }

    planner = CapacityPlanner(simulator.store, qos, survive_dc_loss=True)
    plan = planner.plan()
    print()
    print(plan.render_savings_table())
    print()
    print(
        f"fleet-wide: {plan.mean_total_savings:.0%} of servers reclaimable "
        f"at an average +{plan.mean_latency_impact_ms:.1f} ms latency cost"
    )

    # Every number above came from telemetry alone: the planner never
    # saw the simulator's ground-truth cost or latency parameters.
    for summary in plan.summaries:
        print(f"  {summary.validation.describe().splitlines()[0]}")

    # Reap worker processes when --shard-backend processes was used.
    if isinstance(store, ShardedMetricStore):
        store.close()


if __name__ == "__main__":
    main()
