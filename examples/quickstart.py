"""Quickstart: right-size a small geo-distributed service.

Builds the Table I micro-service fleet across three datacenters,
simulates two days of diurnal production traffic, then runs the
black-box capacity planner over the recorded telemetry and prints the
per-pool savings table (the paper's Table IV layout).

Run:
    python examples/quickstart.py
"""

from repro import CapacityPlanner, QoSRequirement, Simulator, build_paper_fleet
from repro.cluster.simulation import SimulationConfig
from repro.cluster.builders import PAPER_DATACENTERS
from repro.cluster.service import service_catalog


def main() -> None:
    # Every pool of Table I across all nine regions.  Nine matters:
    # the survive-one-datacenter headroom is then ~1/8 of demand, as in
    # the paper's fleet; with very few regions the disaster-recovery
    # constraint alone would consume all the reclaimable capacity.
    fleet = build_paper_fleet(
        servers_per_deployment=6,
        datacenters=PAPER_DATACENTERS,
        seed=7,
    )
    print(
        f"simulating {fleet.total_servers()} servers, "
        f"{len(fleet.pool_ids)} micro-services, "
        f"{len(fleet.datacenters)} datacenters ..."
    )
    simulator = Simulator(
        fleet, seed=7,
        config=SimulationConfig(record_request_classes=True),
    )
    simulator.run_days(2)

    # Each pool's QoS contract comes from its owning team; here we use
    # the catalogue's SLOs.
    qos = {
        name: QoSRequirement(latency_p95_ms=profile.slo_latency_ms)
        for name, profile in service_catalog().items()
    }

    planner = CapacityPlanner(simulator.store, qos, survive_dc_loss=True)
    plan = planner.plan()
    print()
    print(plan.render_savings_table())
    print()
    print(
        f"fleet-wide: {plan.mean_total_savings:.0%} of servers reclaimable "
        f"at an average +{plan.mean_latency_impact_ms:.1f} ms latency cost"
    )

    # Every number above came from telemetry alone: the planner never
    # saw the simulator's ground-truth cost or latency parameters.
    for summary in plan.summaries:
        print(f"  {summary.validation.describe().splitlines()[0]}")


if __name__ == "__main__":
    main()
