"""Capacity planning with natural experiments (§II-B1, Figs 4-6).

Simulates a 4-datacenter deployment of the query-modification service,
injects a two-hour outage of one datacenter (its traffic fails over to
the survivors, raising their load by ~50 %), then:

1. detects the surge from workload telemetry alone;
2. fits CPU and latency models on the *calm* days around the event;
3. scores those models on the event windows — the paper's evidence
   that unplanned events validate (and extend) the black-box model
   without risky deliberate experiments.

Run:
    python examples/natural_experiment.py
"""

from repro import DatacenterOutage, Simulator, build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig
from repro.core.natural_experiments import (
    analyze_natural_experiment,
    detect_surge_events,
)
from repro.workload.diurnal import WINDOWS_PER_DAY


def main() -> None:
    fleet = build_single_pool_fleet(
        "B", n_datacenters=4, servers_per_deployment=16, seed=19
    )
    simulator = Simulator(
        fleet,
        seed=19,
        config=SimulationConfig(apply_availability_policies=False),
    )

    # A two-hour outage of DC1 early on day 3 — which is the evening
    # peak in the surviving US datacenters, so failover pushes them
    # beyond any load level seen on calm days.
    outage = DatacenterOutage(
        "DC1", start_window=2 * WINDOWS_PER_DAY + 30, duration_windows=60
    )
    simulator.add_outage(outage)
    print("simulating 4 days with a 2-hour DC1 outage on day 3 ...")
    simulator.run(4 * WINDOWS_PER_DAY)

    store = simulator.store
    survivors = ["DC2", "DC3", "DC4"]
    print("\ndetected surge events on surviving datacenters:")
    for dc in survivors:
        for event in detect_surge_events(store, "B", dc, threshold=0.2):
            print(" ", event.describe())

    # Analyze the strongest event in detail (the Fig 5 check).
    events = [
        e
        for dc in survivors
        for e in detect_surge_events(store, "B", dc, threshold=0.2)
    ]
    if not events:
        raise SystemExit("no events detected — increase outage size")
    event = max(events, key=lambda e: e.peak_increase_fraction)
    report = analyze_natural_experiment(store, event)
    print(f"\nanalysis of {event.pool_id}@{event.datacenter_id}:")
    print(f"  CPU model:      {report.resource_model.model.describe()}")
    print(f"  latency model:  {report.qos_model.model.describe()}")
    print(
        f"  event pushed load to {report.load_extension_factor:.2f}x the calm "
        f"maximum ({report.max_event_rps_per_server:.0f} RPS/server)"
    )
    print(
        f"  CPU prediction error through the event: "
        f"{report.cpu_relative_error:.1%} "
        f"({report.cpu_mean_abs_error_pct:.2f} pts absolute)"
    )
    print(
        f"  latency prediction error through the event: "
        f"{report.latency_relative_error:.1%} "
        f"({report.latency_mean_abs_error_ms:.2f} ms absolute)"
    )
    verdict = "HELD" if report.model_held(tolerance=0.15) else "SHIFTED"
    print(f"  verdict: calm-weather model {verdict} through the event")


if __name__ == "__main__":
    main()
