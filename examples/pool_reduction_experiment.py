"""The §III-A server-reduction experiment, end to end.

Reproduces the paper's pool B evaluation protocol:

1. observe a 50-server pool for five weekdays of production traffic;
2. train the linear CPU model and quadratic latency model on that
   telemetry alone;
3. remove 30 % of the servers (while production traffic also grows,
   as it did during the paper's experiment);
4. compare the frozen forecasts against what the smaller pool measured.

The paper forecast 31.5 ms and measured 30.9 ms; expect the same
~1 ms-class agreement here.

Run:
    python examples/pool_reduction_experiment.py
"""

from repro import Simulator, build_single_pool_fleet
from repro.cluster.simulation import SimulationConfig
from repro.experiments import run_reduction_experiment
from repro.workload.diurnal import WINDOWS_PER_DAY


def main() -> None:
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=50, seed=2
    )
    simulator = Simulator(
        fleet,
        seed=2,
        config=SimulationConfig(apply_availability_policies=False),
    )

    print("running the pool B reduction experiment (5 baseline days, 2 reduced) ...")
    report = run_reduction_experiment(
        simulator,
        "B",
        "DC1",
        reduction_fraction=0.30,
        baseline_windows=5 * WINDOWS_PER_DAY,
        reduced_windows=2 * WINDOWS_PER_DAY,
        demand_scale_during_reduction=1.10,  # traffic grew mid-experiment
    )
    print()
    print(report.describe())
    print()
    print("paper reference (Table II / Figs 8-9):")
    print("  CPU model:     y = 0.028*RPS + 1.37  (R^2 = 0.984)")
    print("  latency model: y = 4.03e-5*RPS^2 - 0.031*RPS + 36.68  (R^2 = 0.79)")
    print("  forecast 31.5 ms vs measured 30.9 ms")


if __name__ == "__main__":
    main()
