"""Offline regression analysis (Steps 3-4, the Fig 16 case study).

A team ships a fix for a memory leak.  Before it reaches production,
the change is validated offline:

1. fit a synthetic workload model on recorded production traffic and
   verify its fidelity (Step 3);
2. drive two identical offline pools — baseline build vs changed
   build — with the same seeded workload ramp (Step 4);
3. compare the fitted response curves.

As in the paper, the gate confirms the leak is fixed but catches a
latency regression that only appears under load — the defect that
previously reached production.

Run:
    python examples/regression_gate.py
"""

import numpy as np

from repro import Simulator, build_single_pool_fleet
from repro.cluster.deployment import (
    leak_fix_with_latency_regression,
    leaky_version,
)
from repro.cluster.simulation import SimulationConfig
from repro.core.regression_analysis import RegressionGate, profile_response
from repro.telemetry.counters import Counter
from repro.workload.synthetic import RampPlan, SyntheticWorkloadModel, compare_traces
from repro.workload.diurnal import DiurnalPattern
from repro.workload.request_mix import RequestMix
from repro.workload.traces import generate_trace

COUNTERS = (
    Counter.REQUESTS.value,
    Counter.PROCESSOR_UTILIZATION.value,
    Counter.LATENCY_P95.value,
    Counter.AVAILABILITY.value,
    Counter.MEMORY_WORKING_SET.value,
)


class _RampPattern:
    """Adapter: drive a deployment with fixed ramp levels."""

    def __init__(self, plan: RampPlan) -> None:
        self.plan = plan

    def demand_at(self, window: int) -> float:
        step = min(window, self.plan.total_windows - 1)
        return self.plan.level_at(step)


def run_ramp(version, label: str, ramp: RampPlan, seed: int = 3):
    """Stress one offline pool pinned to one software build."""
    fleet = build_single_pool_fleet(
        "B", n_datacenters=1, servers_per_deployment=12, seed=seed
    )
    sim = Simulator(
        fleet,
        seed=seed,
        config=SimulationConfig(
            counters=COUNTERS, apply_availability_policies=False
        ),
    )
    sim.set_version("B", version)
    sim.fleet.deployment("B", "DC1").pattern = _RampPattern(ramp)
    sim.run(ramp.total_windows)
    return profile_response(sim.store, "B", label, datacenter_id="DC1")


def main() -> None:
    # ------------------------------------------------------------------
    # Step 3: synthetic workload with verified fidelity.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(11)
    mix = RequestMix.single("query", cpu_cost=0.028)
    production = generate_trace(DiurnalPattern(base_rps=3_000.0), mix, 1440, rng)
    model = SyntheticWorkloadModel().fit(production)
    synthetic = model.generate(1440, rng)
    fidelity = compare_traces(production, synthetic)
    print(fidelity.describe())
    if not fidelity.passed:
        raise SystemExit("synthetic workload failed fidelity; fix Step 3 first")

    # ------------------------------------------------------------------
    # Step 4: identical ramps against baseline and change.
    # ------------------------------------------------------------------
    ramp = RampPlan.linear(600.0, 6_000.0, n_levels=10, windows_per_level=12)
    print("\nramping baseline (leaky v1) and change (leak-fix v2) ...")
    baseline = run_ramp(leaky_version(), "v1-leaky", ramp)
    change = run_ramp(
        leak_fix_with_latency_regression(queue_multiplier=2.5), "v2-leakfix", ramp
    )

    gate = RegressionGate(latency_tolerance_ms=2.0, cpu_tolerance_pct=1.0)
    report = gate.compare(baseline, change)
    print()
    print(report.describe())
    print()
    print("latency delta across the ramp (change - baseline):")
    for rps, delta in zip(report.workload_grid[::10], report.latency_delta_ms[::10]):
        print(f"  {rps:7.0f} RPS/server: {delta:+6.2f} ms")
    impact = report.capacity_impact_fraction(latency_limit_ms=36.0)
    print(f"\ncapacity impact at the 36 ms SLO: {impact:+.0%}")
    print(
        "verdict:",
        "DEPLOY" if report.passed else "BLOCK — regression must be fixed first",
    )


if __name__ == "__main__":
    main()
