"""repro — black-box capacity-headroom right-sizing for global online services.

A full reproduction of Verbowski et al., "Right-sizing Server Capacity
Headroom for Global Online Services" (ICDCS 2018): the four-step
black-box capacity-planning methodology, a simulated geo-distributed
micro-service fleet standing in for the paper's proprietary 100K-server
substrate, baseline planners, and the analyses behind every table and
figure in the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import (
        CapacityPlanner, QoSRequirement, Simulator, build_paper_fleet,
    )

    fleet = build_paper_fleet(servers_per_deployment=8)
    simulator = Simulator(fleet, seed=7)
    simulator.run_days(2)

    qos = {p: QoSRequirement(latency_p95_ms=60.0) for p in fleet.pool_ids}
    planner = CapacityPlanner(simulator.store, qos)
    print(planner.plan().render_savings_table())
"""

__version__ = "0.1.0"

from repro.cluster import (
    Datacenter,
    DatacenterOutage,
    Fleet,
    HardwareSpec,
    LatencyModel,
    MicroServiceProfile,
    PoolDeployment,
    Server,
    ServerPool,
    SimulationConfig,
    Simulator,
    SoftwareVersion,
    build_paper_fleet,
    build_single_pool_fleet,
    service_catalog,
)
from repro.core import (
    CapacityPlanner,
    FleetPlan,
    GroupingModel,
    HeadroomPlan,
    HeadroomPlanner,
    MetricValidator,
    QoSRequirement,
    RegressionGate,
    ResponseSurfaceOptimizer,
    SLO,
    analyze_natural_experiment,
    detect_surge_events,
    identify_server_groups,
)
from repro.telemetry import Counter, MetricStore, ShardedMetricStore, TimeSeries
from repro.workload import (
    DiurnalPattern,
    RampPlan,
    RequestClass,
    RequestMix,
    SyntheticWorkloadModel,
    WorkloadTrace,
)

__all__ = [
    "__version__",
    "Datacenter",
    "DatacenterOutage",
    "Fleet",
    "HardwareSpec",
    "LatencyModel",
    "MicroServiceProfile",
    "PoolDeployment",
    "Server",
    "ServerPool",
    "SimulationConfig",
    "Simulator",
    "SoftwareVersion",
    "build_paper_fleet",
    "build_single_pool_fleet",
    "service_catalog",
    "CapacityPlanner",
    "FleetPlan",
    "GroupingModel",
    "HeadroomPlan",
    "HeadroomPlanner",
    "MetricValidator",
    "QoSRequirement",
    "RegressionGate",
    "ResponseSurfaceOptimizer",
    "SLO",
    "analyze_natural_experiment",
    "detect_surge_events",
    "identify_server_groups",
    "Counter",
    "MetricStore",
    "ShardedMetricStore",
    "TimeSeries",
    "DiurnalPattern",
    "RampPlan",
    "RequestClass",
    "RequestMix",
    "SyntheticWorkloadModel",
    "WorkloadTrace",
]
