"""Command-line interface: ``python -m repro <command>``.

Wraps the common workflows so the library is usable without writing
Python:

* ``simulate`` — build a canonical fleet, run it for N days, and write
  the telemetry archive;
* ``shard-server`` — host remote telemetry shards over TCP for
  ``simulate --shard-backend tcp`` (see ``docs/DISTRIBUTED.md``);
* ``plan`` — run the capacity planner over an archive and print the
  Table IV savings summary;
* ``validate`` — run Step-1 metric validation over an archive;
* ``availability`` — the §III-B2 availability study over an archive.

Archives are the CSV format of :mod:`repro.telemetry.export` (gzip
when the filename ends in ``.gz``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cluster.builders import PAPER_DATACENTERS, build_paper_fleet
from repro.cluster.service import service_catalog
from repro.cluster.simulation import DEFAULT_COUNTERS, SimulationConfig, Simulator
from repro.telemetry.sharding import ShardedMetricStore
from repro.telemetry.store import MetricStore
from repro.telemetry.workers import ShardServer
from repro.core.availability import study_fleet_availability
from repro.core.metric_validation import MetricValidator
from repro.core.planner import CapacityPlanner
from repro.core.slo import QoSRequirement
from repro.telemetry.export import export_store, import_store


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (clean error, exit 2)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type for flags that must be >= 0 (clean error, exit 2)."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _check_distributed_flags(args: argparse.Namespace):
    """Validate the tcp/addrs flag combination before any work starts.

    Returns ``(shard_addrs, replica_addrs, fault_spec)`` (each ``None``
    when not used) or raises ``ValueError`` with a usage-style message
    — the flag mistakes below must fail in argument validation, not as
    a late crash deep in fleet build or store construction.
    """
    shard_addrs = (
        [addr.strip() for addr in args.shard_addrs.split(",") if addr.strip()]
        if args.shard_addrs is not None
        else None
    )
    if shard_addrs is not None and args.shard_backend != "tcp":
        raise ValueError("--shard-addrs requires --shard-backend tcp")
    if args.shard_backend == "tcp":
        if not shard_addrs:
            raise ValueError(
                "--shard-backend tcp requires --shard-addrs "
                "(comma-separated host:port list, one per shard)"
            )
        from repro.telemetry.transport import parse_address

        for address in shard_addrs:
            parse_address(address)  # ValueError names the bad input
    replica_addrs = None
    if args.replica_addrs is not None:
        if args.shard_backend != "tcp":
            raise ValueError("--replica-addrs requires --shard-backend tcp")
        # Keep empty entries: "a,,b" replicates shards 0 and 2 only.
        replica_addrs = [
            addr.strip() or None for addr in args.replica_addrs.split(",")
        ]
        if len(replica_addrs) != len(shard_addrs):
            raise ValueError(
                f"--replica-addrs must list one address per shard "
                f"(got {len(replica_addrs)}, have {len(shard_addrs)} "
                f"shards); leave an entry empty to skip a shard"
            )
        from repro.telemetry.transport import parse_address

        for address in replica_addrs:
            if address is not None:
                parse_address(address)
    fault_spec = None
    if args.inject_fault is not None:
        if args.shard_backend != "tcp":
            raise ValueError("--inject-fault requires --shard-backend tcp")
        from repro.telemetry.faultinject import parse_fault_spec

        fault_spec = parse_fault_spec(args.inject_fault)
    return shard_addrs, replica_addrs, fault_spec


def _check_stream_flags(args: argparse.Namespace) -> None:
    """Validate the streaming flag combination (raises ``ValueError``)."""
    if not args.stream:
        for flag, value in (
            ("--max-windows", args.max_windows),
            ("--retain-windows", args.retain_windows),
            ("--alarm-pool", args.alarm_pool),
            ("--inject-regression", args.inject_regression),
            ("--query-listen", args.query_listen),
        ):
            if value is not None:
                raise ValueError(f"{flag} requires --stream")
        return
    if args.inject_regression is not None and args.alarm_pool is None:
        raise ValueError("--inject-regression requires --alarm-pool")
    if args.query_listen is not None:
        from repro.telemetry.transport import parse_address

        parse_address(args.query_listen)  # ValueError names the bad input


def _run_stream(args: argparse.Namespace, simulator) -> tuple:
    """Run the streaming clock loop; returns (samples, windows run)."""
    from repro.cluster.streaming import StreamingSimulator
    from repro.core.regression_analysis import OnlineRegressionAlarm

    alarm = (
        OnlineRegressionAlarm(args.alarm_pool)
        if args.alarm_pool is not None
        else None
    )
    stream = StreamingSimulator(
        simulator, retain_windows=args.retain_windows, alarm=alarm,
        query_listen=args.query_listen,
    )
    if stream.query_address is not None:
        # stdout + flush: the scripting interface for --query-listen
        # port 0, mirroring the shard-server line.
        print(f"query server listening on {stream.query_address}", flush=True)
    if args.inject_regression is not None:
        from repro.cluster.deployment import leak_fix_with_latency_regression

        stream.schedule(
            args.inject_regression,
            lambda: simulator.set_version(
                args.alarm_pool,
                leak_fix_with_latency_regression(queue_multiplier=3.0),
            ),
        )
        print(
            f"regression injection armed: pool {args.alarm_pool} at "
            f"window {args.inject_regression}",
            file=sys.stderr,
        )
    try:
        report = stream.run(max_windows=args.max_windows)
    finally:
        stream.close()
    for alert in report.alerts:
        print(
            f"ALERT {alert.name}: pool {alert.pool_id} at window "
            f"{alert.window} — {alert.detail}",
            file=sys.stderr,
        )
    store = simulator.store
    samples = store.sample_count()
    if args.retain_windows is not None:
        print(
            f"streamed {report.blocks} block(s); retention kept "
            f"{store.hot_sample_count()} of {samples} samples hot "
            f"({report.evicted_rows} evicted to spill)",
            file=sys.stderr,
        )
    if report.stopped_by == "interrupt":
        print("stream interrupted; finishing up", file=sys.stderr)
    return samples, report.windows


def _cmd_simulate(args: argparse.Namespace) -> int:
    import time

    try:
        shard_addrs, replica_addrs, fault_spec = _check_distributed_flags(args)
        _check_stream_flags(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    datacenters = PAPER_DATACENTERS[: args.datacenters]
    fleet = build_paper_fleet(
        servers_per_deployment=args.servers,
        datacenters=datacenters,
        pools=args.pools.split(",") if args.pools else None,
        seed=args.seed,
    )
    n_windows = (
        args.windows
        if args.windows is not None
        else int(round(args.days * 720))
    )
    try:
        if args.shards > 1 or args.shard_backend is not None:
            store = ShardedMetricStore(
                n_shards=args.shards,
                workers=args.workers,
                backend=args.shard_backend,
                shard_addrs=shard_addrs,
                connect_timeout=args.connect_timeout,
                pipeline_depth=args.pipeline_depth,
                io_timeout=args.io_timeout,
                replica_addrs=replica_addrs,
            )
            store_desc = (
                f"{store.n_shards}-shard store "
                f"(backend={store.backend!r}, {store.workers} worker(s))"
            )
            if shard_addrs is not None:
                store_desc += f" at {','.join(shard_addrs)}"
            if replica_addrs is not None:
                replicated = sum(1 for addr in replica_addrs if addr)
                store_desc += f", {replicated} shard(s) replicated"
        else:
            store = MetricStore()
            store_desc = "single store"
        if fault_spec is not None:
            from repro.telemetry.faultinject import inject_store

            inject_store(store, fault_spec)
            print(
                f"fault injection armed: {fault_spec.mode!r} on shard "
                f"{fault_spec.shard} after {fault_spec.after_frames} "
                f"frame(s)",
                file=sys.stderr,
            )
    except (ValueError, ConnectionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    horizon = (
        f"until --max-windows={args.max_windows} or Ctrl-C"
        if args.stream and args.max_windows is not None
        else "until Ctrl-C" if args.stream
        else f"for {n_windows} window(s)"
    )
    print(
        f"simulating {fleet.total_servers()} servers "
        f"({len(fleet.pool_ids)} pools x {len(datacenters)} DCs) "
        f"{horizon} with the {args.engine!r} engine "
        f"(block={args.block_windows}) into a {store_desc} ...",
        file=sys.stderr,
    )
    try:
        try:
            counters = None
            if args.alarm_pool is not None:
                if args.alarm_pool not in fleet.pool_ids:
                    raise ValueError(
                        f"--alarm-pool {args.alarm_pool!r} is not in the "
                        f"fleet (pools: {','.join(fleet.pool_ids)})"
                    )
                # The alarm's profiles also need the working-set
                # counter, which the default recorded set omits.
                from repro.cluster.streaming import ALARM_COUNTERS

                counters = tuple(
                    dict.fromkeys(DEFAULT_COUNTERS + ALARM_COUNTERS)
                )
            config = SimulationConfig(
                record_request_classes=True,
                engine=args.engine,
                block_windows=args.block_windows,
                **({"counters": counters} if counters is not None else {}),
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        simulator = Simulator(fleet, store=store, seed=args.seed, config=config)
        started = time.perf_counter()
        if args.stream:
            samples, n_windows = _run_stream(args, simulator)
        else:
            simulator.run(n_windows)
            samples = simulator.store.sample_count()
        elapsed = time.perf_counter() - started
        rate = n_windows / elapsed if elapsed > 0 else float("inf")
        print(
            f"simulated {n_windows} windows ({samples} samples) in {elapsed:.2f}s "
            f"= {rate:.1f} windows/s, {samples / max(elapsed, 1e-9):,.0f} samples/s",
            file=sys.stderr,
        )
        if args.output is not None:
            rows = export_store(simulator.store, args.output)
            print(f"wrote {rows} samples to {args.output}", file=sys.stderr)
    except RuntimeError as error:
        # A remote shard died mid-run (e.g. a killed shard-server):
        # the store raises a RuntimeError naming the shard and address.
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        # Worker processes (shard-backend=processes) must be reaped even
        # when the run fails; close() is a no-op for in-process stores.
        if isinstance(store, ShardedMetricStore):
            store.close()
    return 0


def _cmd_shard_server(args: argparse.Namespace) -> int:
    try:
        server = ShardServer(args.listen, max_sessions=args.max_sessions)
        server.start()
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # The bound address goes to stdout (flushed) so scripts can listen
    # on port 0 and parse the ephemeral port the OS picked.
    print(f"shard-server listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shard-server interrupted; shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _print_query_status(status: dict) -> None:
    progress = ""
    if "windows" in status:
        progress = (
            f" windows={status['windows']} blocks={status['blocks']}"
        )
    print(
        f"sealed_through={status['sealed_through']} "
        f"max_window={status['max_window']} "
        f"evicted_before={status['evicted_before']} "
        f"hot_samples={status['hot_samples']} "
        f"samples={status['samples']} "
        f"pools={','.join(status['pools'])}{progress}"
    )
    for alert in status["alerts"]:
        print(
            f"ALERT {alert['name']}: pool {alert['pool_id']} at window "
            f"{alert['window']} — {alert['detail']}"
        )


def _print_aggregate_tail(answer: dict, since: int, last: int) -> int:
    """Print sealed windows newer than ``since``; returns the new high."""
    windows, values = answer["windows"], answer["values"]
    start = 0
    if since >= 0:
        import numpy as np

        start = int(np.searchsorted(windows, since + 1))
    if last is not None and windows.size - start > last:
        start = windows.size - last
    for window, value in zip(windows[start:], values[start:]):
        print(f"{int(window):>10d}  {float(value)!r}")
    return int(windows[-1]) if windows.size else since


def _cmd_query(args: argparse.Namespace) -> int:
    import time

    from repro.telemetry.query_server import QueryClient
    from repro.telemetry.transport import parse_address

    if (args.pool is None) != (args.counter is None):
        print("error: --pool and --counter must be given together",
              file=sys.stderr)
        return 2
    try:
        parse_address(args.address)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        client = QueryClient(
            args.address,
            connect_timeout=args.connect_timeout,
            io_timeout=args.io_timeout,
        )
    except ConnectionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        sealed = -1
        while True:
            if args.pool is None:
                _print_query_status(client.status())
            else:
                answer = client.aggregate(
                    args.pool, args.counter,
                    datacenter_id=args.dc, reducer=args.reducer,
                )
                if answer["sealed_through"] > sealed or not args.watch:
                    # One-shot prints the newest --last windows; watch
                    # clamps only the initial backlog, then prints every
                    # newly sealed window.
                    clamp = (
                        args.last if (not args.watch or sealed < 0) else None
                    )
                    sealed = _print_aggregate_tail(
                        answer, sealed if args.watch else -1, clamp
                    )
                    print(
                        f"# sealed through window "
                        f"{answer['sealed_through']}",
                        file=sys.stderr,
                    )
            if not args.watch:
                return 0
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except RuntimeError as error:
        # The server died or hung mid-session: the named, bounded
        # connection error — same contract as a shard session.
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _qos_for_pools(store) -> dict:
    catalog = service_catalog()
    qos = {}
    for pool_id in store.pools:
        if pool_id in catalog:
            qos[pool_id] = QoSRequirement(
                latency_p95_ms=catalog[pool_id].slo_latency_ms
            )
    return qos


def _cmd_plan(args: argparse.Namespace) -> int:
    store = import_store(args.archive)
    qos = _qos_for_pools(store)
    if args.slo_ms is not None:
        qos = {pool: QoSRequirement(latency_p95_ms=args.slo_ms) for pool in store.pools}
    if not qos:
        print("no pools with known QoS in the archive; pass --slo-ms", file=sys.stderr)
        return 2
    planner = CapacityPlanner(
        store, qos, survive_dc_loss=not args.no_dr
    )
    plan = planner.plan()
    print(plan.render_savings_table())
    print(
        f"\nfleet-wide: {plan.mean_total_savings:.0%} total savings at "
        f"+{plan.mean_latency_impact_ms:.1f} ms average peak-latency impact"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    store = import_store(args.archive)
    validator = MetricValidator(store, min_r2=args.min_r2)
    failures = 0
    for report in validator.validate_all():
        print(report.describe())
        if not report.status.is_valid:
            failures += 1
    return 1 if failures else 0


def _cmd_availability(args: argparse.Namespace) -> int:
    store = import_store(args.archive)
    study = study_fleet_availability(store)
    print(f"fleet mean availability: {study.overall_mean:.1%}")
    print(f"infrastructure overhead: {study.infrastructure_overhead:.1%}")
    for report in study.reports:
        print(f"  {report.describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Black-box capacity-headroom right-sizing "
        "(reproduction of Verbowski et al., ICDCS 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="simulate a fleet and archive telemetry")
    simulate.add_argument(
        "output", nargs="?", default=None,
        help="archive path (.csv or .csv.gz); omit to only print throughput "
             "(large-fleet benchmarking runs)",
    )
    simulate.add_argument("--days", type=float, default=2.0)
    simulate.add_argument(
        "--windows", type=int, default=None,
        help="simulate exactly N windows (overrides --days; 720 windows = 1 day)",
    )
    simulate.add_argument("--servers", type=int, default=6, help="servers per deployment")
    simulate.add_argument(
        "--datacenters", type=int, default=9, choices=range(1, 10), metavar="1-9"
    )
    simulate.add_argument("--pools", default=None, help="comma-separated pool letters")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--engine", default="batch", choices=("batch", "per-sample", "legacy"),
        help="simulation engine (batch = vectorized columnar default)",
    )
    simulate.add_argument(
        "--shards", type=_positive_int, default=1, metavar="N",
        help="hash-partition the metric store across N shards "
             "(1 = single store; sharded telemetry is bit-identical)",
    )
    simulate.add_argument(
        "--workers", type=_positive_int, default=1, metavar="N",
        help="ingest fan-out width for the 'threads' shard backend "
             "(>1 dispatches shard appends through a thread pool; "
             "no-op with a single shard)",
    )
    simulate.add_argument(
        "--shard-backend", default=None,
        choices=("serial", "threads", "processes", "tcp"),
        help="where shards live: 'serial' (in-process, caller thread), "
             "'threads' (in-process, thread-pool fan-out), 'processes' "
             "(one worker process per shard, pickled-ndarray ingest + "
             "query RPC), or 'tcp' (one shard-server session per address "
             "in --shard-addrs — same protocol over the network); "
             "default infers serial/threads from --workers",
    )
    simulate.add_argument(
        "--shard-addrs", default=None, metavar="HOST:PORT,...",
        help="comma-separated shard-server addresses for "
             "--shard-backend tcp (one session = one shard; repeating an "
             "address hosts several shards on that server); overrides "
             "--shards with the address count",
    )
    simulate.add_argument(
        "--replica-addrs", default=None, metavar="HOST:PORT,...",
        help="comma-separated replica shard-server addresses aligned "
             "with --shard-addrs (one per shard; leave an entry empty "
             "to skip that shard).  Every ingest frame is mirrored to "
             "the replica, and a dead or hung primary fails over to it "
             "with bit-identical results (--shard-backend tcp only)",
    )
    simulate.add_argument(
        "--inject-fault", default=None, metavar="MODE[:AFTER]",
        help="debugging aid: break shard 0's primary connection on "
             "purpose after AFTER outgoing frames (default 0).  MODE "
             "is delay, drop, hang, corrupt or kill; with "
             "--replica-addrs the run completes via failover, without "
             "it the run fails with the named per-shard error "
             "(--shard-backend tcp only)",
    )
    simulate.add_argument(
        "--connect-timeout", type=float, default=5.0, metavar="SECONDS",
        help="how long each tcp shard connection retries a refused dial "
             "before failing (--shard-backend tcp only)",
    )
    simulate.add_argument(
        "--pipeline-depth", type=_nonnegative_int, default=4, metavar="N",
        help="remote shard backends (processes/tcp): how many coalesced "
             "ingest frames may be queued or in flight per shard before "
             "the next flush blocks (0 = synchronous sends, no "
             "pipelining); queries still observe all prior ingest",
    )
    simulate.add_argument(
        "--io-timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-operation socket timeout for tcp shards: a send or "
             "recv stuck this long fails with a clear per-shard error "
             "instead of hanging on a hung-but-alive server (0 = no "
             "timeout; --shard-backend tcp only)",
    )
    simulate.add_argument(
        "--block-windows", type=_positive_int, default=1, metavar="W",
        help="emit W windows per (pool, counter) block to amortize "
             "per-window overhead (batch engine only; 1 = per-window)",
    )
    simulate.add_argument(
        "--stream", action="store_true",
        help="streaming mode: run an unbounded clock loop emitting one "
             "block per tick (until --max-windows or Ctrl-C), sealing "
             "incremental aggregates and applying rolling retention "
             "after each block; telemetry is bit-identical to a batch "
             "run of the same horizon",
    )
    simulate.add_argument(
        "--max-windows", type=_positive_int, default=None, metavar="N",
        help="streaming mode: stop after N windows (default: stream "
             "until interrupted; --windows/--days are batch-mode flags "
             "and are ignored with --stream)",
    )
    simulate.add_argument(
        "--retain-windows", type=_positive_int, default=None, metavar="N",
        help="streaming mode: keep only the trailing N windows hot in "
             "memory, evicting older rows to the spill archive "
             "(queries and the final export still answer exactly; "
             "default: retain everything)",
    )
    simulate.add_argument(
        "--alarm-pool", default=None, metavar="POOL",
        help="streaming mode: run the online regression alarm on this "
             "pool — the regression gate re-fitted once per block "
             "against a baseline profiled from the start of the run; "
             "a named alert is printed the block it fires",
    )
    simulate.add_argument(
        "--inject-regression", type=_nonnegative_int, default=None,
        metavar="WINDOW",
        help="debugging aid for the online alarm: deploy a latency-"
             "regressing software version to --alarm-pool at the given "
             "window, mid-stream (requires --stream and --alarm-pool)",
    )
    simulate.add_argument(
        "--query-listen", default=None, metavar="HOST:PORT",
        help="streaming mode: serve live operator queries (repro query) "
             "on this address while the stream runs; answers are as of "
             "the sealed watermark, bit-identical to a batch run of the "
             "sealed horizon.  Port 0 picks an ephemeral port (printed "
             "to stdout); bind only to loopback or a trusted network — "
             "the protocol is pickle-based (docs/DISTRIBUTED.md)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    shard_server = sub.add_parser(
        "shard-server",
        help="host remote telemetry shards over TCP (one session = one shard)",
    )
    shard_server.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="listen address; port 0 picks an ephemeral port (the bound "
             "address is printed to stdout).  Bind only to loopback or a "
             "trusted network — the protocol is pickle-based "
             "(docs/DISTRIBUTED.md)",
    )
    shard_server.add_argument(
        "--max-sessions", type=_positive_int, default=None, metavar="N",
        help="exit after N sessions have been accepted and have ended "
             "(default: serve until interrupted)",
    )
    shard_server.set_defaults(func=_cmd_shard_server)

    query = sub.add_parser(
        "query",
        help="query a running simulate --stream --query-listen server",
    )
    query.add_argument(
        "address", metavar="HOST:PORT",
        help="the stream's --query-listen address (printed on its "
             "stdout when listening on port 0)",
    )
    query.add_argument(
        "--pool", default=None, metavar="POOL",
        help="pool to aggregate (with --counter); omit both to print "
             "run status instead: watermark, retention, progress, and "
             "any latched alarm alerts",
    )
    query.add_argument(
        "--counter", default=None, metavar="NAME",
        help="counter to aggregate (with --pool)",
    )
    query.add_argument(
        "--dc", default=None, metavar="DC",
        help="restrict the aggregate to one datacenter (default: all)",
    )
    query.add_argument(
        "--reducer", default="mean", choices=("mean", "sum", "max", "count"),
        help="per-window reduction over the pool's servers",
    )
    query.add_argument(
        "--last", type=_positive_int, default=10, metavar="N",
        help="print only the newest N sealed windows of a one-shot "
             "aggregate (watch mode prints every newly sealed window)",
    )
    query.add_argument(
        "--watch", action="store_true",
        help="poll until Ctrl-C, printing newly sealed windows (or the "
             "status line) every --interval seconds",
    )
    query.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="watch-mode poll interval",
    )
    query.add_argument(
        "--connect-timeout", type=float, default=5.0, metavar="SECONDS",
        help="how long to retry a refused dial before failing",
    )
    query.add_argument(
        "--io-timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-operation socket timeout: a query stuck this long "
             "fails with a clear error instead of hanging on a "
             "hung-but-alive server (0 = no timeout)",
    )
    query.set_defaults(func=_cmd_query)

    plan = sub.add_parser("plan", help="right-size pools from an archive")
    plan.add_argument("archive")
    plan.add_argument("--slo-ms", type=float, default=None,
                      help="override every pool's latency SLO")
    plan.add_argument("--no-dr", action="store_true",
                      help="drop the survive-one-DC constraint")
    plan.set_defaults(func=_cmd_plan)

    validate = sub.add_parser("validate", help="Step-1 metric validation")
    validate.add_argument("archive")
    validate.add_argument("--min-r2", type=float, default=0.85)
    validate.set_defaults(func=_cmd_validate)

    availability = sub.add_parser("availability", help="availability study")
    availability.add_argument("archive")
    availability.set_defaults(func=_cmd_availability)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
