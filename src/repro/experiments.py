"""Experiment orchestration: the §III-A evaluation protocol.

Glue between the black-box planner (:mod:`repro.core`) and the
simulated production system (:mod:`repro.cluster`):

* :class:`SimulatorRunner` adapts a :class:`~repro.cluster.Simulator`
  to the :class:`~repro.core.rsm.ExperimentRunner` protocol;
* :func:`run_reduction_experiment` reproduces the pool B / pool D
  server-reduction experiments end to end — observe a baseline stage,
  train the linear CPU and quadratic latency models, shrink the pool,
  and compare forecasts against the measured second stage (Tables
  II-III, Figs 8-11).

The planner side remains black-box: models are fitted exclusively on
telemetry from the baseline stage, and forecasts are frozen before the
reduction stage is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cluster.simulation import Simulator
from repro.core.curves import (
    WorkloadQoSModel,
    WorkloadResourceModel,
    fit_pool_response,
)
from repro.core.report import render_table
from repro.telemetry.counters import Counter
from repro.telemetry.series import TimeSeries


class SimulatorRunner:
    """Adapts the simulator to the RSM ExperimentRunner protocol."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    def run_reduction(
        self,
        pool_id: str,
        datacenter_id: str,
        n_servers: int,
        duration_windows: int,
    ) -> Tuple[int, int]:
        """Resize a deployment, let time pass, return the window range."""
        self.simulator.resize_pool(pool_id, datacenter_id, n_servers)
        start = self.simulator.current_window
        self.simulator.run(duration_windows)
        return start, self.simulator.current_window


@dataclass(frozen=True)
class StageStats:
    """Per-stage workload percentiles (the Tables II/III columns)."""

    label: str
    n_servers: int
    rps_per_server_p50: float
    rps_per_server_p75: float
    rps_per_server_p95: float
    cpu_mean_at_p95_load: float
    latency_mean_at_p95_load: float


@dataclass(frozen=True)
class ReductionExperimentReport:
    """Everything the §III-A experiments report for one pool."""

    pool_id: str
    datacenter_id: str
    baseline: StageStats
    reduced: StageStats
    resource_model: WorkloadResourceModel
    qos_model: WorkloadQoSModel
    forecast_cpu_pct: float
    measured_cpu_pct: float
    forecast_latency_ms: float
    measured_latency_ms: float
    reduction_fraction: float

    @property
    def cpu_forecast_error_pct(self) -> float:
        return abs(self.forecast_cpu_pct - self.measured_cpu_pct)

    @property
    def latency_forecast_error_ms(self) -> float:
        return abs(self.forecast_latency_ms - self.measured_latency_ms)

    @property
    def rps_increase_at_p95(self) -> float:
        """Fractional RPS/server increase at the 95th pct of load."""
        if self.baseline.rps_per_server_p95 == 0:
            return 0.0
        return (
            self.reduced.rps_per_server_p95 / self.baseline.rps_per_server_p95
            - 1.0
        )

    def render_percentile_table(self) -> str:
        """The Table II/III layout."""
        rows = []
        for stage in (self.baseline, self.reduced):
            rows.append(
                [
                    stage.label,
                    f"{stage.rps_per_server_p50:.1f}",
                    f"{stage.rps_per_server_p75:.1f}",
                    f"{stage.rps_per_server_p95:.1f}",
                ]
            )
        pct = [
            f"{(r / b - 1.0) * 100:.0f}%" if b else "-"
            for r, b in (
                (self.reduced.rps_per_server_p50, self.baseline.rps_per_server_p50),
                (self.reduced.rps_per_server_p75, self.baseline.rps_per_server_p75),
                (self.reduced.rps_per_server_p95, self.baseline.rps_per_server_p95),
            )
        ]
        rows.append(["% Change"] + pct)
        return render_table(
            ["Experiment Stage", "RPS/Server 50%", "75%", "95%"],
            rows,
            title=(
                f"Pool {self.pool_id} reduction experiment "
                f"({self.reduction_fraction:.0%} fewer servers)"
            ),
        )

    def describe(self) -> str:
        return "\n".join(
            [
                self.render_percentile_table(),
                f"CPU model: {self.resource_model.model.describe()}",
                f"Latency model: {self.qos_model.model.describe()}",
                (
                    f"forecast CPU {self.forecast_cpu_pct:.1f}% vs measured "
                    f"{self.measured_cpu_pct:.1f}% "
                    f"(err {self.cpu_forecast_error_pct:.1f} pts)"
                ),
                (
                    f"forecast p95 latency {self.forecast_latency_ms:.1f} ms vs "
                    f"measured {self.measured_latency_ms:.1f} ms "
                    f"(err {self.latency_forecast_error_ms:.1f} ms)"
                ),
            ]
        )


def _stage_stats(
    simulator: Simulator,
    pool_id: str,
    datacenter_id: str,
    start: int,
    stop: int,
    label: str,
    n_servers: int,
) -> StageStats:
    store = simulator.store
    rps = store.pool_window_aggregate(
        pool_id, Counter.REQUESTS.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    cpu = store.pool_window_aggregate(
        pool_id, Counter.PROCESSOR_UTILIZATION.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    latency = store.pool_window_aggregate(
        pool_id, Counter.LATENCY_P95.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    if rps.is_empty:
        raise ValueError("stage produced no workload telemetry")
    p50, p75, p95 = rps.percentiles([50.0, 75.0, 95.0])

    def _mean_near_p95(series: TimeSeries) -> float:
        x, y = rps.align_with(series)
        if x.size == 0:
            return float("nan")
        near = y[x >= np.percentile(x, 90.0)]
        return float(near.mean()) if near.size else float(y.mean())

    return StageStats(
        label=label,
        n_servers=n_servers,
        rps_per_server_p50=float(p50),
        rps_per_server_p75=float(p75),
        rps_per_server_p95=float(p95),
        cpu_mean_at_p95_load=_mean_near_p95(cpu),
        latency_mean_at_p95_load=_mean_near_p95(latency),
    )


def run_reduction_experiment(
    simulator: Simulator,
    pool_id: str,
    datacenter_id: str,
    reduction_fraction: float,
    baseline_windows: int,
    reduced_windows: int,
    demand_scale_during_reduction: float = 1.0,
) -> ReductionExperimentReport:
    """The §III-A protocol: observe, train, forecast, shrink, measure.

    ``demand_scale_during_reduction`` reproduces the paper's
    complication that production traffic *grew* during both experiments
    (+43 % for pool B), pushing per-server load beyond the pure
    reduction arithmetic.
    """
    if not 0.0 < reduction_fraction < 1.0:
        raise ValueError("reduction_fraction must be in (0, 1)")
    if demand_scale_during_reduction <= 0:
        raise ValueError("demand_scale_during_reduction must be positive")

    deployment = simulator.fleet.deployment(pool_id, datacenter_id)
    original_servers = deployment.pool.size

    # Stage 1: baseline observation.
    base_start = simulator.current_window
    simulator.run(baseline_windows)
    base_stop = simulator.current_window

    # Train the black-box models on stage-1 telemetry only.
    resource_model, qos_model = fit_pool_response(
        simulator.store, pool_id, datacenter_id, start=base_start, stop=base_stop
    )

    # Stage 2: shrink the pool (and optionally let demand drift up).
    reduced_servers = max(int(round(original_servers * (1.0 - reduction_fraction))), 1)
    simulator.resize_pool(pool_id, datacenter_id, reduced_servers)
    if demand_scale_during_reduction != 1.0:
        deployment.pattern = deployment.pattern.with_base(
            deployment.pattern.base_rps * demand_scale_during_reduction
        )
    red_start = simulator.current_window
    simulator.run(reduced_windows)
    red_stop = simulator.current_window

    baseline_stats = _stage_stats(
        simulator, pool_id, datacenter_id, base_start, base_stop,
        "Original Server Count", original_servers,
    )
    reduced_stats = _stage_stats(
        simulator, pool_id, datacenter_id, red_start, red_stop,
        f"{reduction_fraction:.0%} Server Reduction", reduced_servers,
    )

    # Freeze forecasts at the observed stage-2 load point.
    target_rps = reduced_stats.rps_per_server_p95
    forecast_cpu = resource_model.forecast_cpu(target_rps)
    forecast_latency = qos_model.forecast_latency(target_rps)

    return ReductionExperimentReport(
        pool_id=pool_id,
        datacenter_id=datacenter_id,
        baseline=baseline_stats,
        reduced=reduced_stats,
        resource_model=resource_model,
        qos_model=qos_model,
        forecast_cpu_pct=forecast_cpu,
        measured_cpu_pct=reduced_stats.cpu_mean_at_p95_load,
        forecast_latency_ms=forecast_latency,
        measured_latency_ms=reduced_stats.latency_mean_at_p95_load,
        reduction_fraction=reduction_fraction,
    )
