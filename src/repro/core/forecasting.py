"""Workload forecasting for forward-looking capacity plans.

Capacity planners "use this in conjunction with workload trends,
expected failure rates, and QoS business requirements to determine how
many servers are needed" (§II).  Right-sizing against *yesterday's*
demand is only half the job: the allocation must hold until the next
planning cycle, and pool resizes take "weeks or months" (§I), so the
plan must anticipate growth.

The forecaster is deliberately simple and black-box, in the spirit of
the paper's modelling philosophy ("we started by trying the simplest
techniques first"):

* a **seasonal-naive** component captures the diurnal/weekly shape —
  the expected value at a future window is the historical median at the
  same time-of-day (and optionally day-of-week);
* a **multiplicative linear trend** fitted on daily totals captures
  growth;
* residual quantiles give an empirical **uncertainty band**, so the
  planner can provision against e.g. the 95th-percentile forecast
  rather than the mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.stats.regression import LinearModel, fit_linear
from repro.telemetry.counters import Counter
from repro.telemetry.series import TimeSeries
from repro.telemetry.store import MetricStore
from repro.workload.diurnal import WINDOWS_PER_DAY, WINDOWS_PER_WEEK


@dataclass(frozen=True)
class DemandForecast:
    """A forecast of total pool demand over a future horizon."""

    start_window: int
    expected: np.ndarray
    upper: np.ndarray  # the quantile band used for provisioning
    quantile: float

    def __len__(self) -> int:
        return int(self.expected.size)

    @property
    def windows(self) -> np.ndarray:
        return np.arange(self.start_window, self.start_window + len(self))

    def peak_expected(self) -> float:
        if len(self) == 0:
            raise ValueError("empty forecast")
        return float(self.expected.max())

    def peak_upper(self) -> float:
        if len(self) == 0:
            raise ValueError("empty forecast")
        return float(self.upper.max())


class SeasonalTrendForecaster:
    """Seasonal-naive + linear-trend demand forecaster.

    Parameters
    ----------
    season_windows:
        Length of one season; defaults to a day.  Use
        ``WINDOWS_PER_WEEK`` when weekends matter and at least two weeks
        of history exist.
    band_quantile:
        The residual quantile forming the upper provisioning band.
    """

    def __init__(
        self,
        season_windows: int = WINDOWS_PER_DAY,
        band_quantile: float = 0.95,
    ) -> None:
        if season_windows < 2:
            raise ValueError("season_windows must be >= 2")
        if not 0.5 <= band_quantile < 1.0:
            raise ValueError("band_quantile must be in [0.5, 1)")
        self.season_windows = season_windows
        self.band_quantile = band_quantile
        self._profile: Optional[np.ndarray] = None
        self._trend: Optional[LinearModel] = None
        self._residual_quantile: float = 0.0
        self._history_end: int = 0
        self._mean_level: float = 0.0

    @property
    def is_fitted(self) -> bool:
        return self._profile is not None

    # ------------------------------------------------------------------
    def fit(self, history: TimeSeries) -> "SeasonalTrendForecaster":
        """Fit the seasonal profile, trend and residual band."""
        if len(history) < 2 * self.season_windows:
            raise ValueError(
                "need at least two full seasons of history "
                f"({2 * self.season_windows} windows), got {len(history)}"
            )
        windows = history.windows
        values = history.values
        phase = windows % self.season_windows

        profile = np.empty(self.season_windows, dtype=float)
        for p in range(self.season_windows):
            bucket = values[phase == p]
            profile[p] = float(np.median(bucket)) if bucket.size else np.nan
        # Fill any empty phases by interpolation over the circular profile.
        if np.isnan(profile).any():
            valid = ~np.isnan(profile)
            profile = np.interp(
                np.arange(self.season_windows),
                np.flatnonzero(valid),
                profile[valid],
                period=self.season_windows,
            )
        self._profile = profile
        self._mean_level = float(values.mean())

        # Trend on per-season means, expressed multiplicatively.
        season_index = windows // self.season_windows
        seasons = np.unique(season_index)
        if seasons.size >= 2 and self._mean_level > 0:
            season_means = np.array(
                [values[season_index == s].mean() for s in seasons], dtype=float
            )
            self._trend = fit_linear(
                seasons.astype(float), season_means / self._mean_level
            )
        else:
            self._trend = None

        fitted = self._predict_windows(windows)
        residual_ratio = np.where(fitted > 0, values / fitted, 1.0)
        self._residual_quantile = float(
            np.quantile(residual_ratio, self.band_quantile)
        )
        self._history_end = int(windows.max()) + 1
        return self

    # ------------------------------------------------------------------
    def _trend_factor(self, window) -> np.ndarray:
        if self._trend is None:
            return np.ones_like(np.asarray(window, dtype=float))
        season = np.asarray(window, dtype=float) / self.season_windows
        factor = self._trend.predict(season)
        return np.clip(factor, 0.0, None)

    def _predict_windows(self, windows) -> np.ndarray:
        assert self._profile is not None
        windows = np.asarray(windows, dtype=int)
        seasonal = self._profile[windows % self.season_windows]
        return seasonal * self._trend_factor(windows)

    def forecast(self, horizon_windows: int, start_window: Optional[int] = None) -> DemandForecast:
        """Forecast ``horizon_windows`` windows past the history."""
        if not self.is_fitted:
            raise RuntimeError("forecaster has not been fitted")
        if horizon_windows < 1:
            raise ValueError("horizon_windows must be >= 1")
        start = start_window if start_window is not None else self._history_end
        windows = np.arange(start, start + horizon_windows)
        expected = self._predict_windows(windows)
        upper = expected * self._residual_quantile
        return DemandForecast(
            start_window=start,
            expected=expected,
            upper=upper,
            quantile=self.band_quantile,
        )


def forecast_pool_demand(
    store: MetricStore,
    pool_id: str,
    datacenter_id: str,
    horizon_windows: int,
    season_windows: int = WINDOWS_PER_DAY,
    band_quantile: float = 0.95,
) -> DemandForecast:
    """Convenience: fit on a pool's recorded demand and forecast ahead."""
    history = store.pool_window_aggregate(
        pool_id, Counter.REQUESTS.value, datacenter_id=datacenter_id, reducer="sum"
    )
    forecaster = SeasonalTrendForecaster(
        season_windows=season_windows, band_quantile=band_quantile
    )
    forecaster.fit(history)
    return forecaster.forecast(horizon_windows)
