"""The CapacityPlanner facade — Steps 1-2 end to end.

Walks every pool in a metric store through metric validation,
server-group identification, headroom right-sizing and availability
analysis, and aggregates the result into the Table IV summary: per-pool
efficiency savings, QoS impact, online (availability) savings and total
savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.availability import AvailabilityReport, analyze_pool_availability
from repro.core.headroom import HeadroomPlan, HeadroomPlanner
from repro.core.metric_validation import MetricValidationReport, MetricValidator
from repro.core.report import format_ms, format_percent, render_table
from repro.core.slo import QoSRequirement
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class PoolPlanSummary:
    """One Table IV row: everything the planner decided for a pool."""

    pool_id: str
    validation: MetricValidationReport
    headroom: Optional[HeadroomPlan]
    availability: Optional[AvailabilityReport]

    @property
    def efficiency_savings(self) -> float:
        return self.headroom.efficiency_savings if self.headroom else 0.0

    @property
    def latency_impact_ms(self) -> float:
        return self.headroom.latency_impact_ms if self.headroom else 0.0

    @property
    def online_savings(self) -> float:
        return self.availability.online_savings if self.availability else 0.0

    @property
    def total_savings(self) -> float:
        """Combined savings (the paper adds the two columns)."""
        return min(self.efficiency_savings + self.online_savings, 1.0)


@dataclass(frozen=True)
class FleetPlan:
    """The full planning outcome across pools."""

    summaries: Tuple[PoolPlanSummary, ...]

    def summary_for(self, pool_id: str) -> PoolPlanSummary:
        for summary in self.summaries:
            if summary.pool_id == pool_id:
                return summary
        raise KeyError(f"no plan for pool {pool_id!r}")

    @property
    def mean_efficiency_savings(self) -> float:
        return float(np.mean([s.efficiency_savings for s in self.summaries]))

    @property
    def mean_online_savings(self) -> float:
        return float(np.mean([s.online_savings for s in self.summaries]))

    @property
    def mean_total_savings(self) -> float:
        return float(np.mean([s.total_savings for s in self.summaries]))

    @property
    def mean_latency_impact_ms(self) -> float:
        return float(np.mean([s.latency_impact_ms for s in self.summaries]))

    def render_savings_table(self) -> str:
        """Render the Table IV equivalent."""
        rows: List[List[object]] = []
        for s in self.summaries:
            rows.append(
                [
                    s.pool_id,
                    format_percent(s.efficiency_savings),
                    format_ms(s.latency_impact_ms, 0),
                    format_percent(s.online_savings),
                    format_percent(s.total_savings),
                ]
            )
        rows.append(
            [
                "Savings",
                f"({format_percent(self.mean_efficiency_savings)})",
                f"(avg. {format_ms(self.mean_latency_impact_ms, 0)})",
                f"({format_percent(self.mean_online_savings)})",
                f"({format_percent(self.mean_total_savings)})",
            ]
        )
        return render_table(
            [
                "Server Pool",
                "Efficiency Savings",
                "Latency (QoS) Impact",
                "Online Savings",
                "Total Savings",
            ],
            rows,
            title="Summary of Server Savings (Table IV equivalent)",
        )


class CapacityPlanner:
    """Facade wiring validation, headroom and availability analyses."""

    def __init__(
        self,
        store: MetricStore,
        qos_by_pool: Dict[str, QoSRequirement],
        min_r2: float = 0.85,
        safety_margin: float = 0.9,
        survive_dc_loss: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.store = store
        self.qos_by_pool = qos_by_pool
        self.validator = MetricValidator(store, min_r2=min_r2)
        self.headroom_planner = HeadroomPlanner(
            store,
            safety_margin=safety_margin,
            survive_dc_loss=survive_dc_loss,
            rng=rng,
        )

    def plan_pool(self, pool_id: str) -> PoolPlanSummary:
        """Plan one pool; pools failing metric validation get no plan."""
        if pool_id not in self.qos_by_pool:
            raise KeyError(f"no QoS requirement registered for pool {pool_id!r}")
        validation = self.validator.validate(pool_id)
        headroom: Optional[HeadroomPlan] = None
        availability: Optional[AvailabilityReport] = None
        if validation.status.is_valid:
            headroom = self.headroom_planner.plan_pool(
                pool_id, self.qos_by_pool[pool_id]
            )
        try:
            availability = analyze_pool_availability(self.store, pool_id)
        except ValueError:
            availability = None
        return PoolPlanSummary(
            pool_id=pool_id,
            validation=validation,
            headroom=headroom,
            availability=availability,
        )

    def plan(self) -> FleetPlan:
        """Plan every pool with a registered QoS requirement."""
        summaries = [
            self.plan_pool(pool_id)
            for pool_id in self.store.pools
            if pool_id in self.qos_by_pool
        ]
        if not summaries:
            raise ValueError("no pools with both telemetry and QoS requirements")
        return FleetPlan(summaries=tuple(summaries))
