"""Step 4 — offline regression analysis (§II-D, Fig 16).

"Our system uses two server pools of the same size and hardware, one
running with the change and the other without.  We precisely generate
identical workloads to each pool enabling us to detect changes with
high confidence and precision.  We make small workload increments over
time to obtain a broad set of data for latency and resource
utilization.  Finally, we compare the pool results to understand the
impact of the change."

A :class:`ResponseProfile` is the fitted (CPU, latency, memory) response
of one pool over a workload ramp; the :class:`RegressionGate` compares a
change profile against a baseline profile and issues a verdict *before*
the change reaches production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.stats.regression import LinearModel, PolynomialModel, fit_linear, fit_polynomial
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class ResponseProfile:
    """Fitted response of one pool to a ramped synthetic workload."""

    label: str
    pool_id: str
    datacenter_id: Optional[str]
    cpu_model: LinearModel
    latency_model: PolynomialModel
    memory_slope_bytes_per_window: float
    rps_range: Tuple[float, float]
    #: Raw per-level latency samples, for Fig 16-style box plots:
    #: level (rounded RPS) -> latency values.
    latency_by_level: Dict[float, np.ndarray] = field(default_factory=dict)

    def forecast_latency(self, rps_per_server: float) -> float:
        return self.latency_model.predict_scalar(rps_per_server)

    def forecast_cpu(self, rps_per_server: float) -> float:
        return self.cpu_model.predict_scalar(rps_per_server)

    @property
    def has_memory_leak(self) -> bool:
        """Working set growing steadily over the run indicates a leak."""
        return self.memory_slope_bytes_per_window > 1e5  # > 0.1 MB / window


def profile_response(
    store: MetricStore,
    pool_id: str,
    label: str,
    datacenter_id: Optional[str] = None,
    start: Optional[int] = None,
    stop: Optional[int] = None,
    n_levels: int = 12,
) -> ResponseProfile:
    """Fit a pool's response profile from ramp telemetry."""
    rps = store.pool_window_aggregate(
        pool_id, Counter.REQUESTS.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    cpu = store.pool_window_aggregate(
        pool_id, Counter.PROCESSOR_UTILIZATION.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    latency = store.pool_window_aggregate(
        pool_id, Counter.LATENCY_P95.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    x_cpu, y_cpu = rps.align_with(cpu)
    x_lat, y_lat = rps.align_with(latency)
    if x_cpu.size < 10 or x_lat.size < 10:
        raise ValueError(f"insufficient ramp telemetry for pool {pool_id!r}")

    cpu_model = fit_linear(x_cpu, y_cpu)
    latency_model = fit_polynomial(x_lat, y_lat, degree=2)

    # Memory slope: pool-mean working set vs window index.
    memory = store.pool_window_aggregate(
        pool_id, Counter.MEMORY_WORKING_SET.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    if len(memory) >= 10:
        memory_fit = fit_linear(memory.windows.astype(float), memory.values)
        memory_slope = memory_fit.slope
    else:
        memory_slope = 0.0

    # Bucket latencies by workload level for box-plot style read-outs.
    latency_by_level: Dict[float, List[float]] = {}
    if x_lat.size:
        lo, hi = float(x_lat.min()), float(x_lat.max())
        edges = np.linspace(lo, hi, n_levels + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        idx = np.clip(np.digitize(x_lat, edges) - 1, 0, n_levels - 1)
        for i, center in enumerate(centers):
            values = y_lat[idx == i]
            if values.size:
                latency_by_level[float(np.round(center, 2))] = values

    return ResponseProfile(
        label=label,
        pool_id=pool_id,
        datacenter_id=datacenter_id,
        cpu_model=cpu_model,
        latency_model=latency_model,
        memory_slope_bytes_per_window=memory_slope,
        rps_range=(float(x_lat.min()), float(x_lat.max())),
        latency_by_level={k: np.asarray(v) for k, v in latency_by_level.items()},
    )


@dataclass(frozen=True)
class RegressionReport:
    """Verdict of comparing a change against its baseline."""

    baseline: ResponseProfile
    change: ResponseProfile
    workload_grid: np.ndarray
    latency_delta_ms: np.ndarray
    cpu_delta_pct: np.ndarray
    max_latency_regression_ms: float
    max_cpu_regression_pct: float
    memory_leak_fixed: bool
    memory_leak_introduced: bool
    latency_regressed: bool
    cpu_regressed: bool

    @property
    def passed(self) -> bool:
        return not (
            self.latency_regressed or self.cpu_regressed or self.memory_leak_introduced
        )

    def capacity_impact_fraction(self, latency_limit_ms: float) -> float:
        """Capacity cost of the change at a given latency SLO.

        Compares the max admissible per-server RPS before and after; a
        positive value means the change needs that much more capacity.
        """
        grid = self.workload_grid
        base_ok = grid[self.baseline.latency_model.predict(grid) <= latency_limit_ms]
        change_ok = grid[self.change.latency_model.predict(grid) <= latency_limit_ms]
        if base_ok.size == 0:
            return 0.0
        base_max = float(base_ok.max())
        change_max = float(change_ok.max()) if change_ok.size else 0.0
        if base_max <= 0:
            return 0.0
        return 1.0 - change_max / base_max

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"regression gate: {verdict} "
            f"({self.baseline.label} -> {self.change.label})",
            f"  max latency regression: {self.max_latency_regression_ms:+.1f} ms",
            f"  max CPU regression: {self.max_cpu_regression_pct:+.1f} pts",
            f"  memory leak fixed: {self.memory_leak_fixed}, "
            f"introduced: {self.memory_leak_introduced}",
        ]
        return "\n".join(lines)


class RegressionGate:
    """Compares response profiles and gates deployments."""

    def __init__(
        self,
        latency_tolerance_ms: float = 2.0,
        cpu_tolerance_pct: float = 1.0,
        grid_points: int = 50,
    ) -> None:
        if latency_tolerance_ms < 0 or cpu_tolerance_pct < 0:
            raise ValueError("tolerances must be non-negative")
        self.latency_tolerance_ms = latency_tolerance_ms
        self.cpu_tolerance_pct = cpu_tolerance_pct
        self.grid_points = grid_points

    def compare(
        self,
        baseline: ResponseProfile,
        change: ResponseProfile,
    ) -> RegressionReport:
        """Score the change across the common workload range."""
        lo = max(baseline.rps_range[0], change.rps_range[0])
        hi = min(baseline.rps_range[1], change.rps_range[1])
        if hi <= lo:
            raise ValueError("profiles have no overlapping workload range")
        grid = np.linspace(lo, hi, self.grid_points)
        latency_delta = change.latency_model.predict(grid) - baseline.latency_model.predict(grid)
        cpu_delta = change.cpu_model.predict(grid) - baseline.cpu_model.predict(grid)
        max_latency = float(latency_delta.max())
        max_cpu = float(cpu_delta.max())
        return RegressionReport(
            baseline=baseline,
            change=change,
            workload_grid=grid,
            latency_delta_ms=latency_delta,
            cpu_delta_pct=cpu_delta,
            max_latency_regression_ms=max_latency,
            max_cpu_regression_pct=max_cpu,
            memory_leak_fixed=baseline.has_memory_leak and not change.has_memory_leak,
            memory_leak_introduced=not baseline.has_memory_leak and change.has_memory_leak,
            latency_regressed=max_latency > self.latency_tolerance_ms,
            cpu_regressed=max_cpu > self.cpu_tolerance_pct,
        )


@dataclass(frozen=True)
class RegressionAlert:
    """A latched online-alarm verdict: what fired, where, and when."""

    #: ``"latency-regression"``, ``"cpu-regression"`` or ``"memory-leak"``.
    name: str
    pool_id: str
    #: The sealed window index at which the alarm fired.
    window: int
    report: RegressionReport
    detail: str


class OnlineRegressionAlarm:
    """The :class:`RegressionGate` run *online*, once per sealed block.

    The streaming counterpart of ``examples/regression_gate.py``: the
    first ``baseline_windows`` of the live run are fitted once into the
    baseline :class:`ResponseProfile`; from then on every
    :meth:`observe` re-fits the trailing ``recent_windows`` and gates
    the recent profile against the baseline.  The first failing verdict
    is latched as a named :class:`RegressionAlert` — a long-running
    fleet raises it within a bounded number of blocks of a mid-stream
    regression (bounded by ``recent_windows`` plus one block: once the
    trailing window is fully post-change, the shifted response curve is
    what gets fitted).

    Works against any store with the query surface (single or sharded,
    any backend).  Observations before enough telemetry exists — or
    whose profile fits fail (insufficient aligned samples, no
    overlapping workload range) — are skipped, not raised: an online
    alarm must never take the ingest loop down.
    """

    def __init__(
        self,
        pool_id: str,
        datacenter_id: Optional[str] = None,
        baseline_windows: int = 240,
        recent_windows: int = 120,
        gate: Optional[RegressionGate] = None,
    ) -> None:
        if baseline_windows < 10 or recent_windows < 10:
            raise ValueError(
                "baseline_windows and recent_windows must be >= 10 "
                "(profile fits need at least 10 aligned samples)"
            )
        self.pool_id = pool_id
        self.datacenter_id = datacenter_id
        self.baseline_windows = baseline_windows
        self.recent_windows = recent_windows
        self.gate = gate if gate is not None else RegressionGate()
        self._baseline: Optional[ResponseProfile] = None
        #: The first failing verdict, latched; ``None`` while healthy.
        self.alert: Optional[RegressionAlert] = None

    @property
    def fired(self) -> bool:
        return self.alert is not None

    def observe(
        self, store, through_window: int
    ) -> Optional[RegressionAlert]:
        """Gate the trailing window range; returns the alert if it fires.

        ``through_window`` is the last window whose telemetry is
        complete (the streaming driver's sealed watermark).  Idempotent
        after firing: the latched alert stays, further observations
        return ``None``.
        """
        if self.alert is not None:
            return None
        if through_window + 1 < self.baseline_windows + self.recent_windows:
            return None
        try:
            if self._baseline is None:
                self._baseline = profile_response(
                    store, self.pool_id, "baseline",
                    datacenter_id=self.datacenter_id,
                    start=0, stop=self.baseline_windows,
                )
            recent = profile_response(
                store, self.pool_id, "recent",
                datacenter_id=self.datacenter_id,
                start=through_window + 1 - self.recent_windows,
                stop=through_window + 1,
            )
            report = self.gate.compare(self._baseline, recent)
        except ValueError:
            # Not enough aligned telemetry yet, or disjoint workload
            # ranges (e.g. a surge): skip this observation.
            return None
        if report.passed:
            return None
        if report.latency_regressed:
            name = "latency-regression"
            detail = (
                f"max latency delta {report.max_latency_regression_ms:+.1f} ms "
                f"> {self.gate.latency_tolerance_ms:.1f} ms tolerance"
            )
        elif report.cpu_regressed:
            name = "cpu-regression"
            detail = (
                f"max CPU delta {report.max_cpu_regression_pct:+.1f} pts "
                f"> {self.gate.cpu_tolerance_pct:.1f} pts tolerance"
            )
        else:
            name = "memory-leak"
            detail = (
                "working set growing "
                f"{recent.memory_slope_bytes_per_window / 1e6:.2f} MB/window"
            )
        self.alert = RegressionAlert(
            name=name,
            pool_id=self.pool_id,
            window=through_window,
            report=report,
            detail=detail,
        )
        return self.alert
