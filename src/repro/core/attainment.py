"""Measuring SLO attainment from telemetry.

Planning sets capacity; attainment measurement closes the loop by
reporting how often the service actually met its QoS contract —
"services typically require between 99.95 % and 99.999+ % availability
with peak workload despite portions of the system being offline"
(§II).  The planner's verification step ("it is best to remove servers
slowly and monitor the accuracy of these forecasts", §III-A) consumes
exactly this read-out.

Attainment is computed per deployment over telemetry windows:

* **latency attainment** — fraction of windows whose pool-average
  p95 latency met the SLO;
* **availability attainment** — fraction of server-windows online;
* **served-demand attainment** — fraction of windows where at least
  one server was online to take traffic (a whole-pool blackout is the
  catastrophic case DR headroom exists to prevent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.slo import QoSRequirement
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class AttainmentReport:
    """SLO attainment for one pool in one datacenter (or fleet-wide)."""

    pool_id: str
    datacenter_id: Optional[str]
    qos: QoSRequirement
    latency_attainment: float
    availability: float
    serving_attainment: float
    n_windows: int
    worst_window_latency_ms: float

    @property
    def meets_contract(self) -> bool:
        """True when the measured period satisfied the QoS contract."""
        return (
            self.latency_attainment >= 0.95
            and self.availability >= self.qos.availability_min
            and self.serving_attainment >= self.qos.availability_min
        )

    def describe(self) -> str:
        scope = f"@{self.datacenter_id}" if self.datacenter_id else "(all DCs)"
        verdict = "OK" if self.meets_contract else "VIOLATED"
        return (
            f"pool {self.pool_id}{scope}: latency attainment "
            f"{self.latency_attainment:.1%}, availability "
            f"{self.availability:.2%}, serving {self.serving_attainment:.2%} "
            f"over {self.n_windows} windows [{verdict}]"
        )


def measure_attainment(
    store: MetricStore,
    pool_id: str,
    qos: QoSRequirement,
    datacenter_id: Optional[str] = None,
    start: Optional[int] = None,
    stop: Optional[int] = None,
) -> AttainmentReport:
    """Compute an attainment report over a window range."""
    latency = store.pool_window_aggregate(
        pool_id, Counter.LATENCY_P95.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    if latency.is_empty:
        raise ValueError(
            f"no latency telemetry for pool {pool_id!r}"
            + (f" in {datacenter_id!r}" if datacenter_id else "")
        )
    met = latency.values <= qos.latency_p95_ms
    latency_attainment = float(met.mean())

    availability_series = store.pool_window_aggregate(
        pool_id, Counter.AVAILABILITY.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    if availability_series.is_empty:
        availability = 1.0
        serving = 1.0
    else:
        availability = float(availability_series.values.mean())
        serving = float((availability_series.values > 0.0).mean())

    return AttainmentReport(
        pool_id=pool_id,
        datacenter_id=datacenter_id,
        qos=qos,
        latency_attainment=latency_attainment,
        availability=availability,
        serving_attainment=serving,
        n_windows=len(latency),
        worst_window_latency_ms=float(latency.values.max()),
    )


def measure_fleet_attainment(
    store: MetricStore,
    qos_by_pool: Dict[str, QoSRequirement],
    start: Optional[int] = None,
    stop: Optional[int] = None,
) -> List[AttainmentReport]:
    """Attainment for every pool with a registered QoS contract."""
    reports = []
    for pool_id in store.pools:
        if pool_id not in qos_by_pool:
            continue
        reports.append(
            measure_attainment(
                store, pool_id, qos_by_pool[pool_id], start=start, stop=stop
            )
        )
    if not reports:
        raise ValueError("no pools with both telemetry and QoS contracts")
    return reports
