"""Geo traffic shifting: serving demand where capacity already is.

§I observes that "diurnal global online service workloads cause
individual datacenters to periodically run out of capacity while
datacenters on the opposite side of the world are underutilized", and
the related-work section notes: "Our analysis investigates the benefits
of moving workload requests closer to the existing capacity because
this requires less operational overhead and eliminates the lag time to
bring capacity online."

This module quantifies that benefit.  Because regional peaks rotate
with the sun, the *global* peak demand is well below the *sum of local
peaks* — so a fleet that can serve a bounded fraction of each region's
traffic remotely needs fewer servers than one provisioned per-region.

Two pieces:

* :func:`balance_window` — a water-filling step that moves one window's
  demand from overloaded datacenters toward underloaded ones, bounded
  by ``max_remote_fraction`` of each origin's demand (remote serving
  costs RTT, so only a slice of traffic may be shifted before the
  latency SLO is at risk);
* :class:`TrafficShiftAnalysis` — applies the step across a demand
  history and reports peak-utilization and required-capacity savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def balance_window(
    demand: np.ndarray,
    capacity: np.ndarray,
    max_remote_fraction: float,
) -> np.ndarray:
    """Re-balance one window's per-DC demand toward equal utilization.

    ``demand`` and ``capacity`` are per-datacenter vectors (capacity in
    the same unit as demand — RPS the site can serve within SLO).
    Returns the shifted demand vector: donors shed at most
    ``max_remote_fraction`` of their own demand, receivers accept up to
    the equal-utilization target.  Total demand is conserved.
    """
    demand = np.asarray(demand, dtype=float)
    capacity = np.asarray(capacity, dtype=float)
    if demand.shape != capacity.shape:
        raise ValueError("demand and capacity must have matching shapes")
    if np.any(demand < 0) or np.any(capacity <= 0):
        raise ValueError("demand must be >= 0 and capacity > 0")
    if not 0.0 <= max_remote_fraction <= 1.0:
        raise ValueError("max_remote_fraction must be in [0, 1]")
    total = demand.sum()
    if total == 0:
        return demand.copy()

    target_util = total / capacity.sum()
    desired = target_util * capacity
    shifted = demand.copy()

    surplus = np.maximum(shifted - desired, 0.0)
    # Donors cannot shed more than the remote-serving budget allows.
    sheddable = np.minimum(surplus, max_remote_fraction * demand)
    room = np.maximum(desired - shifted, 0.0)
    movable = min(sheddable.sum(), room.sum())
    if movable <= 0:
        return shifted

    # Proportional share of the moved volume among donors / receivers.
    if sheddable.sum() > 0:
        shifted -= sheddable * (movable / sheddable.sum())
    if room.sum() > 0:
        shifted += room * (movable / room.sum())
    return shifted


@dataclass(frozen=True)
class TrafficShiftReport:
    """Outcome of a traffic-shift analysis over a demand history."""

    datacenters: Tuple[str, ...]
    peak_utilization_before: float
    peak_utilization_after: float
    required_capacity_before: float
    required_capacity_after: float
    shifted_fraction_mean: float

    @property
    def capacity_savings(self) -> float:
        """Fractional capacity no longer needed once traffic can move."""
        if self.required_capacity_before == 0:
            return 0.0
        return 1.0 - self.required_capacity_after / self.required_capacity_before

    def describe(self) -> str:
        return (
            f"traffic shift across {len(self.datacenters)} DCs: peak util "
            f"{self.peak_utilization_before:.0%} -> "
            f"{self.peak_utilization_after:.0%}, capacity savings "
            f"{self.capacity_savings:.0%} "
            f"(mean {self.shifted_fraction_mean:.1%} of traffic served remotely)"
        )


class TrafficShiftAnalysis:
    """Quantify follow-the-sun capacity savings over a demand history."""

    def __init__(self, max_remote_fraction: float = 0.25) -> None:
        if not 0.0 <= max_remote_fraction <= 1.0:
            raise ValueError("max_remote_fraction must be in [0, 1]")
        self.max_remote_fraction = max_remote_fraction

    def analyze(
        self,
        demand_by_dc: Dict[str, np.ndarray],
        max_rps_per_server: float,
    ) -> TrafficShiftReport:
        """Analyze aligned per-DC demand series.

        ``max_rps_per_server`` is the SLO-derived per-server rate (from
        the fitted QoS curve); capacity comparisons are expressed in
        servers via this rate.
        """
        if not demand_by_dc:
            raise ValueError("demand_by_dc must be non-empty")
        if max_rps_per_server <= 0:
            raise ValueError("max_rps_per_server must be positive")
        names = tuple(sorted(demand_by_dc))
        min_len = min(np.asarray(demand_by_dc[n]).size for n in names)
        if min_len == 0:
            raise ValueError("demand series are empty")
        matrix = np.stack(
            [np.asarray(demand_by_dc[n], dtype=float)[:min_len] for n in names]
        )  # (n_dcs, n_windows)

        # Per-region provisioning: each DC sized for its own peak.
        local_peaks = matrix.max(axis=1)
        required_before = float(
            np.ceil(local_peaks / max_rps_per_server).sum()
        )
        # The before-case peak utilization, at that provisioning.
        capacity_before = np.ceil(local_peaks / max_rps_per_server) * max_rps_per_server
        with np.errstate(divide="ignore", invalid="ignore"):
            util_before = np.where(
                capacity_before[:, None] > 0, matrix / capacity_before[:, None], 0.0
            )
        peak_util_before = float(util_before.max())

        # With shifting: size the fleet down until some window's
        # post-shift demand no longer fits.  Binary search on a global
        # scale factor applied to the before-case allocation.
        def feasible(capacity_vector: np.ndarray) -> Tuple[bool, float, float]:
            worst = 0.0
            moved_total = 0.0
            demand_total = 0.0
            for w in range(matrix.shape[1]):
                shifted = balance_window(
                    matrix[:, w], capacity_vector, self.max_remote_fraction
                )
                moved_total += float(np.abs(shifted - matrix[:, w]).sum()) / 2.0
                demand_total += float(matrix[:, w].sum())
                worst = max(worst, float((shifted / capacity_vector).max()))
            return worst <= 1.0 + 1e-9, worst, (
                moved_total / demand_total if demand_total else 0.0
            )

        lo, hi = 0.3, 1.0
        best_scale = 1.0
        for _ in range(12):
            mid = 0.5 * (lo + hi)
            ok, _worst, _moved = feasible(np.maximum(capacity_before * mid, max_rps_per_server))
            if ok:
                best_scale = mid
                hi = mid
            else:
                lo = mid
        capacity_after = np.maximum(capacity_before * best_scale, max_rps_per_server)
        _ok, worst_after, moved_fraction = feasible(capacity_after)
        required_after = float(np.ceil(capacity_after / max_rps_per_server).sum())

        return TrafficShiftReport(
            datacenters=names,
            peak_utilization_before=peak_util_before,
            peak_utilization_after=worst_after,
            required_capacity_before=required_before,
            required_capacity_after=required_after,
            shifted_fraction_mean=moved_fraction,
        )
