"""Step 1 — identifying capacity-planning server groups (§II-A2).

Two complementary mechanisms:

* **Within-pool clustering** — scatter each server's (5th pct, 95th
  pct) CPU over a representative period; tight single clusters mean
  the whole pool is one planning unit, while multiple clusters reveal
  sub-groups (Fig 3's two hardware generations) that must be planned
  separately.

* **Fleet-wide predictability classification** — a decision tree over
  per-server feature vectors (the 5/25/50/75/95 CPU percentiles plus
  the pool's percentile-regression slope/intercept/R^2) separates pools
  with a predictable workload->CPU relationship from multi-workload
  pools, evaluated with 5-fold CV / AUC exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.clustering import ClusteringResult, select_k
from repro.stats.crossval import CrossValidationResult, cross_validate_classifier
from repro.stats.decision_tree import DecisionTreeClassifier
from repro.stats.descriptive import STANDARD_PERCENTILES
from repro.stats.regression import fit_linear
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class ServerGroup:
    """A set of servers planned as one unit."""

    pool_id: str
    datacenter_id: str
    group_index: int
    server_ids: Tuple[str, ...]
    center_p5: float
    center_p95: float

    @property
    def size(self) -> int:
        return len(self.server_ids)


@dataclass(frozen=True)
class PoolGroupReport:
    """Grouping outcome for one pool in one datacenter."""

    pool_id: str
    datacenter_id: str
    groups: Tuple[ServerGroup, ...]
    silhouette_like_quality: float
    points: np.ndarray  # (n_servers, 2) of (p5, p95) CPU
    server_ids: Tuple[str, ...]

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def is_uniform(self) -> bool:
        """True when the pool is a single planning group."""
        return self.n_groups == 1


def _server_cpu_percentiles(
    store: MetricStore,
    pool_id: str,
    percentiles: Sequence[float],
    datacenter_id: Optional[str] = None,
    start: Optional[int] = None,
    stop: Optional[int] = None,
    min_samples: int = 10,
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Per-server CPU percentile rows via the store's dense cube.

    One ``np.nanpercentile`` over the (window, server) CPU matrix
    replaces the per-server Python loop; offline windows are NaN and
    ignored, and servers with fewer than ``min_samples`` observations
    are dropped.  Rows are ordered by server id.
    """
    _windows, names, matrix = store.pool_matrix(
        pool_id,
        Counter.PROCESSOR_UTILIZATION.value,
        datacenter_id=datacenter_id,
        start=start,
        stop=stop,
    )
    if matrix.size == 0:
        return np.empty((0, len(percentiles)), dtype=float), ()
    order = sorted(range(len(names)), key=lambda i: names[i])
    counts = np.sum(~np.isnan(matrix), axis=0)
    keep = [i for i in order if counts[i] >= min_samples]
    if not keep:
        return np.empty((0, len(percentiles)), dtype=float), ()
    rows = np.nanpercentile(matrix[:, keep], list(percentiles), axis=0).T
    return rows, tuple(names[i] for i in keep)


def server_percentile_points(
    store: MetricStore,
    pool_id: str,
    datacenter_id: Optional[str] = None,
    start: Optional[int] = None,
    stop: Optional[int] = None,
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Per-server (5th, 95th) CPU percentile points (Fig 3's axes).

    Only windows where the server was serving traffic contribute —
    offline windows would drag the 5th percentile to zero and make
    every pool look bimodal.
    """
    return _server_cpu_percentiles(
        store,
        pool_id,
        (5.0, 95.0),
        datacenter_id=datacenter_id,
        start=start,
        stop=stop,
    )


def identify_server_groups(
    store: MetricStore,
    pool_id: str,
    datacenter_id: str,
    max_groups: int = 3,
    min_silhouette: float = 0.6,
    rng: Optional[np.random.Generator] = None,
) -> PoolGroupReport:
    """Cluster one deployment's servers into planning groups."""
    points, server_ids = server_percentile_points(store, pool_id, datacenter_id)
    if points.shape[0] == 0:
        raise ValueError(
            f"no usable CPU telemetry for pool {pool_id!r} in {datacenter_id!r}"
        )
    result: ClusteringResult = select_k(
        points, max_k=max_groups, min_silhouette=min_silhouette, rng=rng
    )
    groups: List[ServerGroup] = []
    for g in range(result.k):
        member_mask = result.labels == g
        member_ids = tuple(
            sid for sid, keep in zip(server_ids, member_mask) if keep
        )
        if not member_ids:
            continue
        groups.append(
            ServerGroup(
                pool_id=pool_id,
                datacenter_id=datacenter_id,
                group_index=len(groups),
                server_ids=member_ids,
                center_p5=float(result.centers[g, 0]),
                center_p95=float(result.centers[g, 1]),
            )
        )
    from repro.stats.clustering import silhouette_score

    quality = silhouette_score(points, result.labels) if result.k > 1 else 1.0
    return PoolGroupReport(
        pool_id=pool_id,
        datacenter_id=datacenter_id,
        groups=tuple(groups),
        silhouette_like_quality=quality,
        points=points,
        server_ids=server_ids,
    )


# ----------------------------------------------------------------------
# Fleet-wide predictability classification
# ----------------------------------------------------------------------

#: Feature layout: 5 per-server CPU percentiles + pool slope/intercept/R^2.
FEATURE_NAMES: Tuple[str, ...] = (
    "cpu_p5",
    "cpu_p25",
    "cpu_p50",
    "cpu_p75",
    "cpu_p95",
    "pool_slope",
    "pool_intercept",
    "pool_r2",
)


def _pool_percentile_regression(
    profiles: Sequence[np.ndarray],
) -> Tuple[float, float, float]:
    """Fit the §II-A2 pool-level regression across (p_i, c_i) points.

    Every server contributes its five (percentile, cpu) pairs; the
    slope/intercept/R^2 of the pooled fit summarise how consistently
    CPU spreads with percentile across the pool.
    """
    xs: List[float] = []
    ys: List[float] = []
    for profile in profiles:
        xs.extend(STANDARD_PERCENTILES)
        ys.extend(profile.tolist())
    model = fit_linear(xs, ys)
    return model.slope, model.intercept, model.r2


def server_feature_matrix(
    store: MetricStore,
    pool_id: str,
    datacenter_id: Optional[str] = None,
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Per-server feature vectors for the predictability tree."""
    profiles, ids = _server_cpu_percentiles(
        store,
        pool_id,
        STANDARD_PERCENTILES,
        datacenter_id=datacenter_id,
    )
    if profiles.shape[0] == 0:
        return np.empty((0, len(FEATURE_NAMES))), ()
    slope, intercept, r2 = _pool_percentile_regression(list(profiles))
    rows = [
        np.concatenate([profile, [slope, intercept, r2]]) for profile in profiles
    ]
    return np.asarray(rows, dtype=float), tuple(ids)


@dataclass
class GroupingModel:
    """Decision-tree classifier of pool predictability.

    Train on pools with operator labels (1 = tight, single-workload;
    0 = noisy, multi-workload), then classify unlabelled pools.  The
    paper's tree used a 2000-machine minimum leaf on a 100K+ fleet;
    ``min_leaf_fraction`` scales that to any fleet size.
    """

    min_leaf_fraction: float = 0.02
    max_depth: int = 10
    tree: Optional[DecisionTreeClassifier] = None
    cv_result: Optional[CrossValidationResult] = None

    def _build_dataset(
        self,
        store: MetricStore,
        labels: Dict[str, int],
    ) -> Tuple[np.ndarray, np.ndarray, List[str]]:
        feature_rows: List[np.ndarray] = []
        label_rows: List[int] = []
        row_pools: List[str] = []
        for pool_id, label in sorted(labels.items()):
            features, ids = server_feature_matrix(store, pool_id)
            for row in features:
                feature_rows.append(row)
                label_rows.append(int(label))
                row_pools.append(pool_id)
            del ids
        if not feature_rows:
            raise ValueError("no features extracted for any labelled pool")
        return (
            np.asarray(feature_rows, dtype=float),
            np.asarray(label_rows, dtype=int),
            row_pools,
        )

    def fit(
        self,
        store: MetricStore,
        labels: Dict[str, int],
        rng: Optional[np.random.Generator] = None,
    ) -> "GroupingModel":
        """Train and cross-validate on labelled pools."""
        features, y, _pools = self._build_dataset(store, labels)
        min_leaf = max(int(self.min_leaf_fraction * y.size), 5)

        def factory() -> DecisionTreeClassifier:
            return DecisionTreeClassifier(min_leaf_size=min_leaf, max_depth=self.max_depth)

        self.cv_result = cross_validate_classifier(
            factory, features, y, k=5, rng=rng
        )
        self.tree = factory().fit(features, y)
        return self

    def predict_pool(
        self,
        store: MetricStore,
        pool_id: str,
    ) -> Tuple[bool, float]:
        """Classify one pool: (is_predictable, mean probability)."""
        if self.tree is None:
            raise RuntimeError("grouping model has not been fitted")
        features, _ids = server_feature_matrix(store, pool_id)
        if features.shape[0] == 0:
            raise ValueError(f"no telemetry for pool {pool_id!r}")
        probs = self.tree.predict_proba(features)
        mean_prob = float(probs.mean())
        return mean_prob >= 0.5, mean_prob

    def predictable_fraction(
        self,
        store: MetricStore,
        pool_ids: Sequence[str],
    ) -> float:
        """Share of pools classified predictable (paper: ~55 %)."""
        if not pool_ids:
            raise ValueError("pool_ids must be non-empty")
        flags = [self.predict_pool(store, p)[0] for p in pool_ids]
        return float(np.mean(flags))
