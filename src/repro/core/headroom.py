"""Step 2 — right-sizing pool headroom.

Converts the fitted QoS curve into the minimal per-datacenter server
allocation that (a) serves the observed demand within the latency SLO,
(b) keeps a configurable safety margin, and (c) still survives the
loss of any single datacenter with the survivors absorbing the failed
region's traffic — the disaster-recovery headroom the paper insists
must be preserved ("effectively no impact on ... the capacity required
for disaster recovery", §Abstract).

The planner is black-box: demand, response curves and current pool
sizes all come from telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.curves import WorkloadQoSModel, fit_qos_model
from repro.core.slo import QoSRequirement
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class DeploymentPlan:
    """Right-sized allocation for one pool in one datacenter.

    ``planned_servers`` is capped at the current allocation: this
    planner right-sizes *headroom* (Table IV reports savings, never
    growth).  A deployment whose ``required_normal`` exceeds
    ``current_servers`` is under-provisioned — visible in the fields,
    and the what-if analyzer (:mod:`repro.core.whatif`) is the tool for
    sizing expansions.
    """

    pool_id: str
    datacenter_id: str
    current_servers: int
    required_normal: int
    required_with_dr: int
    peak_demand_rps: float
    max_rps_per_server: float

    @property
    def planned_servers(self) -> int:
        return self.required_with_dr

    @property
    def savings_servers(self) -> int:
        return max(self.current_servers - self.planned_servers, 0)


@dataclass(frozen=True)
class HeadroomPlan:
    """Right-sizing outcome for one pool across all datacenters."""

    pool_id: str
    deployments: Tuple[DeploymentPlan, ...]
    latency_impact_ms: float
    qos: QoSRequirement
    binding_scenario: str

    @property
    def current_servers(self) -> int:
        return sum(d.current_servers for d in self.deployments)

    @property
    def planned_servers(self) -> int:
        return sum(d.planned_servers for d in self.deployments)

    @property
    def efficiency_savings(self) -> float:
        """Fraction of the pool's servers the plan releases."""
        if self.current_servers == 0:
            return 0.0
        return 1.0 - self.planned_servers / self.current_servers

    def describe(self) -> str:
        return (
            f"pool {self.pool_id}: {self.current_servers} -> "
            f"{self.planned_servers} servers "
            f"({self.efficiency_savings:.0%} savings, "
            f"+{self.latency_impact_ms:.1f} ms at peak, "
            f"binding scenario: {self.binding_scenario})"
        )


class HeadroomPlanner:
    """Right-size every deployment of a pool from telemetry alone."""

    def __init__(
        self,
        store: MetricStore,
        safety_margin: float = 0.9,
        survive_dc_loss: bool = True,
        demand_percentile: float = 99.5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < safety_margin <= 1.0:
            raise ValueError("safety_margin must be in (0, 1]")
        if not 50.0 <= demand_percentile <= 100.0:
            raise ValueError("demand_percentile must be in [50, 100]")
        self.store = store
        self.safety_margin = safety_margin
        self.survive_dc_loss = survive_dc_loss
        self.demand_percentile = demand_percentile
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------
    def _demand_series(self, pool_id: str, datacenter_id: str) -> np.ndarray:
        series = self.store.pool_window_aggregate(
            pool_id,
            Counter.REQUESTS.value,
            datacenter_id=datacenter_id,
            reducer="sum",
        )
        return series.values

    def _max_rps_per_server(
        self, pool_id: str, datacenter_id: str, qos: QoSRequirement
    ) -> Tuple[float, WorkloadQoSModel]:
        model = fit_qos_model(
            self.store, pool_id, datacenter_id=datacenter_id, rng=self._rng
        )
        max_rps = model.max_rps_within(qos.latency_p95_ms) * self.safety_margin
        return max_rps, model

    @staticmethod
    def _required(demand: np.ndarray, max_rps: float, percentile: float) -> int:
        if demand.size == 0:
            return 1
        peak = float(np.percentile(demand, percentile))
        return max(int(np.ceil(peak / max_rps)), 1)

    # ------------------------------------------------------------------
    def plan_pool(self, pool_id: str, qos: QoSRequirement) -> HeadroomPlan:
        """Compute the right-sized allocation for one pool."""
        datacenters = self.store.datacenters_for_pool(pool_id)
        if not datacenters:
            raise KeyError(f"pool {pool_id!r} has no telemetry")

        demands: Dict[str, np.ndarray] = {}
        max_rps: Dict[str, float] = {}
        models: Dict[str, WorkloadQoSModel] = {}
        current: Dict[str, int] = {}
        for dc in datacenters:
            demands[dc] = self._demand_series(pool_id, dc)
            rate, model = self._max_rps_per_server(pool_id, dc, qos)
            max_rps[dc] = rate
            models[dc] = model
            current[dc] = len(self.store.servers_in_pool(pool_id, dc))

        # Normal-operation requirement per datacenter.
        required_normal = {
            dc: self._required(demands[dc], max_rps[dc], self.demand_percentile)
            for dc in datacenters
        }

        # Disaster-recovery requirement: for every single-DC loss the
        # survivors absorb the failed DC's traffic proportionally.
        required_dr = dict(required_normal)
        binding = "normal operation"
        if self.survive_dc_loss and len(datacenters) > 1:
            # Align demand arrays to a common length (simulations keep
            # them aligned; defensive truncation otherwise).
            min_len = min(d.size for d in demands.values())
            aligned = {dc: demands[dc][:min_len] for dc in datacenters}
            for failed in datacenters:
                survivors = [dc for dc in datacenters if dc != failed]
                survivor_total = np.zeros(min_len)
                for dc in survivors:
                    survivor_total += aligned[dc]
                with np.errstate(divide="ignore", invalid="ignore"):
                    for dc in survivors:
                        share = np.where(
                            survivor_total > 0,
                            aligned[dc] / survivor_total,
                            1.0 / len(survivors),
                        )
                        scenario_demand = aligned[dc] + share * aligned[failed]
                        needed = self._required(
                            scenario_demand, max_rps[dc], self.demand_percentile
                        )
                        if needed > required_dr[dc]:
                            required_dr[dc] = needed
                            binding = f"loss of {failed}"

        deployments: List[DeploymentPlan] = []
        latency_impacts: List[float] = []
        for dc in datacenters:
            demand = demands[dc]
            peak = float(np.percentile(demand, self.demand_percentile)) if demand.size else 0.0
            plan = DeploymentPlan(
                pool_id=pool_id,
                datacenter_id=dc,
                current_servers=current[dc],
                required_normal=required_normal[dc],
                required_with_dr=min(required_dr[dc], max(current[dc], 1)),
                peak_demand_rps=peak,
                max_rps_per_server=max_rps[dc],
            )
            deployments.append(plan)
            if current[dc] > 0 and plan.planned_servers > 0:
                before = models[dc].forecast_latency(peak / current[dc])
                after = models[dc].forecast_latency(peak / plan.planned_servers)
                latency_impacts.append(after - before)

        impact = float(max(latency_impacts)) if latency_impacts else 0.0
        return HeadroomPlan(
            pool_id=pool_id,
            deployments=tuple(deployments),
            latency_impact_ms=max(impact, 0.0),
            qos=qos,
            binding_scenario=binding,
        )

    def plan_all(
        self, qos_by_pool: Dict[str, QoSRequirement]
    ) -> Dict[str, HeadroomPlan]:
        """Plan every pool that has both telemetry and a QoS contract."""
        plans: Dict[str, HeadroomPlan] = {}
        for pool_id in self.store.pools:
            if pool_id not in qos_by_pool:
                continue
            plans[pool_id] = self.plan_pool(pool_id, qos_by_pool[pool_id])
        return plans
