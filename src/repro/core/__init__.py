"""The paper's primary contribution: black-box capacity planning.

Implements the four-step methodology of Fig 1:

1. **Measure** (:mod:`~repro.core.metric_validation`,
   :mod:`~repro.core.grouping`) — validate workload metrics against the
   limiting resource and identify capacity-planning server groups.
2. **Optimize** (:mod:`~repro.core.curves`, :mod:`~repro.core.rsm`,
   :mod:`~repro.core.natural_experiments`,
   :mod:`~repro.core.headroom`) — fit the workload/resource/QoS
   relationships from history, natural experiments and RSM-driven
   reduction experiments, then right-size each pool's headroom.
3. **Model** (:mod:`repro.workload.synthetic`) — reproducible synthetic
   workloads matching production response characteristics.
4. **Validate** (:mod:`~repro.core.regression_analysis`) — offline A/B
   regression gates for every change before deployment.

Everything here is *black-box*: the only inputs are telemetry queries
against a :class:`~repro.telemetry.store.MetricStore` and the
experiment interventions a service operator could perform.
"""

from repro.core.slo import QoSRequirement, SLO
from repro.core.metric_validation import (
    MetricValidationReport,
    MetricValidator,
    ValidationStatus,
)
from repro.core.grouping import (
    GroupingModel,
    PoolGroupReport,
    ServerGroup,
    identify_server_groups,
    server_feature_matrix,
)
from repro.core.partitions import LoadPartition, partition_by_total_load
from repro.core.curves import (
    ServersQoSModel,
    WorkloadQoSModel,
    WorkloadResourceModel,
    fit_pool_response,
)
from repro.core.rsm import (
    ExperimentRunner,
    ReductionExperiment,
    ResponseSurfaceOptimizer,
    RsmIteration,
    RsmResult,
)
from repro.core.natural_experiments import (
    NaturalExperimentReport,
    SurgeEvent,
    analyze_natural_experiment,
    detect_surge_events,
)
from repro.core.headroom import HeadroomPlan, HeadroomPlanner
from repro.core.availability import (
    AvailabilityReport,
    FleetAvailabilityStudy,
    daily_availability,
)
from repro.core.regression_analysis import (
    RegressionGate,
    RegressionReport,
    ResponseProfile,
)
from repro.core.attainment import (
    AttainmentReport,
    measure_attainment,
    measure_fleet_attainment,
)
from repro.core.forecasting import (
    DemandForecast,
    SeasonalTrendForecaster,
    forecast_pool_demand,
)
from repro.core.traffic_shift import (
    TrafficShiftAnalysis,
    TrafficShiftReport,
    balance_window,
)
from repro.core.whatif import Scenario, ScenarioOutcome, WhatIfAnalyzer
from repro.core.planner import CapacityPlanner, FleetPlan
from repro.core.report import render_table

__all__ = [
    "QoSRequirement",
    "SLO",
    "MetricValidationReport",
    "MetricValidator",
    "ValidationStatus",
    "GroupingModel",
    "PoolGroupReport",
    "ServerGroup",
    "identify_server_groups",
    "server_feature_matrix",
    "LoadPartition",
    "partition_by_total_load",
    "ServersQoSModel",
    "WorkloadQoSModel",
    "WorkloadResourceModel",
    "fit_pool_response",
    "ExperimentRunner",
    "ReductionExperiment",
    "ResponseSurfaceOptimizer",
    "RsmIteration",
    "RsmResult",
    "NaturalExperimentReport",
    "SurgeEvent",
    "analyze_natural_experiment",
    "detect_surge_events",
    "HeadroomPlan",
    "HeadroomPlanner",
    "AvailabilityReport",
    "FleetAvailabilityStudy",
    "daily_availability",
    "RegressionGate",
    "RegressionReport",
    "ResponseProfile",
    "AttainmentReport",
    "measure_attainment",
    "measure_fleet_attainment",
    "DemandForecast",
    "SeasonalTrendForecaster",
    "forecast_pool_demand",
    "TrafficShiftAnalysis",
    "TrafficShiftReport",
    "balance_window",
    "Scenario",
    "ScenarioOutcome",
    "WhatIfAnalyzer",
    "CapacityPlanner",
    "FleetPlan",
    "render_table",
]
