"""Step 2 — Response Surface Methodology (§II-B2, Fig 7).

RSM iterates two moves:

1. **Model** — fit the latency-vs-server-count response (Eq. 1) on all
   data collected so far, within each total-load partition;
2. **Extrapolate** — follow the fitted gradient to the next candidate
   server count, run a supervised production experiment there for
   about a week, and repeat.

Iterations stop when the *forecast* latency at the next reduction step
would break the QoS limit (Fig 7's 14 ms line), or when a measurement
already did — in which case the optimizer rolls back, exactly as the
paper's "manually supervised" operators would restore capacity.

The optimizer is black-box: experiments happen behind the
:class:`ExperimentRunner` protocol, and all read-outs come from the
metric store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple

import numpy as np

from repro.core.curves import ServersQoSModel, fit_servers_qos_model
from repro.core.partitions import (
    LoadPartition,
    partition_by_total_load,
    partition_observations,
)
from repro.core.slo import QoSRequirement
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


class ExperimentRunner(Protocol):
    """Something that can change a pool's size and let time pass.

    In this repo the runner wraps the simulator; against a real fleet
    it would file a capacity change and wait.  ``run_reduction``
    returns the [start, stop) window range covering the experiment.
    """

    def run_reduction(
        self,
        pool_id: str,
        datacenter_id: str,
        n_servers: int,
        duration_windows: int,
    ) -> Tuple[int, int]:
        ...


@dataclass(frozen=True)
class ReductionExperiment:
    """One supervised experiment stage."""

    n_servers: int
    start_window: int
    stop_window: int


@dataclass(frozen=True)
class RsmIteration:
    """One model/extrapolate cycle."""

    iteration: int
    n_servers: int
    measured_latency_p95_ms: float
    forecast_next_latency_ms: Optional[float]
    next_n_servers: Optional[int]
    qos_violated: bool

    def describe(self) -> str:
        parts = [
            f"iter {self.iteration}: n = {self.n_servers}, "
            f"measured p95 = {self.measured_latency_p95_ms:.1f} ms"
        ]
        if self.forecast_next_latency_ms is not None:
            parts.append(
                f"forecast @ n = {self.next_n_servers}: "
                f"{self.forecast_next_latency_ms:.1f} ms"
            )
        if self.qos_violated:
            parts.append("QoS limit hit")
        return "; ".join(parts)


@dataclass(frozen=True)
class RsmResult:
    """Outcome of the full RSM loop."""

    pool_id: str
    datacenter_id: str
    initial_servers: int
    recommended_servers: int
    iterations: Tuple[RsmIteration, ...]
    partition_models: Tuple[ServersQoSModel, ...]
    qos: QoSRequirement

    @property
    def reduction_fraction(self) -> float:
        return 1.0 - self.recommended_servers / self.initial_servers

    def describe(self) -> str:
        lines = [
            f"RSM for pool {self.pool_id} @ {self.datacenter_id}: "
            f"{self.initial_servers} -> {self.recommended_servers} servers "
            f"({self.reduction_fraction:.0%} reduction) "
            f"within p95 <= {self.qos.latency_p95_ms:g} ms"
        ]
        lines.extend("  " + it.describe() for it in self.iterations)
        return "\n".join(lines)


class ResponseSurfaceOptimizer:
    """Iterative server-reduction search under a QoS limit."""

    def __init__(
        self,
        store: MetricStore,
        pool_id: str,
        datacenter_id: str,
        qos: QoSRequirement,
        runner: ExperimentRunner,
        iteration_windows: int = 300,
        reduction_step: float = 0.1,
        n_partitions: int = 4,
        min_servers: int = 2,
        max_iterations: int = 8,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < reduction_step < 0.5:
            raise ValueError("reduction_step must be in (0, 0.5)")
        if iteration_windows < 20:
            raise ValueError("iteration_windows must be >= 20")
        self.store = store
        self.pool_id = pool_id
        self.datacenter_id = datacenter_id
        self.qos = qos
        self.runner = runner
        self.iteration_windows = iteration_windows
        self.reduction_step = reduction_step
        self.n_partitions = n_partitions
        self.min_servers = min_servers
        self.max_iterations = max_iterations
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------
    def _fit_partition_models(self) -> List[ServersQoSModel]:
        """Fit Eq. 1 in every usable total-load partition (all history)."""
        total = self.store.pool_window_aggregate(
            self.pool_id,
            Counter.REQUESTS.value,
            datacenter_id=self.datacenter_id,
            reducer="sum",
        )
        partitions = partition_by_total_load(total, self.n_partitions)
        models: List[ServersQoSModel] = []
        for partition in partitions:
            ns, ls = partition_observations(
                self.store, self.pool_id, self.datacenter_id, partition
            )
            if ns.size < 6 or np.unique(ns).size < 2:
                continue
            try:
                models.append(
                    fit_servers_qos_model(
                        ns, ls, self.pool_id, self.datacenter_id,
                        partition.index, rng=self._rng,
                    )
                )
            except ValueError:
                continue
        return models

    def _measured_latency(self, start: int, stop: int) -> float:
        series = self.store.pool_window_aggregate(
            self.pool_id,
            Counter.LATENCY_P95.value,
            datacenter_id=self.datacenter_id,
            start=start,
            stop=stop,
        )
        if series.is_empty:
            raise ValueError("experiment produced no latency telemetry")
        return series.mean()

    def _forecast_at(self, models: List[ServersQoSModel], n: int) -> Optional[float]:
        """Worst-case (max) latency forecast across partition models.

        The heaviest-load partition binds, but deployments and shifts
        can make any partition the binding one — taking the max errs on
        the side of over-allocating, per the paper's stated bias.
        """
        if not models:
            return None
        return max(model.forecast_latency(n) for model in models)

    # ------------------------------------------------------------------
    def optimize(self, initial_servers: int) -> RsmResult:
        """Run the RSM loop from an initial pool size."""
        if initial_servers < self.min_servers:
            raise ValueError("initial_servers below min_servers")
        n = initial_servers
        last_good = initial_servers
        iterations: List[RsmIteration] = []
        models: List[ServersQoSModel] = []

        for iteration in range(self.max_iterations):
            start, stop = self.runner.run_reduction(
                self.pool_id, self.datacenter_id, n, self.iteration_windows
            )
            measured = self._measured_latency(start, stop)
            violated = measured > self.qos.latency_p95_ms
            models = self._fit_partition_models()

            if violated:
                iterations.append(
                    RsmIteration(
                        iteration=iteration,
                        n_servers=n,
                        measured_latency_p95_ms=measured,
                        forecast_next_latency_ms=None,
                        next_n_servers=None,
                        qos_violated=True,
                    )
                )
                # Operators restore capacity immediately (§II-B2).
                self.runner.run_reduction(
                    self.pool_id, self.datacenter_id, last_good,
                    max(self.iteration_windows // 4, 20),
                )
                n = last_good
                break

            last_good = n
            next_n = max(int(np.floor(n * (1.0 - self.reduction_step))), self.min_servers)
            if next_n >= n:
                iterations.append(
                    RsmIteration(
                        iteration=iteration,
                        n_servers=n,
                        measured_latency_p95_ms=measured,
                        forecast_next_latency_ms=None,
                        next_n_servers=None,
                        qos_violated=False,
                    )
                )
                break
            forecast = self._forecast_at(models, next_n)
            iterations.append(
                RsmIteration(
                    iteration=iteration,
                    n_servers=n,
                    measured_latency_p95_ms=measured,
                    forecast_next_latency_ms=forecast,
                    next_n_servers=next_n,
                    qos_violated=False,
                )
            )
            if forecast is not None and forecast > self.qos.latency_p95_ms:
                # The model predicts the next step breaks QoS: stop here.
                break
            n = next_n

        return RsmResult(
            pool_id=self.pool_id,
            datacenter_id=self.datacenter_id,
            initial_servers=initial_servers,
            recommended_servers=last_good,
            iterations=tuple(iterations),
            partition_models=tuple(models),
            qos=self.qos,
        )
