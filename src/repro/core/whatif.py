"""Offline 'what-if' capacity analysis.

A stated requirement of the methodology: "It needs to enable offline
'what-if' regression analysis of changes to determine their capacity
and QoS consequences" (§II), and "reducing QoS requirements by 5 ms may
require 10 % less services".

A :class:`WhatIfAnalyzer` owns the fitted response curves and demand
series of one pool and answers counterfactual questions *without
touching production or the simulator*:

* what if demand grows by x %?
* what if the latency SLO is loosened/tightened by y ms?
* what if a deployment makes requests z % more expensive (CPU) or adds
  w ms of latency (from a Step-4 regression report)?
* what if a datacenter is retired (its traffic folded into survivors)?

Each scenario returns the new required server count and its delta
against the baseline plan, so capacity/QoS trade-offs can be budgeted
per feature, as §III-C envisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.curves import WorkloadQoSModel, fit_qos_model
from repro.core.regression_analysis import RegressionReport
from repro.core.slo import QoSRequirement
from repro.stats.regression import PolynomialModel
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class Scenario:
    """One counterfactual applied on top of the baseline."""

    label: str
    demand_factor: float = 1.0
    latency_slo_delta_ms: float = 0.0
    cpu_cost_factor: float = 1.0
    added_latency_ms: float = 0.0
    retired_datacenters: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.demand_factor <= 0:
            raise ValueError("demand_factor must be positive")
        if self.cpu_cost_factor <= 0:
            raise ValueError("cpu_cost_factor must be positive")

    @classmethod
    def from_regression_report(
        cls, report: RegressionReport, label: Optional[str] = None
    ) -> "Scenario":
        """Scenario for deploying a change scored by the Step-4 gate."""
        return cls(
            label=label or f"deploy {report.change.label}",
            added_latency_ms=max(report.max_latency_regression_ms, 0.0),
            cpu_cost_factor=1.0,
        )


@dataclass(frozen=True)
class ScenarioOutcome:
    """Required capacity under one scenario."""

    scenario: Scenario
    required_servers: int
    baseline_servers: int
    max_rps_per_server: float

    @property
    def delta_servers(self) -> int:
        return self.required_servers - self.baseline_servers

    @property
    def delta_fraction(self) -> float:
        if self.baseline_servers == 0:
            return 0.0
        return self.delta_servers / self.baseline_servers

    def describe(self) -> str:
        sign = "+" if self.delta_servers >= 0 else ""
        return (
            f"{self.scenario.label}: {self.required_servers} servers "
            f"({sign}{self.delta_servers}, {sign}{self.delta_fraction:.0%})"
        )


class WhatIfAnalyzer:
    """Counterfactual capacity questions over fitted pool models."""

    def __init__(
        self,
        store: MetricStore,
        pool_id: str,
        qos: QoSRequirement,
        safety_margin: float = 0.9,
        demand_percentile: float = 99.5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < safety_margin <= 1.0:
            raise ValueError("safety_margin must be in (0, 1]")
        self.store = store
        self.pool_id = pool_id
        self.qos = qos
        self.safety_margin = safety_margin
        self.demand_percentile = demand_percentile
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._datacenters = store.datacenters_for_pool(pool_id)
        if not self._datacenters:
            raise KeyError(f"pool {pool_id!r} has no telemetry")
        self._demand: Dict[str, np.ndarray] = {
            dc: store.pool_window_aggregate(
                pool_id, Counter.REQUESTS.value, datacenter_id=dc, reducer="sum"
            ).values
            for dc in self._datacenters
        }
        self._models: Dict[str, WorkloadQoSModel] = {
            dc: fit_qos_model(store, pool_id, datacenter_id=dc, rng=self._rng)
            for dc in self._datacenters
        }

    # ------------------------------------------------------------------
    def _adjusted_model(
        self, model: WorkloadQoSModel, scenario: Scenario
    ) -> WorkloadQoSModel:
        """Apply CPU-cost and latency deltas to a fitted curve.

        A CPU-cost factor f means every request does f times the work,
        so the latency observed at rate r now occurs at rate r/f —
        a horizontal compression of the curve.  For the quadratic
        l(r) = a r^2 + b r + c the compressed curve is
        l'(r) = a f^2 r^2 + b f r + c.  An additive latency delta
        shifts the whole curve up.
        """
        f = scenario.cpu_cost_factor
        a, b, c = model.model.coefficients
        adjusted = PolynomialModel(
            coefficients=(a * f * f, b * f, c + scenario.added_latency_ms),
            r2=model.model.r2,
            n=model.model.n,
            residual_std=model.model.residual_std,
            x_min=model.model.x_min / f,
            x_max=model.model.x_max / f,
        )
        return WorkloadQoSModel(
            pool_id=model.pool_id,
            datacenter_id=model.datacenter_id,
            model=adjusted,
            inlier_fraction=model.inlier_fraction,
        )

    def _scenario_demand(self, scenario: Scenario) -> Dict[str, np.ndarray]:
        """Demand per surviving DC with retired DCs folded in."""
        retired = set(scenario.retired_datacenters)
        unknown = retired - set(self._datacenters)
        if unknown:
            raise KeyError(f"unknown datacenters in scenario: {sorted(unknown)}")
        survivors = [dc for dc in self._datacenters if dc not in retired]
        if not survivors:
            raise ValueError("scenario retires every datacenter")
        min_len = min(arr.size for arr in self._demand.values())
        aligned = {dc: self._demand[dc][:min_len] for dc in self._datacenters}
        displaced = np.zeros(min_len)
        for dc in retired:
            displaced += aligned[dc]
        survivor_total = np.zeros(min_len)
        for dc in survivors:
            survivor_total += aligned[dc]
        out: Dict[str, np.ndarray] = {}
        for dc in survivors:
            with np.errstate(divide="ignore", invalid="ignore"):
                share = np.where(
                    survivor_total > 0,
                    aligned[dc] / survivor_total,
                    1.0 / len(survivors),
                )
            out[dc] = (aligned[dc] + displaced * share) * scenario.demand_factor
        return out

    def required_servers(self, scenario: Scenario) -> int:
        """Total servers needed across datacenters under the scenario."""
        latency_limit = self.qos.latency_p95_ms + scenario.latency_slo_delta_ms
        if latency_limit <= 0:
            raise ValueError("scenario drives the latency SLO non-positive")
        total = 0
        for dc, demand in self._scenario_demand(scenario).items():
            model = self._adjusted_model(self._models[dc], scenario)
            max_rps = model.max_rps_within(latency_limit) * self.safety_margin
            peak = float(np.percentile(demand, self.demand_percentile))
            total += max(int(np.ceil(peak / max_rps)), 1)
        return total

    def evaluate(self, scenarios: List[Scenario]) -> List[ScenarioOutcome]:
        """Score scenarios against the as-is baseline."""
        baseline = self.required_servers(Scenario(label="baseline"))
        outcomes = []
        for scenario in scenarios:
            required = self.required_servers(scenario)
            # max_rps at the first surviving DC, for reporting.
            survivors = [
                dc for dc in self._datacenters
                if dc not in scenario.retired_datacenters
            ]
            model = self._adjusted_model(self._models[survivors[0]], scenario)
            max_rps = model.max_rps_within(
                self.qos.latency_p95_ms + scenario.latency_slo_delta_ms
            ) * self.safety_margin
            outcomes.append(
                ScenarioOutcome(
                    scenario=scenario,
                    required_servers=required,
                    baseline_servers=baseline,
                    max_rps_per_server=max_rps,
                )
            )
        return outcomes
