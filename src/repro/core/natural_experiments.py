"""§II-B1 — capacity planning using natural experiments.

Unplanned capacity events (datacenter failovers, regional surges) push
pools far beyond their normal operating range, "providing us with
additional data to perform our capacity optimization" without the risk
of deliberate experiments.  This module detects such events in workload
telemetry and checks whether the response models fitted on calm data
still hold through them — the paper's Figs 4-6 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.curves import (
    WorkloadQoSModel,
    WorkloadResourceModel,
    fit_qos_model,
    fit_resource_model,
)
from repro.telemetry.counters import Counter
from repro.telemetry.series import TimeSeries
from repro.telemetry.store import MetricStore
from repro.workload.diurnal import WINDOWS_PER_DAY


@dataclass(frozen=True)
class SurgeEvent:
    """A detected workload surge in one deployment."""

    pool_id: str
    datacenter_id: str
    start_window: int
    stop_window: int
    peak_increase_fraction: float
    median_increase_fraction: float

    @property
    def duration_windows(self) -> int:
        return self.stop_window - self.start_window

    def describe(self) -> str:
        return (
            f"surge in {self.pool_id}@{self.datacenter_id}: windows "
            f"[{self.start_window}, {self.stop_window}), median "
            f"+{self.median_increase_fraction:.0%}, peak "
            f"+{self.peak_increase_fraction:.0%}"
        )


def _expected_baseline(series: TimeSeries) -> np.ndarray:
    """Per-window expected workload from the same time-of-day history.

    For each window, the median of the values observed at the same
    window-of-day on *other* days; diurnal services need a seasonal
    baseline, not a flat one.
    """
    values = series.values
    windows = series.windows
    time_of_day = windows % WINDOWS_PER_DAY
    expected = np.empty_like(values)
    buckets: Dict[int, np.ndarray] = {}
    for tod in np.unique(time_of_day):
        buckets[int(tod)] = values[time_of_day == tod]
    for i, tod in enumerate(time_of_day):
        bucket = buckets[int(tod)]
        if bucket.size > 1:
            expected[i] = np.median(bucket)
        else:
            expected[i] = np.median(values)
    return expected


def detect_surge_events(
    store: MetricStore,
    pool_id: str,
    datacenter_id: str,
    threshold: float = 0.3,
    min_duration_windows: int = 5,
) -> List[SurgeEvent]:
    """Find contiguous runs of workload >= (1 + threshold) x expected."""
    series = store.pool_window_aggregate(
        pool_id, Counter.REQUESTS.value, datacenter_id=datacenter_id, reducer="sum"
    )
    if len(series) < 2 * WINDOWS_PER_DAY:
        # Less than two days of data: a seasonal baseline is undefined.
        return []
    expected = _expected_baseline(series)
    with np.errstate(divide="ignore", invalid="ignore"):
        excess = np.where(expected > 0, series.values / expected - 1.0, 0.0)
    above = excess >= threshold

    events: List[SurgeEvent] = []
    run_start: Optional[int] = None
    for i, flag in enumerate(np.append(above, False)):
        if flag and run_start is None:
            run_start = i
        elif not flag and run_start is not None:
            length = i - run_start
            if length >= min_duration_windows:
                chunk = excess[run_start:i]
                events.append(
                    SurgeEvent(
                        pool_id=pool_id,
                        datacenter_id=datacenter_id,
                        start_window=int(series.windows[run_start]),
                        stop_window=int(series.windows[i - 1]) + 1,
                        peak_increase_fraction=float(chunk.max()),
                        median_increase_fraction=float(np.median(chunk)),
                    )
                )
            run_start = None
    return events


@dataclass(frozen=True)
class NaturalExperimentReport:
    """Did the calm-weather models hold through an event?

    The paper's Fig 5 check: fit on the days around the event, predict
    the event windows, and measure the error.  Small errors mean the
    event *extends* the model's trusted range to loads far beyond what
    deliberate experiments could safely reach.
    """

    event: SurgeEvent
    resource_model: WorkloadResourceModel
    qos_model: WorkloadQoSModel
    cpu_mean_abs_error_pct: float
    cpu_mean_observed_pct: float
    latency_mean_abs_error_ms: float
    latency_mean_observed_ms: float
    max_event_rps_per_server: float
    max_calm_rps_per_server: float

    @property
    def cpu_relative_error(self) -> float:
        if self.cpu_mean_observed_pct == 0:
            return 0.0
        return self.cpu_mean_abs_error_pct / self.cpu_mean_observed_pct

    @property
    def latency_relative_error(self) -> float:
        if self.latency_mean_observed_ms == 0:
            return 0.0
        return self.latency_mean_abs_error_ms / self.latency_mean_observed_ms

    @property
    def load_extension_factor(self) -> float:
        """How far beyond the calm range the event pushed the pool."""
        if self.max_calm_rps_per_server == 0:
            return 1.0
        return self.max_event_rps_per_server / self.max_calm_rps_per_server

    def model_held(self, tolerance: float = 0.15) -> bool:
        """True when both models predicted the event within tolerance."""
        return (
            self.cpu_relative_error <= tolerance
            and self.latency_relative_error <= tolerance
        )


def analyze_natural_experiment(
    store: MetricStore,
    event: SurgeEvent,
    calm_days_before: int = 2,
    calm_days_after: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> NaturalExperimentReport:
    """Fit on calm windows around the event; score on event windows."""
    pool, dc = event.pool_id, event.datacenter_id
    calm_start = max(event.start_window - calm_days_before * WINDOWS_PER_DAY, 0)
    calm_stop = event.stop_window + calm_days_after * WINDOWS_PER_DAY

    def pool_series(counter: str, start: int, stop: int) -> TimeSeries:
        return store.pool_window_aggregate(
            pool, counter, datacenter_id=dc, start=start, stop=stop
        )

    # Calm-period fits exclude the event windows.
    rps_before = pool_series(Counter.REQUESTS.value, calm_start, event.start_window)
    cpu_before = pool_series(
        Counter.PROCESSOR_UTILIZATION.value, calm_start, event.start_window
    )
    lat_before = pool_series(Counter.LATENCY_P95.value, calm_start, event.start_window)
    rps_after = pool_series(Counter.REQUESTS.value, event.stop_window, calm_stop)
    cpu_after = pool_series(
        Counter.PROCESSOR_UTILIZATION.value, event.stop_window, calm_stop
    )
    lat_after = pool_series(Counter.LATENCY_P95.value, event.stop_window, calm_stop)

    from repro.stats.regression import fit_linear
    from repro.stats.ransac import RansacRegressor
    from repro.stats.regression import PolynomialModel

    x1, y1 = rps_before.align_with(cpu_before)
    x2, y2 = rps_after.align_with(cpu_after)
    x_cpu = np.concatenate([x1, x2])
    y_cpu = np.concatenate([y1, y2])
    if x_cpu.size < 10:
        raise ValueError("insufficient calm-period telemetry around the event")
    resource = WorkloadResourceModel(
        pool_id=pool, datacenter_id=dc, model=fit_linear(x_cpu, y_cpu)
    )

    lx1, ly1 = rps_before.align_with(lat_before)
    lx2, ly2 = rps_after.align_with(lat_after)
    x_lat = np.concatenate([lx1, lx2])
    y_lat = np.concatenate([ly1, ly2])
    regressor = RansacRegressor(
        degree=2, rng=rng if rng is not None else np.random.default_rng(0)
    )
    fit = regressor.fit(x_lat, y_lat)
    qos_poly = fit.model
    if isinstance(qos_poly, PolynomialModel):
        qos_poly = PolynomialModel(
            coefficients=qos_poly.coefficients,
            r2=qos_poly.r2,
            n=qos_poly.n,
            residual_std=qos_poly.residual_std,
            x_min=float(x_lat.min()),
            x_max=float(x_lat.max()),
        )
    qos = WorkloadQoSModel(
        pool_id=pool, datacenter_id=dc, model=qos_poly,
        inlier_fraction=fit.inlier_fraction,
    )

    # Event-period scoring.
    rps_event = pool_series(Counter.REQUESTS.value, event.start_window, event.stop_window)
    cpu_event = pool_series(
        Counter.PROCESSOR_UTILIZATION.value, event.start_window, event.stop_window
    )
    lat_event = pool_series(Counter.LATENCY_P95.value, event.start_window, event.stop_window)
    ex, ecpu = rps_event.align_with(cpu_event)
    lex, elat = rps_event.align_with(lat_event)
    if ex.size == 0 or lex.size == 0:
        raise ValueError("no event-period telemetry to score")
    cpu_err = float(np.mean(np.abs(resource.model.predict(ex) - ecpu)))
    lat_err = float(np.mean(np.abs(qos.model.predict(lex) - elat)))

    return NaturalExperimentReport(
        event=event,
        resource_model=resource,
        qos_model=qos,
        cpu_mean_abs_error_pct=cpu_err,
        cpu_mean_observed_pct=float(ecpu.mean()),
        latency_mean_abs_error_ms=lat_err,
        latency_mean_observed_ms=float(elat.mean()),
        max_event_rps_per_server=float(ex.max()),
        max_calm_rps_per_server=float(x_cpu.max()),
    )
