"""Plain-text report rendering.

Every evaluation artefact (Tables I-IV, the per-figure data series) is
rendered as an aligned ASCII table so benches and examples can print
paper-vs-measured comparisons directly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return f"{int(cell)}"
        return f"{cell:.3g}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table with optional title."""
    formatted_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    header_row = [str(h) for h in headers]
    for row in formatted_rows:
        if len(row) != len(header_row):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_row)} columns"
            )
    widths = [len(h) for h in header_row]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(header_row))
    out.append(line(["-" * w for w in widths]))
    for row in formatted_rows:
        out.append(line(row))
    return "\n".join(out)


def format_percent(fraction: float, digits: int = 0) -> str:
    """Render a fraction as a percentage string (0.33 -> '33%')."""
    return f"{fraction * 100:.{digits}f}%"


def format_ms(value: float, digits: int = 1) -> str:
    """Render a millisecond value ('30.9ms')."""
    return f"{value:.{digits}f}ms"
