"""Step 1 — workload-metric validation (§II-A1).

"We assume proper workload metrics have a tight linear correlation
between units of work and increases in their primary limiting
resource. ... If the metric does not correlate well with the limiting
resource then we likely failed to accurately capture the resources
used to process a request.  We use this validation in a feedback loop,
until an accurate result is obtained."

The validator runs exactly that loop against the metric store:

1. fit aggregate workload (RPS) against the limiting resource (CPU)
   per window; accept if R^2 clears the threshold;
2. otherwise split the workload into its per-request-class counters
   (the MemCached per-table fix) and fit a multivariate linear model;
3. independently scan CPU residuals for *periodic* spikes uncorrelated
   with workload (the GB/hour log-upload anomaly) and refit with the
   affected windows removed.

The result records every step so operators can see which fix made the
metric trustworthy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.regression import (
    LinearModel,
    MultiLinearModel,
    fit_linear,
    fit_multilinear,
)
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


class ValidationStatus(enum.Enum):
    """Outcome of the validation loop."""

    VALID_AGGREGATE = "valid_aggregate"
    VALID_PER_CLASS = "valid_per_class"
    VALID_AFTER_ANOMALY_REMOVAL = "valid_after_anomaly_removal"
    INVALID = "invalid"

    @property
    def is_valid(self) -> bool:
        return self is not ValidationStatus.INVALID


@dataclass(frozen=True)
class AnomalyFinding:
    """Periodic background activity discovered in the residuals."""

    period_windows: int
    affected_window_fraction: float
    mean_spike_magnitude: float

    def describe(self) -> str:
        return (
            f"periodic background spike every ~{self.period_windows} windows "
            f"({self.affected_window_fraction:.1%} of windows, "
            f"+{self.mean_spike_magnitude:.1f} CPU pts)"
        )


@dataclass(frozen=True)
class MetricValidationReport:
    """Everything the validation loop learned about one pool's metrics."""

    pool_id: str
    datacenter_id: Optional[str]
    status: ValidationStatus
    aggregate_r2: float
    final_r2: float
    aggregate_model: Optional[LinearModel]
    per_class_model: Optional[MultiLinearModel]
    workload_counters: Tuple[str, ...]
    anomaly: Optional[AnomalyFinding]
    steps: Tuple[str, ...]

    def describe(self) -> str:
        lines = [
            f"pool {self.pool_id}"
            + (f" @ {self.datacenter_id}" if self.datacenter_id else "")
            + f": {self.status.value} "
            f"(aggregate R^2 = {self.aggregate_r2:.3f}, final R^2 = {self.final_r2:.3f})"
        ]
        lines.extend(f"  - {step}" for step in self.steps)
        return "\n".join(lines)


def _remove_windows(
    x: np.ndarray, y: np.ndarray, remove_mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    keep = ~remove_mask
    return x[keep], y[keep]


def _detect_periodic_spikes(
    residuals: np.ndarray,
    min_fraction: float = 0.01,
    max_fraction: float = 0.4,
    sigma_threshold: float = 2.5,
) -> Tuple[Optional[AnomalyFinding], np.ndarray]:
    """Look for sparse positive residual spikes with regular spacing.

    Returns the finding (or None) and a boolean mask of spike windows.
    """
    n = residuals.size
    no_mask = np.zeros(n, dtype=bool)
    if n < 30:
        return None, no_mask
    scale = float(np.std(residuals))
    if scale == 0:
        return None, no_mask
    spikes = residuals > sigma_threshold * scale
    fraction = float(spikes.mean())
    if not min_fraction <= fraction <= max_fraction:
        return None, no_mask
    spike_positions = np.flatnonzero(spikes)
    if spike_positions.size < 3:
        return None, no_mask
    gaps = np.diff(spike_positions)
    gaps = gaps[gaps > 1]  # ignore consecutive windows of one upload
    if gaps.size == 0:
        return None, no_mask
    period = int(np.median(gaps))
    spread = float(np.std(gaps))
    # Regular spacing: most gaps near the median.
    if period >= 2 and spread <= max(0.5 * period, 3.0):
        finding = AnomalyFinding(
            period_windows=period,
            affected_window_fraction=fraction,
            mean_spike_magnitude=float(residuals[spikes].mean()),
        )
        return finding, spikes
    return None, no_mask


class MetricValidator:
    """The §II-A1 feedback loop over a metric store."""

    def __init__(
        self,
        store: MetricStore,
        min_r2: float = 0.9,
        resource_counter: str = Counter.PROCESSOR_UTILIZATION.value,
        workload_counter: str = Counter.REQUESTS.value,
    ) -> None:
        self.store = store
        self.min_r2 = min_r2
        self.resource_counter = resource_counter
        self.workload_counter = workload_counter

    # ------------------------------------------------------------------
    def _aligned_pool_series(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str],
    ):
        return self.store.pool_window_aggregate(
            pool_id, counter, datacenter_id=datacenter_id
        )

    def _per_class_counters(self, pool_id: str) -> List[str]:
        prefix = "Requests/sec["
        return [
            c
            for c in self.store.counters_for_pool(pool_id)
            if c.startswith(prefix)
        ]

    # ------------------------------------------------------------------
    def validate(
        self,
        pool_id: str,
        datacenter_id: Optional[str] = None,
    ) -> MetricValidationReport:
        """Run the full feedback loop for one pool (optionally one DC)."""
        steps: List[str] = []
        workload = self._aligned_pool_series(pool_id, self.workload_counter, datacenter_id)
        resource = self._aligned_pool_series(pool_id, self.resource_counter, datacenter_id)
        x, y = workload.align_with(resource)
        if x.size < 10:
            return MetricValidationReport(
                pool_id=pool_id,
                datacenter_id=datacenter_id,
                status=ValidationStatus.INVALID,
                aggregate_r2=0.0,
                final_r2=0.0,
                aggregate_model=None,
                per_class_model=None,
                workload_counters=(),
                anomaly=None,
                steps=("insufficient data: fewer than 10 aligned windows",),
            )

        aggregate = fit_linear(x, y)
        aggregate_r2 = aggregate.r2
        steps.append(
            f"aggregate workload vs {self.resource_counter}: {aggregate.describe()}"
        )
        best_r2 = aggregate.r2
        status = ValidationStatus.INVALID
        per_class_model: Optional[MultiLinearModel] = None
        counters: Tuple[str, ...] = (self.workload_counter,)
        anomaly: Optional[AnomalyFinding] = None

        if aggregate.r2 >= self.min_r2:
            status = ValidationStatus.VALID_AGGREGATE
            steps.append("accepted: aggregate metric is tight")

        # Step 2: per-class split (the MemCached per-table fix).
        if status is ValidationStatus.INVALID:
            class_counters = self._per_class_counters(pool_id)
            if len(class_counters) >= 2:
                series = [
                    self._aligned_pool_series(pool_id, c, datacenter_id)
                    for c in class_counters
                ]
                # Align every class series with the resource series.
                columns = []
                ys = None
                for s in series:
                    xs_c, ys_c = s.align_with(resource)
                    columns.append(xs_c)
                    ys = ys_c
                lengths = {c.size for c in columns}
                if len(lengths) == 1 and ys is not None and ys.size >= 10:
                    design = np.column_stack(columns)
                    per_class_model = fit_multilinear(design, ys)
                    steps.append(
                        "split workload into "
                        f"{len(class_counters)} per-class metrics: "
                        f"{per_class_model.describe()}"
                    )
                    if per_class_model.r2 >= self.min_r2:
                        status = ValidationStatus.VALID_PER_CLASS
                        counters = tuple(class_counters)
                        best_r2 = per_class_model.r2
                        steps.append("accepted: per-class metrics are tight")

        # Step 3: periodic-anomaly removal (the log-upload discovery).
        if status is ValidationStatus.INVALID:
            residuals = y - aggregate.predict(x)
            anomaly, spike_mask = _detect_periodic_spikes(residuals)
            if anomaly is not None:
                steps.append("found " + anomaly.describe())
                x_clean, y_clean = _remove_windows(x, y, spike_mask)
                if x_clean.size >= 10:
                    cleaned = fit_linear(x_clean, y_clean)
                    steps.append(
                        f"refit without spike windows: {cleaned.describe()}"
                    )
                    if cleaned.r2 >= self.min_r2:
                        status = ValidationStatus.VALID_AFTER_ANOMALY_REMOVAL
                        aggregate = cleaned
                        best_r2 = cleaned.r2
                        steps.append(
                            "accepted: metric is tight once background "
                            "upload windows are excluded"
                        )

        if status is ValidationStatus.INVALID:
            steps.append(
                "rejected: no metric decomposition reached "
                f"R^2 >= {self.min_r2} — instrument new per-workload metrics"
            )

        return MetricValidationReport(
            pool_id=pool_id,
            datacenter_id=datacenter_id,
            status=status,
            aggregate_r2=aggregate_r2,
            final_r2=best_r2,
            aggregate_model=aggregate,
            per_class_model=per_class_model,
            workload_counters=counters,
            anomaly=anomaly,
            steps=tuple(steps),
        )

    def validate_all(
        self,
        datacenter_id: Optional[str] = None,
    ) -> List[MetricValidationReport]:
        """Validate every pool present in the store."""
        return [self.validate(pool, datacenter_id) for pool in self.store.pools]
