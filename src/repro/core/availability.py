"""§III-B2 — server and pool availability analysis.

"We measured the percentage of time each server was online daily ...
the overall average availability was 83 %.  Most servers are online at
least 80 % of the time, with a large population at 85 % and 98 %."

Well-managed pools need only ~2 % downtime for planned maintenance, so
the gap between a pool's availability and the best-practice 98 % is
reclaimable capacity — the "Online Savings" column of Table IV.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.stats.descriptive import histogram_fractions
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore
from repro.workload.diurnal import WINDOWS_PER_DAY

#: Availability achieved by pools with best-practice rolling
#: maintenance (the 98 % mode of Fig 14).
BEST_PRACTICE_AVAILABILITY: float = 0.98


def daily_availability(
    store: MetricStore,
    pool_id: str,
    datacenter_id: Optional[str] = None,
) -> Dict[str, np.ndarray]:
    """Per-server arrays of daily availability fractions.

    A server's availability on a day is the mean of its AVAILABILITY
    counter (1.0 online / 0.0 offline) over that day's windows.
    """
    _windows, names, matrix = store.pool_matrix(
        pool_id, Counter.AVAILABILITY.value, datacenter_id=datacenter_id
    )
    out: Dict[str, np.ndarray] = {}
    if matrix.size == 0:
        return out
    n_windows = matrix.shape[0]
    n_days = n_windows // WINDOWS_PER_DAY
    with warnings.catch_warnings():
        # Server-days with no observations (late joiners) are all-NaN
        # slices; they are dropped below, so the nanmean warning is
        # noise.
        warnings.simplefilter("ignore", category=RuntimeWarning)
        if n_days >= 1:
            # One reshape + nanmean over the dense (window, server)
            # cube replaces the per-server loop; a server's missing
            # windows (NaN) simply don't contribute to its daily mean.
            trimmed = matrix[: n_days * WINDOWS_PER_DAY]
            daily = np.nanmean(
                trimmed.reshape(n_days, WINDOWS_PER_DAY, matrix.shape[1]), axis=1
            )
        else:
            daily = np.nanmean(matrix, axis=0, keepdims=True)
    for column, server_id in enumerate(names):
        values = daily[:, column]
        values = values[~np.isnan(values)]
        if values.size:
            out[server_id] = values
    return out


@dataclass(frozen=True)
class AvailabilityReport:
    """Availability summary for one pool."""

    pool_id: str
    mean_availability: float
    server_daily_values: np.ndarray  # flattened per-server-per-day fractions
    pool_daily_series: np.ndarray  # pool-mean availability per day

    @property
    def online_savings(self) -> float:
        """Capacity reclaimable by adopting best-practice maintenance.

        The fraction of the pool's server-time currently lost beyond
        the best-practice 2 % downtime.
        """
        gap = BEST_PRACTICE_AVAILABILITY - self.mean_availability
        return float(max(gap, 0.0))

    def distribution(self, bin_edges: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of daily server availability (Fig 14 series)."""
        if bin_edges is None:
            bin_edges = np.linspace(0.0, 1.0, 21)
        fractions = histogram_fractions(self.server_daily_values, bin_edges)
        return bin_edges, fractions

    def describe(self) -> str:
        return (
            f"pool {self.pool_id}: mean availability "
            f"{self.mean_availability:.1%}, online savings "
            f"{self.online_savings:.1%}"
        )


def analyze_pool_availability(
    store: MetricStore,
    pool_id: str,
    datacenter_id: Optional[str] = None,
) -> AvailabilityReport:
    """Build the availability report for one pool."""
    per_server = daily_availability(store, pool_id, datacenter_id)
    if not per_server:
        raise ValueError(f"no availability telemetry for pool {pool_id!r}")
    all_days = np.concatenate(list(per_server.values()))
    n_days = max(arr.size for arr in per_server.values())
    pool_daily = np.full(n_days, np.nan)
    for day in range(n_days):
        vals = [arr[day] for arr in per_server.values() if arr.size > day]
        pool_daily[day] = float(np.mean(vals))
    return AvailabilityReport(
        pool_id=pool_id,
        mean_availability=float(all_days.mean()),
        server_daily_values=all_days,
        pool_daily_series=pool_daily,
    )


@dataclass(frozen=True)
class FleetAvailabilityStudy:
    """Fleet-wide availability read-outs (Figs 14-15, §III-B2)."""

    reports: Tuple[AvailabilityReport, ...]

    @property
    def overall_mean(self) -> float:
        all_values = np.concatenate([r.server_daily_values for r in self.reports])
        return float(all_values.mean())

    @property
    def infrastructure_overhead(self) -> float:
        """1 - availability of the best pool (the paper's ~2 % estimate).

        Planned infrastructure maintenance hits every pool; the most
        available pool's downtime approximates that common floor.
        """
        best = max(r.mean_availability for r in self.reports)
        return 1.0 - best

    def availability_histogram(
        self, bin_edges: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fleet-wide Fig 14 distribution."""
        if bin_edges is None:
            bin_edges = np.linspace(0.0, 1.0, 21)
        all_values = np.concatenate([r.server_daily_values for r in self.reports])
        return bin_edges, histogram_fractions(all_values, bin_edges)

    def online_savings_by_pool(self) -> Dict[str, float]:
        return {r.pool_id: r.online_savings for r in self.reports}

    def pool_report(self, pool_id: str) -> AvailabilityReport:
        for report in self.reports:
            if report.pool_id == pool_id:
                return report
        raise KeyError(f"no availability report for pool {pool_id!r}")


def study_fleet_availability(
    store: MetricStore,
    pool_ids: Optional[List[str]] = None,
) -> FleetAvailabilityStudy:
    """Run the availability analysis over many pools."""
    pools = pool_ids if pool_ids is not None else list(store.pools)
    reports = tuple(analyze_pool_availability(store, p) for p in pools)
    if not reports:
        raise ValueError("no pools to analyze")
    return FleetAvailabilityStudy(reports=reports)
