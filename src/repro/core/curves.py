"""Step 2 — the black-box response curves.

Three fitted relationships drive every forecast in the paper:

* :class:`WorkloadResourceModel` — per-server workload vs the limiting
  resource (CPU): **linear** (Figs 5, 8, 10);
* :class:`WorkloadQoSModel` — per-server workload vs 95th-percentile
  latency: **quadratic**, robustly fitted (Figs 6, 9, 11);
* :class:`ServersQoSModel` — Eq. 1: latency vs *server count* within a
  total-load partition, the response surface RSM climbs along.

"Since we do not know the underlying model for the system we are
analyzing, our analysis techniques did not assume the shape of the
underlying data distribution.  We started by trying the simplest
techniques first and found that quadratic polynomials worked" (§III-A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.stats.ransac import RansacModel, RansacRegressor
from repro.stats.regression import LinearModel, PolynomialModel, fit_linear, fit_polynomial
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class WorkloadResourceModel:
    """Linear workload -> limiting-resource model for one deployment."""

    pool_id: str
    datacenter_id: Optional[str]
    model: LinearModel

    def forecast_cpu(self, rps_per_server: float) -> float:
        """Forecast mean CPU (%) at a per-server request rate."""
        return self.model.predict_scalar(rps_per_server)

    def max_rps_at_cpu(self, cpu_pct: float) -> float:
        """Invert the line: the RPS at which CPU reaches ``cpu_pct``."""
        if self.model.slope <= 0:
            raise ValueError("resource model has non-positive slope; cannot invert")
        return (cpu_pct - self.model.intercept) / self.model.slope

    @property
    def r2(self) -> float:
        return self.model.r2


@dataclass(frozen=True)
class WorkloadQoSModel:
    """Quadratic workload -> latency model for one deployment."""

    pool_id: str
    datacenter_id: Optional[str]
    model: PolynomialModel
    inlier_fraction: float = 1.0

    def forecast_latency(self, rps_per_server: float) -> float:
        """Forecast 95th-percentile latency (ms) at a per-server rate."""
        return self.model.predict_scalar(rps_per_server)

    def is_extrapolating(self, rps_per_server: float) -> bool:
        return self.model.is_extrapolating(rps_per_server)

    def max_rps_within(
        self,
        latency_limit_ms: float,
        search_upper_factor: float = 3.0,
    ) -> float:
        """Largest per-server RPS whose forecast latency meets the limit.

        Scans from the fitted range outward (the paper's forecasts are
        deliberate extrapolations); returns the highest admissible rate
        found, or raises if even the lowest observed load violates the
        limit.
        """
        lo = max(self.model.x_min, 0.0)
        hi = self.model.x_max * search_upper_factor
        grid = np.linspace(lo, hi, 2_000)
        latencies = self.model.predict(grid)
        ok = grid[latencies <= latency_limit_ms]
        if ok.size == 0:
            raise ValueError(
                f"latency limit {latency_limit_ms} ms is below the forecast "
                "at every workload level"
            )
        # The curve is convex upward in the operating range; take the
        # largest admissible rate at or beyond the observed range.
        return float(ok.max())

    @property
    def r2(self) -> float:
        return self.model.r2


@dataclass(frozen=True)
class ServersQoSModel:
    """Eq. 1 — latency as a quadratic in server count, per partition.

    ``l ~= a2 * n^2 + a1 * n + a0`` fitted with RANSAC because
    production observations include deployment- and traffic-shift
    outliers (§II-B2).
    """

    pool_id: str
    datacenter_id: str
    partition_index: int
    model: PolynomialModel
    inlier_fraction: float

    def forecast_latency(self, n_servers: float) -> float:
        return self.model.predict_scalar(n_servers)

    def min_servers_within(
        self,
        latency_limit_ms: float,
        n_current: int,
        n_floor: int = 1,
    ) -> int:
        """Smallest server count whose forecast latency meets the limit.

        Scans downward from the current size — the direction RSM
        explores — and stops at the last count that still meets QoS.
        """
        if n_current < n_floor:
            raise ValueError("n_current must be >= n_floor")
        best = n_current
        for n in range(n_current, n_floor - 1, -1):
            if self.forecast_latency(n) <= latency_limit_ms:
                best = n
            else:
                break
        return best


def fit_resource_model(
    store: MetricStore,
    pool_id: str,
    datacenter_id: Optional[str] = None,
    start: Optional[int] = None,
    stop: Optional[int] = None,
) -> WorkloadResourceModel:
    """Fit per-server workload vs CPU from pool-average telemetry."""
    rps = store.pool_window_aggregate(
        pool_id, Counter.REQUESTS.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    cpu = store.pool_window_aggregate(
        pool_id, Counter.PROCESSOR_UTILIZATION.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    x, y = rps.align_with(cpu)
    if x.size < 10:
        raise ValueError(
            f"insufficient aligned telemetry for pool {pool_id!r} "
            f"({x.size} windows)"
        )
    return WorkloadResourceModel(
        pool_id=pool_id,
        datacenter_id=datacenter_id,
        model=fit_linear(x, y),
    )


def fit_qos_model(
    store: MetricStore,
    pool_id: str,
    datacenter_id: Optional[str] = None,
    start: Optional[int] = None,
    stop: Optional[int] = None,
    use_ransac: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> WorkloadQoSModel:
    """Fit per-server workload vs p95 latency (quadratic)."""
    rps = store.pool_window_aggregate(
        pool_id, Counter.REQUESTS.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    latency = store.pool_window_aggregate(
        pool_id, Counter.LATENCY_P95.value, datacenter_id=datacenter_id,
        start=start, stop=stop,
    )
    x, y = rps.align_with(latency)
    if x.size < 10:
        raise ValueError(
            f"insufficient aligned telemetry for pool {pool_id!r} "
            f"({x.size} windows)"
        )
    if use_ransac:
        regressor = RansacRegressor(
            degree=2,
            rng=rng if rng is not None else np.random.default_rng(0),
        )
        result: RansacModel = regressor.fit(x, y)
        model = result.model
        inlier_fraction = result.inlier_fraction
        # RANSAC refits on inliers only; preserve the observed x-range
        # so extrapolation flags stay meaningful.
        if isinstance(model, PolynomialModel):
            model = PolynomialModel(
                coefficients=model.coefficients,
                r2=model.r2,
                n=model.n,
                residual_std=model.residual_std,
                x_min=float(x.min()),
                x_max=float(x.max()),
            )
    else:
        model = fit_polynomial(x, y, degree=2)
        inlier_fraction = 1.0
    return WorkloadQoSModel(
        pool_id=pool_id,
        datacenter_id=datacenter_id,
        model=model,
        inlier_fraction=inlier_fraction,
    )


def fit_pool_response(
    store: MetricStore,
    pool_id: str,
    datacenter_id: Optional[str] = None,
    start: Optional[int] = None,
    stop: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[WorkloadResourceModel, WorkloadQoSModel]:
    """Fit both response curves for one deployment."""
    resource = fit_resource_model(store, pool_id, datacenter_id, start, stop)
    qos = fit_qos_model(store, pool_id, datacenter_id, start, stop, rng=rng)
    return resource, qos


def fit_servers_qos_model(
    n_servers: np.ndarray,
    latencies: np.ndarray,
    pool_id: str,
    datacenter_id: str,
    partition_index: int,
    rng: Optional[np.random.Generator] = None,
) -> ServersQoSModel:
    """Fit Eq. 1 on (server count, latency) observations via RANSAC."""
    ns = np.asarray(n_servers, dtype=float)
    ls = np.asarray(latencies, dtype=float)
    if ns.size < 4:
        raise ValueError(
            f"Eq. 1 fit needs at least 4 observations, got {ns.size}"
        )
    degree = 2 if np.unique(ns).size >= 3 else 1
    regressor = RansacRegressor(
        degree=degree,
        rng=rng if rng is not None else np.random.default_rng(0),
    )
    result = regressor.fit(ns, ls)
    model = result.model
    if isinstance(model, LinearModel):
        model = PolynomialModel(
            coefficients=(0.0, model.slope, model.intercept),
            r2=model.r2,
            n=model.n,
            residual_std=model.residual_std,
            x_min=float(ns.min()),
            x_max=float(ns.max()),
        )
    else:
        model = PolynomialModel(
            coefficients=model.coefficients,
            r2=model.r2,
            n=model.n,
            residual_std=model.residual_std,
            x_min=float(ns.min()),
            x_max=float(ns.max()),
        )
    return ServersQoSModel(
        pool_id=pool_id,
        datacenter_id=datacenter_id,
        partition_index=partition_index,
        model=model,
        inlier_fraction=result.inlier_fraction,
    )
