"""Service Level Objectives and QoS requirements.

"The QoS requirement for each micro-service is defined as a set of
Service Level Objectives (SLOs).  Each SLO is a specific metric and the
minimum threshold of their values.  For example, response latency must
be less than 500 ms, and reliability must be 99.999 %." (§II)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class Direction(enum.Enum):
    """Whether an SLO metric must stay at or below / at or above target."""

    AT_MOST = "at_most"
    AT_LEAST = "at_least"


@dataclass(frozen=True)
class SLO:
    """One objective: a metric name, a threshold, and a direction."""

    metric: str
    threshold: float
    direction: Direction = Direction.AT_MOST

    def is_met(self, value: float) -> bool:
        if self.direction is Direction.AT_MOST:
            return value <= self.threshold
        return value >= self.threshold

    def margin(self, value: float) -> float:
        """Positive when the SLO is met, in the metric's own units."""
        if self.direction is Direction.AT_MOST:
            return self.threshold - value
        return value - self.threshold

    def describe(self) -> str:
        op = "<=" if self.direction is Direction.AT_MOST else ">="
        return f"{self.metric} {op} {self.threshold:g}"


@dataclass(frozen=True)
class QoSRequirement:
    """The QoS contract of one micro-service.

    The paper's evaluation plans against a 95th-percentile latency
    threshold and an availability floor; additional SLOs can be
    attached via ``extra``.
    """

    latency_p95_ms: float
    availability_min: float = 0.9995
    extra: Tuple[SLO, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.latency_p95_ms <= 0:
            raise ValueError("latency_p95_ms must be positive")
        if not 0.0 < self.availability_min <= 1.0:
            raise ValueError("availability_min must be in (0, 1]")

    @property
    def slos(self) -> Tuple[SLO, ...]:
        return (
            SLO("latency_p95_ms", self.latency_p95_ms, Direction.AT_MOST),
            SLO("availability", self.availability_min, Direction.AT_LEAST),
        ) + self.extra

    def is_met(self, measurements: Dict[str, float]) -> bool:
        """True when every SLO with a supplied measurement is met.

        Missing measurements are treated as unmet: capacity planning
        "needs to err on over-allocating capacity to avoid the business
        impact of low QoS" (§II), so an unmeasured objective cannot be
        assumed healthy.
        """
        for slo in self.slos:
            if slo.metric not in measurements:
                return False
            if not slo.is_met(measurements[slo.metric]):
                return False
        return True

    def latency_margin_ms(self, latency_p95_ms: float) -> float:
        """Headroom (ms) between a measured latency and the SLO."""
        return self.latency_p95_ms - latency_p95_ms
