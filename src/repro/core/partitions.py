"""Total-load partitioning (§II-B2's r_idj / t_idj machinery).

"Since the total workload for a micro-service is distributed equally
across all servers in the pool, the total workload is used to partition
historical time points when the pool's servers had comparable loads."

A :class:`LoadPartition` is one bucket r_idj of total pool workload; its
``windows`` are the time set t_idj.  Within a partition the server
count n and the latency l vary while total load is (approximately)
controlled, which is what makes the Eq. 1 fit of latency against server
count valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.telemetry.counters import Counter
from repro.telemetry.series import TimeSeries
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class LoadPartition:
    """One total-workload bucket and the windows falling inside it."""

    index: int
    load_low: float
    load_high: float
    windows: np.ndarray

    @property
    def n_observations(self) -> int:
        return int(self.windows.size)

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.load_low + self.load_high)

    def contains(self, load: float) -> bool:
        return self.load_low <= load < self.load_high


def partition_by_total_load(
    total_load: TimeSeries,
    n_partitions: int = 5,
    min_observations: int = 8,
) -> List[LoadPartition]:
    """Split windows into equal-probability total-load buckets.

    Buckets are quantile-based so each partition has comparable
    observation counts ("working directly with a pool owner we identify
    J_id to ensure sufficient data is available within each heavily
    used partition").  Partitions that still end up with fewer than
    ``min_observations`` windows are dropped — their fits would be
    noise-dominated.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    if total_load.is_empty:
        return []
    loads = total_load.values
    edges = np.quantile(loads, np.linspace(0.0, 1.0, n_partitions + 1))
    # Deduplicate edges (heavy ties collapse partitions rather than
    # producing empty ones).
    edges = np.unique(edges)
    if edges.size < 2:
        edges = np.array([loads.min(), loads.max() + 1e-9])
    partitions: List[LoadPartition] = []
    for j in range(edges.size - 1):
        lo, hi = float(edges[j]), float(edges[j + 1])
        if j == edges.size - 2:
            mask = (loads >= lo) & (loads <= hi)
            hi = hi + 1e-9
        else:
            mask = (loads >= lo) & (loads < hi)
        windows = total_load.windows[mask]
        if windows.size < min_observations:
            continue
        partitions.append(
            LoadPartition(
                index=len(partitions),
                load_low=lo,
                load_high=hi,
                windows=windows,
            )
        )
    return partitions


def partition_observations(
    store: MetricStore,
    pool_id: str,
    datacenter_id: str,
    partition: LoadPartition,
    latency_counter: str = Counter.LATENCY_P95.value,
) -> Tuple[np.ndarray, np.ndarray]:
    """(server counts, latencies) observed inside one partition.

    The server count n_idjk is the number of servers reporting workload
    in the window; the latency l_idjk is the pool-average of the
    latency counter.  Both are restricted to the partition's windows.
    """
    counts = store.pool_window_aggregate(
        pool_id,
        Counter.REQUESTS.value,
        datacenter_id=datacenter_id,
        reducer="count",
    )
    latency = store.pool_window_aggregate(
        pool_id,
        latency_counter,
        datacenter_id=datacenter_id,
        reducer="mean",
    )
    window_set = set(int(w) for w in partition.windows)
    mask_counts = np.array([int(w) in window_set for w in counts.windows])
    counts_in = TimeSeries(counts.windows[mask_counts], counts.values[mask_counts])
    ns, ls = counts_in.align_with(latency)
    return ns, ls
