"""Canonical fleet builders.

Construct fleets that mirror the paper's environment: 9 datacenters
across timezones, the seven Table I micro-services, pool sizes derived
from each team's provisioning habit (peak utilization target), and the
optional pathologies the paper studied — mixed hardware generations
(Fig 3) and multi-workload "noisy" pools (§II-A2's non-tight 45 %).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.datacenter import Datacenter, Fleet, PoolDeployment
from repro.cluster.hardware import GENERATION_2014, GENERATION_2017, HardwareSpec
from repro.cluster.pool import ServerPool
from repro.cluster.service import BackgroundNoise, MicroServiceProfile, service_catalog
from repro.workload.diurnal import DiurnalPattern

#: The nine regions of the studied service (§I), with UTC offsets that
#: rotate the diurnal peak around the globe.
PAPER_DATACENTERS: Tuple[Datacenter, ...] = (
    Datacenter("DC1", "us-west", -8.0),
    Datacenter("DC2", "us-east", -5.0),
    Datacenter("DC3", "brazil", -3.0),
    Datacenter("DC4", "europe-west", 0.0),
    Datacenter("DC5", "europe-central", 1.0),
    Datacenter("DC6", "india", 5.5),
    Datacenter("DC7", "china", 8.0),
    Datacenter("DC8", "japan", 9.0),
    Datacenter("DC9", "australia", 10.0),
)

#: Relative demand weight of each datacenter (population served).
_DC_WEIGHTS: Dict[str, float] = {
    "DC1": 1.0,
    "DC2": 1.2,
    "DC3": 0.6,
    "DC4": 1.1,
    "DC5": 0.9,
    "DC6": 0.8,
    "DC7": 1.3,
    "DC8": 0.7,
    "DC9": 0.4,
}


def peak_rps_per_server(profile: MicroServiceProfile, hardware: HardwareSpec) -> float:
    """Per-server RPS at which CPU hits the provisioning target."""
    target_cpu = profile.provisioned_peak_utilization * 100.0
    idle = profile.noise.idle_cpu_pct
    cost = profile.cpu_cost_per_rps() * hardware.cpu_scale
    if target_cpu <= idle:
        raise ValueError(
            f"profile {profile.name}: provisioning target below idle CPU"
        )
    return (target_cpu - idle) / cost


def pattern_for_deployment(
    profile: MicroServiceProfile,
    datacenter: Datacenter,
    n_servers: int,
    hardware: HardwareSpec,
    demand_weight: float = 1.0,
) -> DiurnalPattern:
    """Demand pattern sized so pool CPU peaks at the provisioning target.

    Inverts the provisioning logic: given the pool size the owning team
    chose, the observed diurnal demand is whatever makes the pool's
    daily CPU peak land on ``provisioned_peak_utilization``.
    """
    shape = DiurnalPattern(
        base_rps=1.0,
        timezone_offset_hours=datacenter.timezone_offset_hours,
    )
    peak_factor = shape.daily_peak()  # peak demand per unit of base
    per_server_peak = peak_rps_per_server(profile, hardware)
    base_total = n_servers * per_server_peak / peak_factor * demand_weight
    return shape.with_base(base_total)


def build_paper_fleet(
    servers_per_deployment: int = 12,
    datacenters: Sequence[Datacenter] = PAPER_DATACENTERS,
    pools: Optional[Sequence[str]] = None,
    seed: int = 0,
    mixed_hardware_pools: Sequence[str] = (),
    newer_hardware_fraction: float = 0.4,
) -> Fleet:
    """The full Table I service: 7 pools x 9 datacenters by default.

    ``mixed_hardware_pools`` lists pool letters deployed on two hardware
    generations (the Fig 3 two-cluster signature).
    """
    if servers_per_deployment < 2:
        raise ValueError("servers_per_deployment must be >= 2")
    rng = np.random.default_rng(seed)
    catalog = service_catalog()
    selected = list(pools) if pools is not None else sorted(catalog)
    unknown = [p for p in selected if p not in catalog]
    if unknown:
        raise KeyError(f"unknown pools: {unknown}")

    fleet = Fleet(list(datacenters))
    for pool_letter in selected:
        profile = catalog[pool_letter]
        for dc in datacenters:
            weight = _DC_WEIGHTS.get(dc.datacenter_id, 1.0)
            hardware_mix: Optional[Dict[HardwareSpec, float]] = None
            if pool_letter in mixed_hardware_pools:
                hardware_mix = {
                    GENERATION_2014: 1.0 - newer_hardware_fraction,
                    GENERATION_2017: newer_hardware_fraction,
                }
            pool = ServerPool.build(
                pool_id=pool_letter,
                datacenter_id=dc.datacenter_id,
                profile=profile,
                n_servers=servers_per_deployment,
                hardware=GENERATION_2014,
                rng=rng,
                hardware_mix=hardware_mix,
            )
            pattern = pattern_for_deployment(
                profile, dc, servers_per_deployment, GENERATION_2014, weight
            )
            fleet.add_deployment(
                PoolDeployment(pool=pool, datacenter=dc, pattern=pattern)
            )
    return fleet


def build_single_pool_fleet(
    pool_letter: str = "B",
    n_datacenters: int = 1,
    servers_per_deployment: int = 50,
    seed: int = 0,
    profile: Optional[MicroServiceProfile] = None,
    hardware_mix: Optional[Dict[HardwareSpec, float]] = None,
) -> Fleet:
    """A focused fleet: one micro-service across a few datacenters.

    Used for the controlled reduction experiments (§III-A) where only
    one pool is under study.
    """
    if n_datacenters < 1 or n_datacenters > len(PAPER_DATACENTERS):
        raise ValueError(
            f"n_datacenters must be in [1, {len(PAPER_DATACENTERS)}]"
        )
    rng = np.random.default_rng(seed)
    if profile is None:
        catalog = service_catalog()
        if pool_letter not in catalog:
            raise KeyError(f"unknown pool {pool_letter!r}")
        profile = catalog[pool_letter]
    datacenters = list(PAPER_DATACENTERS[:n_datacenters])
    fleet = Fleet(datacenters)
    for dc in datacenters:
        weight = _DC_WEIGHTS.get(dc.datacenter_id, 1.0)
        pool = ServerPool.build(
            pool_id=profile.name,
            datacenter_id=dc.datacenter_id,
            profile=profile,
            n_servers=servers_per_deployment,
            hardware=GENERATION_2014,
            rng=rng,
            hardware_mix=hardware_mix,
        )
        pattern = pattern_for_deployment(
            profile, dc, servers_per_deployment, GENERATION_2014, weight
        )
        fleet.add_deployment(PoolDeployment(pool=pool, datacenter=dc, pattern=pattern))
    return fleet


def noisy_variant(profile: MicroServiceProfile, suffix: str = "-noisy") -> MicroServiceProfile:
    """A multi-workload variant of a profile.

    §II-A2: 45 % of pools did *not* show a tight CPU band because they
    ran background administrative tasks alongside the primary workload.
    The variant injects heavy, frequent background activity so its CPU
    percentiles spread out and the workload->CPU regression degrades.
    """
    noise = BackgroundNoise(
        idle_cpu_pct=profile.noise.idle_cpu_pct + 2.0,
        idle_cpu_noise_pct=profile.noise.idle_cpu_noise_pct + 3.5,
        log_upload_period_windows=40,
        log_upload_duration_windows=12,
        log_upload_cpu_pct=9.0,
        log_upload_disk_bytes=profile.noise.log_upload_disk_bytes * 3,
        disk_noise_bytes=profile.noise.disk_noise_bytes * 2,
        memory_pages_noise=profile.noise.memory_pages_noise * 2,
        disk_queue_mean=profile.noise.disk_queue_mean,
    )
    return replace(
        profile,
        name=profile.name + suffix,
        description=profile.description + " (plus background admin tasks)",
        noise=noise,
        cpu_observation_noise=profile.cpu_observation_noise + 0.06,
    )


def build_grouping_study_fleet(
    n_tight_pools: int = 11,
    n_noisy_pools: int = 9,
    servers_per_pool: int = 24,
    n_datacenters: int = 2,
    seed: int = 0,
) -> Tuple[Fleet, Dict[str, int]]:
    """Many small pools, some tight and some noisy, with labels.

    Returns the fleet and a dict pool_id -> label (1 = tight/predictable,
    0 = noisy/multi-workload), the training data for the §II-A2 decision
    tree.  Base profiles are drawn round-robin from the catalogue and
    perturbed slightly so pools are not duplicates.
    """
    rng = np.random.default_rng(seed)
    catalog = service_catalog()
    base_profiles = [catalog[k] for k in sorted(catalog)]
    datacenters = list(PAPER_DATACENTERS[:n_datacenters])
    fleet = Fleet(datacenters)
    labels: Dict[str, int] = {}

    def perturbed(profile: MicroServiceProfile, name: str) -> MicroServiceProfile:
        factor = float(rng.uniform(0.8, 1.25))
        util = float(
            np.clip(
                profile.provisioned_peak_utilization * rng.uniform(0.8, 1.2),
                0.05,
                0.6,
            )
        )
        return replace(
            profile,
            name=name,
            typical_rps_per_server=profile.typical_rps_per_server * factor,
            provisioned_peak_utilization=util,
        )

    total = n_tight_pools + n_noisy_pools
    for i in range(total):
        base = base_profiles[i % len(base_profiles)]
        is_tight = i < n_tight_pools
        name = f"P{i:02d}"
        profile = perturbed(base, name)
        if not is_tight:
            profile = noisy_variant(profile, suffix="")
            profile = replace(profile, name=name)
        labels[name] = 1 if is_tight else 0
        for dc in datacenters:
            pool = ServerPool.build(
                pool_id=name,
                datacenter_id=dc.datacenter_id,
                profile=profile,
                n_servers=servers_per_pool,
                hardware=GENERATION_2014,
                rng=rng,
            )
            pattern = pattern_for_deployment(
                profile, dc, servers_per_pool, GENERATION_2014,
                _DC_WEIGHTS.get(dc.datacenter_id, 1.0),
            )
            fleet.add_deployment(
                PoolDeployment(pool=pool, datacenter=dc, pattern=pattern)
            )
    return fleet, labels
