"""Hardware generations (SKUs).

Fig 3's two-cluster pool turned out to be two hardware generations:
"all servers in the less utilized range are newer and more powerful
than the other" (§II-A2).  A :class:`HardwareSpec` captures the only
property the capacity model cares about — how much CPU a unit of work
costs on that SKU — plus descriptive fields for reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareSpec:
    """One server SKU.

    ``cpu_scale`` multiplies the per-request CPU cost: newer, faster
    hardware has a smaller scale (the same workload consumes fewer
    percentage points of CPU).
    """

    generation: str
    cpu_scale: float
    cores: int = 16
    memory_gb: int = 64
    network_gbps: int = 40

    def __post_init__(self) -> None:
        if self.cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


#: The older consumer-grade SKU most pools run on.
GENERATION_2014 = HardwareSpec(
    generation="gen2014",
    cpu_scale=1.0,
    cores=16,
    memory_gb=64,
    network_gbps=40,
)

#: The newer SKU: ~35 % less CPU per unit of work.
GENERATION_2017 = HardwareSpec(
    generation="gen2017",
    cpu_scale=0.65,
    cores=24,
    memory_gb=128,
    network_gbps=40,
)
