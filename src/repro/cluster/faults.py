"""Failures, maintenance and unplanned capacity events.

Three distinct sources of unavailability shape the paper's §III-B2
analysis:

* **rolling planned maintenance** — software/config/data deployments
  drain a few servers at a time; well-managed pools lose only ~2 % of
  server-time this way (the 98 % availability mode of Fig 14);
* **off-peak repurposing** — some pools lend a large share of their
  servers to offline validation work during the nightly trough (the
  <80 % availability population of Fig 14);
* **unplanned failures** — rare random server crashes.

Separately, *unplanned capacity events* (natural experiments, §II-B1)
shift traffic: a datacenter outage redistributes its demand onto the
surviving datacenters (Figs 4-5), and a regional surge multiplies one
datacenter's demand (the 4x event of Fig 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Protocol

import numpy as np

from repro.workload.diurnal import WINDOWS_PER_DAY


class AvailabilityPolicy(Protocol):
    """Decides, deterministically, whether a server is online.

    Implementations may additionally provide the vectorized
    ``online_mask(n_servers, window) -> np.ndarray`` used by the
    simulator's batched hot path; :func:`policy_online_mask` falls back
    to the per-index method for policies that don't.
    """

    def is_online(self, server_index: int, n_servers: int, window: int) -> bool:
        """True when the server should be serving traffic this window."""
        ...


def policy_online_mask(
    policy: AvailabilityPolicy, n_servers: int, window: int
) -> np.ndarray:
    """Boolean online mask over all of a pool's servers for one window.

    Uses the policy's vectorized ``online_mask`` when available,
    otherwise loops ``is_online`` (custom user policies).
    """
    mask_fn = getattr(policy, "online_mask", None)
    if mask_fn is not None:
        return mask_fn(n_servers, window)
    return np.fromiter(
        (policy.is_online(i, n_servers, window) for i in range(n_servers)),
        dtype=bool,
        count=n_servers,
    )


def policy_online_mask_block(
    policy: AvailabilityPolicy, n_servers: int, windows: np.ndarray
) -> np.ndarray:
    """(n_windows, n_servers) boolean online grid for a window block.

    The cross-window companion of :func:`policy_online_mask`, used by
    the simulator's blocked engine.  Policies may provide a vectorized
    ``online_mask_block(n_servers, windows)``; otherwise the per-window
    mask is stacked, so every policy produces a grid whose rows equal
    its per-window masks exactly.
    """
    block_fn = getattr(policy, "online_mask_block", None)
    if block_fn is not None:
        return block_fn(n_servers, windows)
    return np.stack(
        [policy_online_mask(policy, n_servers, int(w)) for w in windows]
    )


@dataclass(frozen=True)
class AlwaysOnline:
    """No planned downtime at all (used in controlled experiments)."""

    def is_online(self, server_index: int, n_servers: int, window: int) -> bool:
        return True

    def online_mask(self, n_servers: int, window: int) -> np.ndarray:
        return np.ones(n_servers, dtype=bool)

    def online_mask_block(self, n_servers: int, windows: np.ndarray) -> np.ndarray:
        return np.ones((len(windows), n_servers), dtype=bool)


@dataclass(frozen=True)
class RollingMaintenance:
    """Staggered daily maintenance slots.

    Every server is offline for ``daily_downtime_fraction`` of each day;
    slots are staggered across the pool so only a small share of servers
    is out at any instant — the planned-deployment pattern behind the
    98 % availability mode.
    """

    daily_downtime_fraction: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.daily_downtime_fraction < 1.0:
            raise ValueError("daily_downtime_fraction must be in [0, 1)")

    def is_online(self, server_index: int, n_servers: int, window: int) -> bool:
        if self.daily_downtime_fraction == 0.0 or n_servers < 1:
            return True
        downtime = max(int(round(self.daily_downtime_fraction * WINDOWS_PER_DAY)), 1)
        day_offset = window % WINDOWS_PER_DAY
        slot_start = int(server_index / n_servers * WINDOWS_PER_DAY)
        slot_end = slot_start + downtime
        if slot_end <= WINDOWS_PER_DAY:
            return not slot_start <= day_offset < slot_end
        # Slot wraps past midnight.
        return not (day_offset >= slot_start or day_offset < slot_end - WINDOWS_PER_DAY)

    def online_mask(self, n_servers: int, window: int) -> np.ndarray:
        """Vectorized :meth:`is_online` over the whole pool."""
        return self.online_mask_block(
            n_servers, np.array([window], dtype=np.int64)
        )[0]

    def online_mask_block(self, n_servers: int, windows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`online_mask` over a whole window block.

        The single source of the slot math: :meth:`online_mask` is the
        one-window slice of this grid, so the per-window and blocked
        engines can never drift apart.
        """
        windows = np.asarray(windows, dtype=np.int64)
        if self.daily_downtime_fraction == 0.0 or n_servers < 1:
            return np.ones((windows.size, max(n_servers, 0)), dtype=bool)
        downtime = max(int(round(self.daily_downtime_fraction * WINDOWS_PER_DAY)), 1)
        day_offset = (windows % WINDOWS_PER_DAY)[:, None]
        slot_start = (
            np.arange(n_servers, dtype=float) / n_servers * WINDOWS_PER_DAY
        ).astype(np.int64)[None, :]
        slot_end = slot_start + downtime
        plain = (slot_start <= day_offset) & (day_offset < slot_end)
        wrapped = (day_offset >= slot_start) | (day_offset < slot_end - WINDOWS_PER_DAY)
        offline = np.where(slot_end <= WINDOWS_PER_DAY, plain, wrapped)
        return ~offline


@dataclass(frozen=True)
class MaintenancePolicy:
    """Rolling maintenance tuned to hit a target mean availability."""

    target_availability: float = 0.98

    def __post_init__(self) -> None:
        if not 0.0 < self.target_availability <= 1.0:
            raise ValueError("target_availability must be in (0, 1]")

    def is_online(self, server_index: int, n_servers: int, window: int) -> bool:
        rolling = RollingMaintenance(
            daily_downtime_fraction=1.0 - self.target_availability
        )
        return rolling.is_online(server_index, n_servers, window)

    def online_mask(self, n_servers: int, window: int) -> np.ndarray:
        rolling = RollingMaintenance(
            daily_downtime_fraction=1.0 - self.target_availability
        )
        return rolling.online_mask(n_servers, window)

    def online_mask_block(self, n_servers: int, windows: np.ndarray) -> np.ndarray:
        rolling = RollingMaintenance(
            daily_downtime_fraction=1.0 - self.target_availability
        )
        return rolling.online_mask_block(n_servers, windows)


@dataclass(frozen=True)
class RepurposingPolicy:
    """Off-peak repurposing: a rotating subset lent out nightly.

    ``borrowed_fraction`` of servers is taken for offline validation
    during a nightly window of ``night_hours`` hours starting at
    ``night_start_hour`` (local-ish; we use simulation time, which is
    adequate because the policy applies per deployment).  Membership of
    the borrowed subset rotates daily so downtime spreads evenly.
    """

    borrowed_fraction: float
    night_start_hour: float = 1.0
    night_hours: float = 9.0
    base_maintenance: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.borrowed_fraction <= 0.95:
            raise ValueError("borrowed_fraction must be in [0, 0.95]")
        if not 0.0 < self.night_hours < 24.0:
            raise ValueError("night_hours must be in (0, 24)")

    @classmethod
    def for_target_availability(
        cls,
        target_availability: float,
        night_hours: float = 9.0,
    ) -> "RepurposingPolicy":
        """Solve for the borrowed fraction that yields the target.

        Mean availability = 1 - base_maintenance
                              - borrowed_fraction * night_hours / 24.
        """
        base = 0.02
        downtime = 1.0 - target_availability - base
        if downtime <= 0:
            return cls(borrowed_fraction=0.0, night_hours=night_hours)
        fraction = downtime * 24.0 / night_hours
        fraction = min(fraction, 0.95)
        return cls(borrowed_fraction=fraction, night_hours=night_hours)

    def _in_night_window(self, window: int) -> bool:
        hour = (window % WINDOWS_PER_DAY) / WINDOWS_PER_DAY * 24.0
        end = self.night_start_hour + self.night_hours
        if end <= 24.0:
            return self.night_start_hour <= hour < end
        return hour >= self.night_start_hour or hour < end - 24.0

    def is_online(self, server_index: int, n_servers: int, window: int) -> bool:
        if n_servers < 1:
            return True
        maintenance = RollingMaintenance(daily_downtime_fraction=self.base_maintenance)
        if not maintenance.is_online(server_index, n_servers, window):
            return False
        if self.borrowed_fraction == 0.0 or not self._in_night_window(window):
            return True
        day = window // WINDOWS_PER_DAY
        n_borrowed = int(math.floor(self.borrowed_fraction * n_servers))
        if n_borrowed == 0:
            return True
        # Rotate which servers are borrowed each day.
        offset = (day * n_borrowed) % n_servers
        position = (server_index - offset) % n_servers
        return position >= n_borrowed

    def online_mask(self, n_servers: int, window: int) -> np.ndarray:
        """Vectorized :meth:`is_online` over the whole pool."""
        if n_servers < 1:
            return np.ones(0, dtype=bool)
        maintenance = RollingMaintenance(daily_downtime_fraction=self.base_maintenance)
        mask = maintenance.online_mask(n_servers, window)
        if self.borrowed_fraction == 0.0 or not self._in_night_window(window):
            return mask
        day = window // WINDOWS_PER_DAY
        n_borrowed = int(math.floor(self.borrowed_fraction * n_servers))
        if n_borrowed == 0:
            return mask
        offset = (day * n_borrowed) % n_servers
        position = (np.arange(n_servers) - offset) % n_servers
        return mask & (position >= n_borrowed)

    def online_mask_block(self, n_servers: int, windows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`online_mask` over a whole window block.

        Rows equal the per-window masks exactly: the night-window test,
        the daily rotation offset and the borrowed-position test are all
        evaluated on the window vector with the same expressions the
        scalar path uses per window.
        """
        windows = np.asarray(windows, dtype=np.int64)
        if n_servers < 1:
            return np.ones((windows.size, 0), dtype=bool)
        maintenance = RollingMaintenance(daily_downtime_fraction=self.base_maintenance)
        mask = maintenance.online_mask_block(n_servers, windows)
        n_borrowed = int(math.floor(self.borrowed_fraction * n_servers))
        if self.borrowed_fraction == 0.0 or n_borrowed == 0:
            return mask
        hour = (windows % WINDOWS_PER_DAY) / WINDOWS_PER_DAY * 24.0
        end = self.night_start_hour + self.night_hours
        if end <= 24.0:
            night = (self.night_start_hour <= hour) & (hour < end)
        else:
            night = (hour >= self.night_start_hour) | (hour < end - 24.0)
        if not night.any():
            return mask
        # The borrowed subset rotates *daily*: one membership vector per
        # distinct day in the block, applied to that day's night rows.
        day = windows // WINDOWS_PER_DAY
        indices = np.arange(n_servers)
        for d in np.unique(day[night]):
            offset = (int(d) * n_borrowed) % n_servers
            borrowed = ((indices - offset) % n_servers) < n_borrowed
            rows = night & (day == d)
            mask[rows] &= ~borrowed
        return mask


def policy_for_availability(target: float) -> AvailabilityPolicy:
    """Pick the policy class that matches a target mean availability.

    Pools at or above ~94 % run plain rolling maintenance; anything
    lower implies off-peak repurposing (the paper's explanation for the
    low-availability population).
    """
    if not 0.0 < target <= 1.0:
        raise ValueError("target availability must be in (0, 1]")
    if target >= 0.94:
        return MaintenancePolicy(target_availability=target)
    return RepurposingPolicy.for_target_availability(target)


@dataclass(frozen=True)
class RandomFailures:
    """Rare unplanned server crashes.

    Each server independently fails with ``daily_probability`` per day;
    a failure lasts ``duration_windows``.  Deterministic per (server,
    day) via a hash-seeded draw so simulation remains reproducible.
    """

    daily_probability: float = 0.002
    duration_windows: int = 30
    seed: int = 0

    def is_failed(self, server_index: int, window: int) -> bool:
        if self.daily_probability <= 0.0:
            return False
        day = window // WINDOWS_PER_DAY
        draw, start = _failure_draw(self.seed, server_index, day)
        if draw >= self.daily_probability:
            return False
        offset = window % WINDOWS_PER_DAY
        return start <= offset < start + self.duration_windows

    def failed_mask(self, n_servers: int, window: int) -> np.ndarray:
        """Vectorized :meth:`is_failed` over the whole pool.

        The per-(server, day) draws are cached, so the per-server
        generator seeding costs once per day rather than per window.
        """
        if self.daily_probability <= 0.0 or n_servers < 1:
            return np.zeros(max(n_servers, 0), dtype=bool)
        day = window // WINDOWS_PER_DAY
        draws, starts = _failure_draws_for_day(self.seed, n_servers, day)
        offset = window % WINDOWS_PER_DAY
        return (
            (draws < self.daily_probability)
            & (starts <= offset)
            & (offset < starts + self.duration_windows)
        )

    def failed_mask_block(self, n_servers: int, windows: np.ndarray) -> np.ndarray:
        """(n_windows, n_servers) grid of :meth:`failed_mask` rows.

        One cached per-day draw lookup per distinct day in the block
        (instead of one per window), with the day's rows filled by a
        single broadcast comparison.
        """
        windows = np.asarray(windows, dtype=np.int64)
        if self.daily_probability <= 0.0 or n_servers < 1:
            return np.zeros((windows.size, max(n_servers, 0)), dtype=bool)
        out = np.empty((windows.size, n_servers), dtype=bool)
        days = windows // WINDOWS_PER_DAY
        offsets = windows % WINDOWS_PER_DAY
        for day in np.unique(days):
            rows = np.flatnonzero(days == day)
            draws, starts = _failure_draws_for_day(self.seed, n_servers, int(day))
            failed_day = draws < self.daily_probability
            day_offsets = offsets[rows][:, None]
            out[rows] = (
                failed_day[None, :]
                & (starts[None, :] <= day_offsets)
                & (day_offsets < starts[None, :] + self.duration_windows)
            )
        return out


@lru_cache(maxsize=65536)
def _failure_draw(seed: int, server_index: int, day: int) -> tuple:
    """The (uniform draw, outage start window) for one server-day.

    Identical to the pre-vectorization inline draws: one ``random()``
    then one ``integers(0, WINDOWS_PER_DAY)`` from a generator seeded by
    (seed, server, day).  The start is drawn unconditionally so cached
    and uncached paths agree.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, server_index, day]))
    draw = float(rng.random())
    start = int(rng.integers(0, WINDOWS_PER_DAY))
    return draw, start


@lru_cache(maxsize=64)
def _failure_draws_for_day(seed: int, n_servers: int, day: int) -> tuple:
    """Per-server (draws, starts) arrays for one day, cached."""
    draws = np.empty(n_servers, dtype=float)
    starts = np.empty(n_servers, dtype=np.int64)
    for index in range(n_servers):
        draws[index], starts[index] = _failure_draw(seed, index, day)
    return draws, starts


@dataclass(frozen=True)
class DatacenterOutage:
    """A whole-datacenter outage: its traffic fails over elsewhere.

    During [start_window, start_window + duration_windows) the affected
    datacenter serves nothing and every pool's demand there is
    redistributed across that pool's surviving datacenters,
    proportionally to their own demand — the §II-B1 natural experiment
    that raised surviving pools' load by a median 56 % (Fig 4).
    """

    datacenter_id: str
    start_window: int
    duration_windows: int

    def __post_init__(self) -> None:
        if self.duration_windows < 1:
            raise ValueError("duration_windows must be >= 1")
        if self.start_window < 0:
            raise ValueError("start_window must be non-negative")

    def active_at(self, window: int) -> bool:
        return self.start_window <= window < self.start_window + self.duration_windows


@dataclass(frozen=True)
class TrafficSurge:
    """A regional demand surge (the 4x event of Fig 6).

    Multiplies one datacenter's demand for one pool (or all pools when
    ``pool_id`` is None) by ``factor`` during the event.
    """

    datacenter_id: str
    start_window: int
    duration_windows: int
    factor: float
    pool_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if self.duration_windows < 1:
            raise ValueError("duration_windows must be >= 1")

    def active_at(self, window: int) -> bool:
        return self.start_window <= window < self.start_window + self.duration_windows

    def applies_to(self, pool_id: str, datacenter_id: str, window: int) -> bool:
        if not self.active_at(window):
            return False
        if self.datacenter_id != datacenter_id:
            return False
        return self.pool_id is None or self.pool_id == pool_id
