"""Discrete-time fleet simulation engine (columnar hot path).

Advances the fleet window by window (one telemetry window = 120 s):

1. compute each deployment's offered demand from its diurnal pattern,
   multiplicative noise, active surges, and outage-driven failover;
2. apply availability policies, random failures and outages to decide
   which servers are online — as one boolean mask per pool;
3. route traffic evenly across online servers and emit each counter for
   *all* of a pool's servers as one NumPy array
   (:func:`repro.cluster.server.observe_pool`), which the
   :class:`~repro.telemetry.store.MetricStore` ingests through its
   batched :meth:`~repro.telemetry.store.MetricStore.record_batch` API.

The columnar data flow — mask arrays in, counter arrays out, whole
arrays appended per (pool, counter, window) — is what lets thousand
server fleets advance at array speed instead of per-sample Python
speed.  Three interchangeable engines share the experiment controls:

* ``"batch"`` (default) — vectorized emission, batched ingest;
* ``"per-sample"`` — the *same* vectorized emission (identical RNG
  draws, hence bit-identical counter values) ingested one sample at a
  time through the compatibility shims; exists to prove old/new
  equivalence and to measure ingest overhead in isolation;
* ``"legacy"`` — the original per-server ``Server.observe`` loop, kept
  as the seed-faithful baseline for throughput benchmarks.

Interventions — resizing pools, deploying software versions, injecting
outages and surges — are the experimental controls of §II-B and §II-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.datacenter import Fleet, PoolDeployment
from repro.cluster.deployment import SoftwareVersion
from repro.cluster.faults import (
    AvailabilityPolicy,
    DatacenterOutage,
    RandomFailures,
    RepurposingPolicy,
    TrafficSurge,
    policy_for_availability,
    policy_online_mask,
)
from repro.cluster.server import ServerState, observe_pool
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore

#: Counters recorded by default — the planner's working set.
DEFAULT_COUNTERS: Tuple[str, ...] = (
    Counter.REQUESTS.value,
    Counter.PROCESSOR_UTILIZATION.value,
    Counter.LATENCY_P95.value,
    Counter.AVAILABILITY.value,
)

#: Valid values of :attr:`SimulationConfig.engine`.
ENGINES: Tuple[str, ...] = ("batch", "per-sample", "legacy")

_WORKLOAD_PREFIX = "Requests/sec["


@dataclass
class SimulationConfig:
    """Knobs of the simulation engine."""

    #: Which counters to persist (None = all emitted counters).
    counters: Optional[Tuple[str, ...]] = DEFAULT_COUNTERS
    #: Also persist the per-request-class workload counters
    #: ("Requests/sec[...]"), which metric validation needs to split a
    #: noisy aggregate metric (§II-A1).  Their names are per-service,
    #: so they cannot be listed statically in ``counters``.
    record_request_classes: bool = False
    #: Coefficient of variation of per-window demand noise.
    workload_noise: float = 0.04
    #: Enable rare random server crashes.
    random_failures: Optional[RandomFailures] = None
    #: Apply each profile's availability_mean as a policy (True for
    #: fleet studies; False for controlled reduction experiments).
    apply_availability_policies: bool = True
    #: Simulation engine: "batch" (vectorized emission + batched
    #: ingest, the default), "per-sample" (same emission, per-sample
    #: ingest — bit-identical telemetry, used for equivalence tests),
    #: or "legacy" (the original per-server Python loop).
    engine: str = "batch"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )


class Simulator:
    """Drives a :class:`~repro.cluster.datacenter.Fleet` through time."""

    def __init__(
        self,
        fleet: Fleet,
        store: Optional[MetricStore] = None,
        seed: int = 0,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.fleet = fleet
        self.store = store if store is not None else MetricStore()
        self.config = config if config is not None else SimulationConfig()
        self._rng = np.random.default_rng(seed)
        self._window = 0
        self._outages: List[DatacenterOutage] = []
        self._surges: List[TrafficSurge] = []
        self._policies: Dict[Tuple[str, str], AvailabilityPolicy] = {}
        #: Per-deployment cache of interned store index arrays, keyed by
        #: the identity of the pool's server-id tuple so pool resizes
        #: re-intern automatically.
        self._index_cache: Dict[
            Tuple[str, str], Tuple[Tuple[str, ...], np.ndarray]
        ] = {}
        self._wanted_set: frozenset = frozenset()
        if self.config.apply_availability_policies:
            for deployment in fleet.deployments():
                policy = policy_for_availability(
                    deployment.pool.profile.availability_mean
                )
                if isinstance(policy, RepurposingPolicy):
                    # Repurposing happens during the *local* nightly
                    # trough; shift the window by the region's timezone.
                    local_night = (
                        policy.night_start_hour
                        - deployment.datacenter.timezone_offset_hours
                    ) % 24.0
                    policy = replace(policy, night_start_hour=local_night)
                self._policies[(deployment.pool_id, deployment.datacenter_id)] = policy

    # ------------------------------------------------------------------
    # Experimental controls
    # ------------------------------------------------------------------
    @property
    def current_window(self) -> int:
        """Next window to be simulated."""
        return self._window

    def add_outage(self, outage: DatacenterOutage) -> None:
        self.fleet.datacenter(outage.datacenter_id)  # validate id
        self._outages.append(outage)

    def add_surge(self, surge: TrafficSurge) -> None:
        self.fleet.datacenter(surge.datacenter_id)  # validate id
        self._surges.append(surge)

    def set_availability_policy(
        self,
        pool_id: str,
        datacenter_id: str,
        policy: Optional[AvailabilityPolicy],
    ) -> None:
        """Override (or with None, remove) a deployment's policy."""
        self.fleet.deployment(pool_id, datacenter_id)  # validate
        key = (pool_id, datacenter_id)
        if policy is None:
            self._policies.pop(key, None)
        else:
            self._policies[key] = policy

    def resize_pool(self, pool_id: str, datacenter_id: str, n_servers: int) -> None:
        """Change a deployment's server count (the §II-B2 control)."""
        deployment = self.fleet.deployment(pool_id, datacenter_id)
        deployment.pool.resize(n_servers, self._rng)

    def set_version(
        self,
        pool_id: str,
        version: SoftwareVersion,
        datacenter_id: Optional[str] = None,
    ) -> None:
        """Deploy a software version pool-wide or to one datacenter."""
        deployments = (
            [self.fleet.deployment(pool_id, datacenter_id)]
            if datacenter_id is not None
            else self.fleet.deployments_of_pool(pool_id)
        )
        if not deployments:
            raise KeyError(f"pool {pool_id!r} has no deployments")
        for deployment in deployments:
            deployment.pool.set_version(version)

    # ------------------------------------------------------------------
    # Demand
    # ------------------------------------------------------------------
    def _outage_active(self, datacenter_id: str, window: int) -> bool:
        return any(
            o.datacenter_id == datacenter_id and o.active_at(window)
            for o in self._outages
        )

    def _surge_factor(self, pool_id: str, datacenter_id: str, window: int) -> float:
        factor = 1.0
        for surge in self._surges:
            if surge.applies_to(pool_id, datacenter_id, window):
                factor *= surge.factor
        return factor

    def offered_demand(self, window: int) -> Dict[Tuple[str, str], float]:
        """Noise-free demand per (pool, datacenter) after failover.

        Base diurnal demand, scaled by surges, with failed datacenters'
        demand redistributed proportionally over survivors of the same
        pool.
        """
        base: Dict[Tuple[str, str], float] = {}
        for deployment in self.fleet.deployments():
            demand = deployment.pattern.demand_at(window)
            demand *= self._surge_factor(
                deployment.pool_id, deployment.datacenter_id, window
            )
            base[(deployment.pool_id, deployment.datacenter_id)] = demand

        for pool_id in self.fleet.pool_ids:
            failed = [
                dc
                for (pid, dc) in base
                if pid == pool_id and self._outage_active(dc, window)
            ]
            if not failed:
                continue
            survivors = [
                dc
                for (pid, dc) in base
                if pid == pool_id and dc not in failed
            ]
            displaced = sum(base[(pool_id, dc)] for dc in failed)
            for dc in failed:
                base[(pool_id, dc)] = 0.0
            if not survivors or displaced == 0.0:
                continue
            survivor_total = sum(base[(pool_id, dc)] for dc in survivors)
            for dc in survivors:
                if survivor_total > 0:
                    share = base[(pool_id, dc)] / survivor_total
                else:
                    share = 1.0 / len(survivors)
                base[(pool_id, dc)] += displaced * share
        return base

    # ------------------------------------------------------------------
    # Server state
    # ------------------------------------------------------------------
    def _online_mask(self, deployment: PoolDeployment, window: int) -> np.ndarray:
        """Boolean online mask over a deployment's servers.

        Online-ness matches the legacy per-server state machine: a
        server serves traffic iff its datacenter is up, it has not
        randomly crashed, and its availability policy keeps it online.
        """
        n = deployment.pool.size
        if self._outage_active(deployment.datacenter_id, window):
            return np.zeros(n, dtype=bool)
        mask = np.ones(n, dtype=bool)
        failures = self.config.random_failures
        if failures is not None:
            mask &= ~failures.failed_mask(n, window)
        policy = self._policies.get((deployment.pool_id, deployment.datacenter_id))
        if policy is not None:
            mask &= policy_online_mask(policy, n, window)
        return mask

    def _update_server_states(self, deployment: PoolDeployment, window: int) -> None:
        """Per-server state writes — the legacy engine's bookkeeping."""
        pool = deployment.pool
        key = (deployment.pool_id, deployment.datacenter_id)
        policy = self._policies.get(key)
        outage = self._outage_active(deployment.datacenter_id, window)
        failures = self.config.random_failures
        n = pool.size
        for index, server in enumerate(pool.servers):
            if outage:
                server.state = ServerState.OFFLINE_FAILED
            elif failures is not None and failures.is_failed(index, window):
                server.state = ServerState.OFFLINE_FAILED
            elif policy is not None and not policy.is_online(index, n, window):
                server.state = ServerState.OFFLINE_MAINTENANCE
            else:
                server.state = ServerState.ONLINE

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _noisy(self, demand: float) -> float:
        noise = self.config.workload_noise
        if noise <= 0 or demand <= 0:
            return demand
        sigma = np.sqrt(np.log1p(noise**2))
        return float(demand * self._rng.lognormal(-0.5 * sigma**2, sigma))

    def _wanted_counter(self, counter: str) -> bool:
        # Falsy counters (None or empty) means "record everything",
        # matching the legacy engine's truthiness check.
        if not self.config.counters:
            return True
        if counter in self._wanted_set:
            return True
        return self.config.record_request_classes and counter.startswith(
            _WORKLOAD_PREFIX
        )

    def _store_indices(
        self, deployment: PoolDeployment, server_ids: Tuple[str, ...]
    ) -> np.ndarray:
        key = (deployment.pool_id, deployment.datacenter_id)
        entry = self._index_cache.get(key)
        if entry is not None and entry[0] is server_ids:
            return entry[1]
        indices = self.store.intern_servers(server_ids)
        self._index_cache[key] = (server_ids, indices)
        return indices

    def _step_deployment_vector(
        self,
        deployment: PoolDeployment,
        window: int,
        base_demand: float,
        batch: bool,
    ) -> None:
        """Advance one deployment one window through the columnar path."""
        pool = deployment.pool
        pool_id = deployment.pool_id
        dc_id = deployment.datacenter_id
        mask = self._online_mask(deployment, window)
        total = self._noisy(base_demand)
        class_volumes = deployment.mix.split_volume(total, window, self._rng)
        online = np.flatnonzero(mask)
        arrays = pool.server_arrays()

        observations: Dict[str, np.ndarray] = {}
        if online.size:
            m = int(online.size)
            per_server_rps = {
                name: volume / m for name, volume in class_volumes.items()
            }
            observations = observe_pool(
                pool.profile, arrays, online, window, per_server_rps, self._rng
            )
            observations.pop(Counter.AVAILABILITY.value, None)

        store = self.store
        availability = Counter.AVAILABILITY.value
        if batch:
            indices = self._store_indices(deployment, arrays.server_ids)
            if self._wanted_counter(availability):
                store.record_batch(
                    pool_id, dc_id, availability, window, indices, mask.astype(float)
                )
            if online.size:
                online_indices = indices[online]
                for counter, values in observations.items():
                    if self._wanted_counter(counter):
                        store.record_batch(
                            pool_id, dc_id, counter, window, online_indices, values
                        )
        else:
            record = store.record_fast
            server_ids = arrays.server_ids
            if self._wanted_counter(availability):
                for index, value in enumerate(mask):
                    record(
                        window, server_ids[index], pool_id, dc_id,
                        availability, float(value),
                    )
            for counter, values in observations.items():
                if self._wanted_counter(counter):
                    for position, value in zip(online, values):
                        record(
                            window, server_ids[position], pool_id, dc_id,
                            counter, float(value),
                        )

    def _step_legacy(self, window: int, demand: Dict[Tuple[str, str], float]) -> None:
        """The seed per-sample path: per-server observe, per-sample record."""
        wanted = set(self.config.counters) if self.config.counters else None
        record = self.store.record_fast
        for deployment in self.fleet.deployments():
            self._update_server_states(deployment, window)
            total = self._noisy(
                demand[(deployment.pool_id, deployment.datacenter_id)]
            )
            class_volumes = deployment.mix.split_volume(total, window, self._rng)
            observations = deployment.pool.step(window, class_volumes, self._rng)
            pool_id = deployment.pool_id
            dc_id = deployment.datacenter_id
            record_classes = self.config.record_request_classes
            for server_id, counters in observations.items():
                for counter, value in counters.items():
                    if wanted is not None and counter not in wanted:
                        if not (
                            record_classes and counter.startswith(_WORKLOAD_PREFIX)
                        ):
                            continue
                    record(window, server_id, pool_id, dc_id, counter, value)

    def step(self) -> None:
        """Simulate one telemetry window.

        On the vector engines, per-server ``Server.state`` /
        ``working_set_mb`` are *not* maintained window to window (that
        per-server loop is exactly the cost the columnar path removes);
        :meth:`run` reconciles them on completion.  Callers driving
        ``step()`` directly and reading pool state mid-run must call
        :meth:`sync_server_state` first — telemetry in the store is
        always correct either way.
        """
        window = self._window
        demand = self.offered_demand(window)
        engine = self.config.engine
        if engine == "legacy":
            self._step_legacy(window, demand)
        else:
            self._wanted_set = (
                set(self.config.counters) if self.config.counters else frozenset()
            )
            batch = engine == "batch"
            for deployment in self.fleet.deployments():
                self._step_deployment_vector(
                    deployment,
                    window,
                    demand[(deployment.pool_id, deployment.datacenter_id)],
                    batch,
                )
        self._window += 1

    def sync_server_state(self) -> None:
        """Write the vector engines' state back onto the Server objects.

        The columnar hot path tracks online-ness as masks and working
        sets as cached arrays, leaving ``Server.state`` /
        ``Server.working_set_mb`` untouched window to window.  This
        reconciles them with the last simulated window so post-run
        introspection (``pool.online_servers()``, leak inspection)
        sees what the legacy engine would have left behind.  Called
        automatically at the end of :meth:`run`.
        """
        if self._window == 0 or self.config.engine == "legacy":
            return
        last_window = self._window - 1
        for deployment in self.fleet.deployments():
            self._update_server_states(deployment, last_window)
            deployment.pool.flush_arrays()

    def run(self, n_windows: int) -> None:
        """Simulate ``n_windows`` consecutive windows."""
        if n_windows < 0:
            raise ValueError("n_windows must be non-negative")
        for _ in range(n_windows):
            self.step()
        self.sync_server_state()

    def run_days(self, days: float) -> None:
        """Simulate a number of days (720 windows per day)."""
        from repro.workload.diurnal import WINDOWS_PER_DAY

        self.run(int(round(days * WINDOWS_PER_DAY)))
