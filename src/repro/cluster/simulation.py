"""Discrete-time fleet simulation engine.

Advances the fleet window by window (one telemetry window = 120 s):

1. compute each deployment's offered demand from its diurnal pattern,
   multiplicative noise, active surges, and outage-driven failover;
2. apply availability policies, random failures and outages to decide
   which servers are online;
3. route traffic evenly across online servers and collect each
   server's counter observations into the :class:`MetricStore`.

Interventions — resizing pools, deploying software versions, injecting
outages and surges — are the experimental controls of §II-B and §II-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.datacenter import Fleet, PoolDeployment
from repro.cluster.deployment import SoftwareVersion
from repro.cluster.faults import (
    AvailabilityPolicy,
    DatacenterOutage,
    RandomFailures,
    RepurposingPolicy,
    TrafficSurge,
    policy_for_availability,
)
from repro.cluster.server import ServerState
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore

#: Counters recorded by default — the planner's working set.
DEFAULT_COUNTERS: Tuple[str, ...] = (
    Counter.REQUESTS.value,
    Counter.PROCESSOR_UTILIZATION.value,
    Counter.LATENCY_P95.value,
    Counter.AVAILABILITY.value,
)


@dataclass
class SimulationConfig:
    """Knobs of the simulation engine."""

    #: Which counters to persist (None = all emitted counters).
    counters: Optional[Tuple[str, ...]] = DEFAULT_COUNTERS
    #: Also persist the per-request-class workload counters
    #: ("Requests/sec[...]"), which metric validation needs to split a
    #: noisy aggregate metric (§II-A1).  Their names are per-service,
    #: so they cannot be listed statically in ``counters``.
    record_request_classes: bool = False
    #: Coefficient of variation of per-window demand noise.
    workload_noise: float = 0.04
    #: Enable rare random server crashes.
    random_failures: Optional[RandomFailures] = None
    #: Apply each profile's availability_mean as a policy (True for
    #: fleet studies; False for controlled reduction experiments).
    apply_availability_policies: bool = True


class Simulator:
    """Drives a :class:`~repro.cluster.datacenter.Fleet` through time."""

    def __init__(
        self,
        fleet: Fleet,
        store: Optional[MetricStore] = None,
        seed: int = 0,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.fleet = fleet
        self.store = store if store is not None else MetricStore()
        self.config = config if config is not None else SimulationConfig()
        self._rng = np.random.default_rng(seed)
        self._window = 0
        self._outages: List[DatacenterOutage] = []
        self._surges: List[TrafficSurge] = []
        self._policies: Dict[Tuple[str, str], AvailabilityPolicy] = {}
        if self.config.apply_availability_policies:
            for deployment in fleet.deployments():
                policy = policy_for_availability(
                    deployment.pool.profile.availability_mean
                )
                if isinstance(policy, RepurposingPolicy):
                    # Repurposing happens during the *local* nightly
                    # trough; shift the window by the region's timezone.
                    local_night = (
                        policy.night_start_hour
                        - deployment.datacenter.timezone_offset_hours
                    ) % 24.0
                    policy = replace(policy, night_start_hour=local_night)
                self._policies[(deployment.pool_id, deployment.datacenter_id)] = policy

    # ------------------------------------------------------------------
    # Experimental controls
    # ------------------------------------------------------------------
    @property
    def current_window(self) -> int:
        """Next window to be simulated."""
        return self._window

    def add_outage(self, outage: DatacenterOutage) -> None:
        self.fleet.datacenter(outage.datacenter_id)  # validate id
        self._outages.append(outage)

    def add_surge(self, surge: TrafficSurge) -> None:
        self.fleet.datacenter(surge.datacenter_id)  # validate id
        self._surges.append(surge)

    def set_availability_policy(
        self,
        pool_id: str,
        datacenter_id: str,
        policy: Optional[AvailabilityPolicy],
    ) -> None:
        """Override (or with None, remove) a deployment's policy."""
        self.fleet.deployment(pool_id, datacenter_id)  # validate
        key = (pool_id, datacenter_id)
        if policy is None:
            self._policies.pop(key, None)
        else:
            self._policies[key] = policy

    def resize_pool(self, pool_id: str, datacenter_id: str, n_servers: int) -> None:
        """Change a deployment's server count (the §II-B2 control)."""
        deployment = self.fleet.deployment(pool_id, datacenter_id)
        deployment.pool.resize(n_servers, self._rng)

    def set_version(
        self,
        pool_id: str,
        version: SoftwareVersion,
        datacenter_id: Optional[str] = None,
    ) -> None:
        """Deploy a software version pool-wide or to one datacenter."""
        deployments = (
            [self.fleet.deployment(pool_id, datacenter_id)]
            if datacenter_id is not None
            else self.fleet.deployments_of_pool(pool_id)
        )
        if not deployments:
            raise KeyError(f"pool {pool_id!r} has no deployments")
        for deployment in deployments:
            deployment.pool.set_version(version)

    # ------------------------------------------------------------------
    # Demand
    # ------------------------------------------------------------------
    def _outage_active(self, datacenter_id: str, window: int) -> bool:
        return any(
            o.datacenter_id == datacenter_id and o.active_at(window)
            for o in self._outages
        )

    def _surge_factor(self, pool_id: str, datacenter_id: str, window: int) -> float:
        factor = 1.0
        for surge in self._surges:
            if surge.applies_to(pool_id, datacenter_id, window):
                factor *= surge.factor
        return factor

    def offered_demand(self, window: int) -> Dict[Tuple[str, str], float]:
        """Noise-free demand per (pool, datacenter) after failover.

        Base diurnal demand, scaled by surges, with failed datacenters'
        demand redistributed proportionally over survivors of the same
        pool.
        """
        base: Dict[Tuple[str, str], float] = {}
        for deployment in self.fleet.deployments():
            demand = deployment.pattern.demand_at(window)
            demand *= self._surge_factor(
                deployment.pool_id, deployment.datacenter_id, window
            )
            base[(deployment.pool_id, deployment.datacenter_id)] = demand

        for pool_id in self.fleet.pool_ids:
            failed = [
                dc
                for (pid, dc) in base
                if pid == pool_id and self._outage_active(dc, window)
            ]
            if not failed:
                continue
            survivors = [
                dc
                for (pid, dc) in base
                if pid == pool_id and dc not in failed
            ]
            displaced = sum(base[(pool_id, dc)] for dc in failed)
            for dc in failed:
                base[(pool_id, dc)] = 0.0
            if not survivors or displaced == 0.0:
                continue
            survivor_total = sum(base[(pool_id, dc)] for dc in survivors)
            for dc in survivors:
                if survivor_total > 0:
                    share = base[(pool_id, dc)] / survivor_total
                else:
                    share = 1.0 / len(survivors)
                base[(pool_id, dc)] += displaced * share
        return base

    # ------------------------------------------------------------------
    # State updates
    # ------------------------------------------------------------------
    def _update_server_states(self, deployment: PoolDeployment, window: int) -> None:
        pool = deployment.pool
        key = (deployment.pool_id, deployment.datacenter_id)
        policy = self._policies.get(key)
        outage = self._outage_active(deployment.datacenter_id, window)
        failures = self.config.random_failures
        n = pool.size
        for index, server in enumerate(pool.servers):
            if outage:
                server.state = ServerState.OFFLINE_FAILED
            elif failures is not None and failures.is_failed(index, window):
                server.state = ServerState.OFFLINE_FAILED
            elif policy is not None and not policy.is_online(index, n, window):
                server.state = ServerState.OFFLINE_MAINTENANCE
            else:
                server.state = ServerState.ONLINE

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _noisy(self, demand: float) -> float:
        noise = self.config.workload_noise
        if noise <= 0 or demand <= 0:
            return demand
        sigma = np.sqrt(np.log1p(noise**2))
        return float(demand * self._rng.lognormal(-0.5 * sigma**2, sigma))

    def step(self) -> None:
        """Simulate one telemetry window."""
        window = self._window
        demand = self.offered_demand(window)
        wanted = set(self.config.counters) if self.config.counters else None
        record = self.store.record_fast
        for deployment in self.fleet.deployments():
            self._update_server_states(deployment, window)
            total = self._noisy(
                demand[(deployment.pool_id, deployment.datacenter_id)]
            )
            class_volumes = deployment.mix.split_volume(total, window, self._rng)
            observations = deployment.pool.step(window, class_volumes, self._rng)
            pool_id = deployment.pool_id
            dc_id = deployment.datacenter_id
            record_classes = self.config.record_request_classes
            for server_id, counters in observations.items():
                for counter, value in counters.items():
                    if wanted is not None and counter not in wanted:
                        if not (
                            record_classes and counter.startswith("Requests/sec[")
                        ):
                            continue
                    record(window, server_id, pool_id, dc_id, counter, value)
        self._window += 1

    def run(self, n_windows: int) -> None:
        """Simulate ``n_windows`` consecutive windows."""
        if n_windows < 0:
            raise ValueError("n_windows must be non-negative")
        for _ in range(n_windows):
            self.step()

    def run_days(self, days: float) -> None:
        """Simulate a number of days (720 windows per day)."""
        from repro.workload.diurnal import WINDOWS_PER_DAY

        self.run(int(round(days * WINDOWS_PER_DAY)))
