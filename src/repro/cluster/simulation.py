"""Discrete-time fleet simulation engine (columnar hot path).

Advances the fleet window by window (one telemetry window = 120 s):

1. compute each deployment's offered demand from its diurnal pattern,
   multiplicative noise, active surges, and outage-driven failover;
2. apply availability policies, random failures and outages to decide
   which servers are online — as one boolean mask per pool;
3. route traffic evenly across online servers and emit each counter for
   *all* of a pool's servers as one NumPy array
   (:func:`repro.cluster.server.observe_pool`), which the
   :class:`~repro.telemetry.store.MetricStore` ingests through its
   batched :meth:`~repro.telemetry.store.MetricStore.record_batch` API.

The columnar data flow — mask arrays in, counter arrays out, whole
arrays appended per (pool, counter, window) — is what lets thousand
server fleets advance at array speed instead of per-sample Python
speed.  Three interchangeable engines share the experiment controls:

* ``"batch"`` (default) — vectorized emission, batched ingest;
* ``"per-sample"`` — the *same* vectorized emission (identical RNG
  draws, hence bit-identical counter values) ingested one sample at a
  time through the compatibility shims; exists to prove old/new
  equivalence and to measure ingest overhead in isolation;
* ``"legacy"`` — the original per-server ``Server.observe`` loop, kept
  as the seed-faithful baseline for throughput benchmarks.

The ``batch`` engine additionally supports **cross-window block
emission** (:attr:`SimulationConfig.block_windows` > 1): the fleet
advances ``block_windows`` windows per step, each deployment emitting
one (windows x servers) block per counter through
:func:`repro.cluster.server.observe_pool_block` and ingesting it with a
single ``record_columns`` call — amortizing the per-window Python and
RNG-call overhead that dominates small fleets.  A block of one window
is bit-identical to per-window batch stepping; larger blocks are
statistically equivalent (identical availability masks and sample
counts, same distributions, different RNG draw shapes).

The store may be a single :class:`~repro.telemetry.store.MetricStore`
or a :class:`~repro.telemetry.sharding.ShardedMetricStore`; the
simulator only uses the shared ingest/interning surface, and sharded
telemetry is bit-identical to single-store telemetry either way.

Interventions — resizing pools, deploying software versions, injecting
outages and surges — are the experimental controls of §II-B and §II-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.datacenter import Fleet, PoolDeployment
from repro.cluster.deployment import SoftwareVersion
from repro.cluster.faults import (
    AvailabilityPolicy,
    DatacenterOutage,
    RandomFailures,
    RepurposingPolicy,
    TrafficSurge,
    policy_for_availability,
    policy_online_mask,
    policy_online_mask_block,
)
from repro.cluster.server import ServerState, observe_pool, observe_pool_block
from repro.telemetry.counters import Counter, workload_counter
from repro.telemetry.sharding import ShardedMetricStore
from repro.telemetry.store import MetricStore
from repro.workload.demand_engine import DemandEngine

#: Anything the simulator can ingest into: a single store or a shard set.
StoreLike = Union[MetricStore, ShardedMetricStore]

#: Counters recorded by default — the planner's working set.
DEFAULT_COUNTERS: Tuple[str, ...] = (
    Counter.REQUESTS.value,
    Counter.PROCESSOR_UTILIZATION.value,
    Counter.LATENCY_P95.value,
    Counter.AVAILABILITY.value,
)

#: Valid values of :attr:`SimulationConfig.engine`.
ENGINES: Tuple[str, ...] = ("batch", "per-sample", "legacy")

_WORKLOAD_PREFIX = "Requests/sec["


@dataclass
class SimulationConfig:
    """Knobs of the simulation engine."""

    #: Which counters to persist (None = all emitted counters).
    counters: Optional[Tuple[str, ...]] = DEFAULT_COUNTERS
    #: Also persist the per-request-class workload counters
    #: ("Requests/sec[...]"), which metric validation needs to split a
    #: noisy aggregate metric (§II-A1).  Their names are per-service,
    #: so they cannot be listed statically in ``counters``.
    record_request_classes: bool = False
    #: Coefficient of variation of per-window demand noise.
    workload_noise: float = 0.04
    #: Enable rare random server crashes.
    random_failures: Optional[RandomFailures] = None
    #: Apply each profile's availability_mean as a policy (True for
    #: fleet studies; False for controlled reduction experiments).
    apply_availability_policies: bool = True
    #: Simulation engine: "batch" (vectorized emission + batched
    #: ingest, the default), "per-sample" (same emission, per-sample
    #: ingest — bit-identical telemetry, used for equivalence tests),
    #: or "legacy" (the original per-server Python loop).
    engine: str = "batch"
    #: Cross-window block size for the batch engine: :meth:`Simulator.run`
    #: advances the fleet this many windows per step, emitting one
    #: (windows x servers) block per counter per deployment.  1 (the
    #: default) is plain per-window batch stepping; >1 requires the
    #: "batch" engine.
    block_windows: int = 1

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.block_windows < 1:
            raise ValueError("block_windows must be >= 1")
        if self.block_windows > 1 and self.engine != "batch":
            raise ValueError(
                "block_windows > 1 requires the 'batch' engine "
                f"(got engine={self.engine!r})"
            )


class Simulator:
    """Drives a :class:`~repro.cluster.datacenter.Fleet` through time.

    ``store`` may be a :class:`~repro.telemetry.store.MetricStore`
    (default) or a :class:`~repro.telemetry.sharding.ShardedMetricStore`
    — telemetry recorded through either is bit-identical.  ``config``
    picks the engine and, for the batch engine, the cross-window block
    size (see :class:`SimulationConfig` and :meth:`run` for the
    equivalence guarantees of each path).
    """

    def __init__(
        self,
        fleet: Fleet,
        store: Optional[StoreLike] = None,
        seed: int = 0,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.fleet = fleet
        self.store = store if store is not None else MetricStore()
        self.config = config if config is not None else SimulationConfig()
        self._rng = np.random.default_rng(seed)
        self._window = 0
        self._outages: List[DatacenterOutage] = []
        self._surges: List[TrafficSurge] = []
        self._policies: Dict[Tuple[str, str], AvailabilityPolicy] = {}
        #: Per-deployment cache of interned store index arrays, keyed by
        #: the identity of the pool's server-id tuple so pool resizes
        #: re-intern automatically.
        self._index_cache: Dict[
            Tuple[str, str], Tuple[Tuple[str, ...], np.ndarray]
        ] = {}
        self._wanted_set: frozenset = frozenset()
        #: Columnar demand engine: holds references to the (growing)
        #: outage/surge lists, so events added mid-run are picked up.
        self._demand_engine = DemandEngine(fleet, self._outages, self._surges)
        #: Per-deployment cache of the emission counter set passed to
        #: the observe functions (None = emit everything).
        self._emit_cache: Dict[Tuple[str, str], Tuple[tuple, FrozenSet[str]]] = {}
        #: Cumulative seconds per stage of the blocked engine
        #: (demand tensor build / counter emission / store ingest);
        #: per-window engines leave these at zero.
        self.stage_seconds: Dict[str, float] = {
            "demand": 0.0, "observe": 0.0, "ingest": 0.0,
        }
        if self.config.apply_availability_policies:
            for deployment in fleet.deployments():
                policy = policy_for_availability(
                    deployment.pool.profile.availability_mean
                )
                if isinstance(policy, RepurposingPolicy):
                    # Repurposing happens during the *local* nightly
                    # trough; shift the window by the region's timezone.
                    local_night = (
                        policy.night_start_hour
                        - deployment.datacenter.timezone_offset_hours
                    ) % 24.0
                    policy = replace(policy, night_start_hour=local_night)
                self._policies[(deployment.pool_id, deployment.datacenter_id)] = policy

    # ------------------------------------------------------------------
    # Experimental controls
    # ------------------------------------------------------------------
    @property
    def current_window(self) -> int:
        """Next window to be simulated."""
        return self._window

    def add_outage(self, outage: DatacenterOutage) -> None:
        self.fleet.datacenter(outage.datacenter_id)  # validate id
        self._outages.append(outage)

    def add_surge(self, surge: TrafficSurge) -> None:
        self.fleet.datacenter(surge.datacenter_id)  # validate id
        self._surges.append(surge)

    def set_availability_policy(
        self,
        pool_id: str,
        datacenter_id: str,
        policy: Optional[AvailabilityPolicy],
    ) -> None:
        """Override (or with None, remove) a deployment's policy."""
        self.fleet.deployment(pool_id, datacenter_id)  # validate
        key = (pool_id, datacenter_id)
        if policy is None:
            self._policies.pop(key, None)
        else:
            self._policies[key] = policy

    def resize_pool(self, pool_id: str, datacenter_id: str, n_servers: int) -> None:
        """Change a deployment's server count (the §II-B2 control)."""
        deployment = self.fleet.deployment(pool_id, datacenter_id)
        deployment.pool.resize(n_servers, self._rng)

    def set_version(
        self,
        pool_id: str,
        version: SoftwareVersion,
        datacenter_id: Optional[str] = None,
    ) -> None:
        """Deploy a software version pool-wide or to one datacenter."""
        deployments = (
            [self.fleet.deployment(pool_id, datacenter_id)]
            if datacenter_id is not None
            else self.fleet.deployments_of_pool(pool_id)
        )
        if not deployments:
            raise KeyError(f"pool {pool_id!r} has no deployments")
        for deployment in deployments:
            deployment.pool.set_version(version)

    # ------------------------------------------------------------------
    # Demand
    # ------------------------------------------------------------------
    def _outage_active(self, datacenter_id: str, window: int) -> bool:
        return self._demand_engine.outage_active(datacenter_id, window)

    def _surge_factor(self, pool_id: str, datacenter_id: str, window: int) -> float:
        return self._demand_engine.surge_factor(pool_id, datacenter_id, window)

    def offered_demand(self, window: int) -> Dict[Tuple[str, str], float]:
        """Noise-free demand per (pool, datacenter) after failover.

        Base diurnal demand, scaled by surges, with failed datacenters'
        demand redistributed proportionally over survivors of the same
        pool.  Literally the one-window slice of the columnar
        :meth:`~repro.workload.demand_engine.DemandEngine.compute_demand_block`,
        so the per-window and blocked engines share one demand code path
        and can never drift apart.
        """
        block = self._demand_engine.compute_demand_block(
            np.array([window], dtype=np.int64)
        )
        return block.row_dict(0)

    # ------------------------------------------------------------------
    # Server state
    # ------------------------------------------------------------------
    def _online_mask(self, deployment: PoolDeployment, window: int) -> np.ndarray:
        """Boolean online mask over a deployment's servers.

        Online-ness matches the legacy per-server state machine: a
        server serves traffic iff its datacenter is up, it has not
        randomly crashed, and its availability policy keeps it online.
        """
        n = deployment.pool.size
        if self._outage_active(deployment.datacenter_id, window):
            return np.zeros(n, dtype=bool)
        mask = np.ones(n, dtype=bool)
        failures = self.config.random_failures
        if failures is not None:
            mask &= ~failures.failed_mask(n, window)
        policy = self._policies.get((deployment.pool_id, deployment.datacenter_id))
        if policy is not None:
            mask &= policy_online_mask(policy, n, window)
        return mask

    def _update_server_states(self, deployment: PoolDeployment, window: int) -> None:
        """Per-server state writes — the legacy engine's bookkeeping."""
        pool = deployment.pool
        key = (deployment.pool_id, deployment.datacenter_id)
        policy = self._policies.get(key)
        outage = self._outage_active(deployment.datacenter_id, window)
        failures = self.config.random_failures
        n = pool.size
        for index, server in enumerate(pool.servers):
            if outage:
                server.state = ServerState.OFFLINE_FAILED
            elif failures is not None and failures.is_failed(index, window):
                server.state = ServerState.OFFLINE_FAILED
            elif policy is not None and not policy.is_online(index, n, window):
                server.state = ServerState.OFFLINE_MAINTENANCE
            else:
                server.state = ServerState.ONLINE

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _noisy(self, demand: float) -> float:
        noise = self.config.workload_noise
        if noise <= 0 or demand <= 0:
            return demand
        sigma = np.sqrt(np.log1p(noise**2))
        return float(demand * self._rng.lognormal(-0.5 * sigma**2, sigma))

    def _wanted_counter(self, counter: str) -> bool:
        # Falsy counters (None or empty) means "record everything",
        # matching the legacy engine's truthiness check.
        if not self.config.counters:
            return True
        if counter in self._wanted_set:
            return True
        return self.config.record_request_classes and counter.startswith(
            _WORKLOAD_PREFIX
        )

    def _emit_counters(self, deployment: PoolDeployment) -> Optional[FrozenSet[str]]:
        """The counter set the observe functions should emit (None = all).

        The config's wanted counters plus, when request classes are
        recorded, the deployment's per-class workload counters.  Cached
        per deployment and revalidated against the config so mid-run
        config edits take effect.
        """
        config = self.config
        if not config.counters:
            return None
        key = (deployment.pool_id, deployment.datacenter_id)
        marker = (config.counters, config.record_request_classes)
        entry = self._emit_cache.get(key)
        if entry is not None and entry[0] == marker:
            return entry[1]
        wanted = set(config.counters)
        if config.record_request_classes:
            wanted.update(
                workload_counter(name) for name in deployment.mix.class_names
            )
        result = frozenset(wanted)
        self._emit_cache[key] = (marker, result)
        return result

    def _store_indices(
        self, deployment: PoolDeployment, server_ids: Tuple[str, ...]
    ) -> np.ndarray:
        key = (deployment.pool_id, deployment.datacenter_id)
        entry = self._index_cache.get(key)
        if entry is not None and entry[0] is server_ids:
            return entry[1]
        indices = self.store.intern_servers(server_ids)
        self._index_cache[key] = (server_ids, indices)
        return indices

    def _step_deployment_vector(
        self,
        deployment: PoolDeployment,
        window: int,
        base_demand: float,
        batch: bool,
    ) -> None:
        """Advance one deployment one window through the columnar path."""
        pool = deployment.pool
        pool_id = deployment.pool_id
        dc_id = deployment.datacenter_id
        mask = self._online_mask(deployment, window)
        total = self._noisy(base_demand)
        class_volumes = deployment.mix.split_volume(total, window, self._rng)
        online = np.flatnonzero(mask)
        arrays = pool.server_arrays()

        observations: Dict[str, np.ndarray] = {}
        if online.size:
            m = int(online.size)
            per_server_rps = {
                name: volume / m for name, volume in class_volumes.items()
            }
            observations = observe_pool(
                pool.profile, arrays, online, window, per_server_rps, self._rng,
                self._emit_counters(deployment),
            )
            observations.pop(Counter.AVAILABILITY.value, None)

        store = self.store
        availability = Counter.AVAILABILITY.value
        if batch:
            indices = self._store_indices(deployment, arrays.server_ids)
            if self._wanted_counter(availability):
                store.record_batch(
                    pool_id, dc_id, availability, window, indices, mask.astype(float)
                )
            if online.size:
                online_indices = indices[online]
                for counter, values in observations.items():
                    if self._wanted_counter(counter):
                        store.record_batch(
                            pool_id, dc_id, counter, window, online_indices, values
                        )
        else:
            record = store.record_fast
            server_ids = arrays.server_ids
            if self._wanted_counter(availability):
                for index, value in enumerate(mask):
                    record(
                        window, server_ids[index], pool_id, dc_id,
                        availability, float(value),
                    )
            for counter, values in observations.items():
                if self._wanted_counter(counter):
                    for position, value in zip(online, values):
                        record(
                            window, server_ids[position], pool_id, dc_id,
                            counter, float(value),
                        )

    # ------------------------------------------------------------------
    # Blocked (cross-window) stepping
    # ------------------------------------------------------------------
    def _online_mask_block(
        self, deployment: PoolDeployment, windows: np.ndarray
    ) -> np.ndarray:
        """(n_windows, n_servers) online grid; rows == :meth:`_online_mask`.

        Fully vectorized: policy grid, random-failure grid (one cached
        day-draw lookup per distinct day) and per-window outage rows.
        Failures are applied before outage rows are zeroed, which
        commutes with the per-window order (an outage row is all-False
        either way).
        """
        n = deployment.pool.size
        policy = self._policies.get((deployment.pool_id, deployment.datacenter_id))
        if policy is not None:
            mask = policy_online_mask_block(policy, n, windows)
        else:
            mask = np.ones((windows.size, n), dtype=bool)
        failures = self.config.random_failures
        if failures is not None:
            mask &= ~failures.failed_mask_block(n, windows)
        out = self._demand_engine.outage_mask_block(
            deployment.datacenter_id, windows
        )
        if out.any():
            mask[out] = False
        return mask

    def _step_deployment_block(
        self,
        deployment: PoolDeployment,
        windows: np.ndarray,
        base_demand: np.ndarray,
    ) -> None:
        """Advance one deployment a whole block of windows at once.

        Consumes one column of the block demand tensor: noisy totals,
        then the ``(n_windows, n_classes)`` share matrix from
        :meth:`~repro.workload.request_mix.RequestMix.shares_block` —
        one jitter draw for the whole block, consuming the RNG stream
        in the same order as the former per-window ``split_volume``
        loop — divided by the online counts into the per-server RPS
        matrix :func:`~repro.cluster.server.observe_pool_block` takes.
        """
        pool = deployment.pool
        pool_id = deployment.pool_id
        dc_id = deployment.datacenter_id
        n_windows = int(windows.size)
        stage = self.stage_seconds
        t_start = perf_counter()

        # Noisy demand per window.  Draws are skipped for windows with
        # zero demand (or zero noise), matching the per-window engine's
        # _noisy; with one active window per block the stream coincides
        # with per-window stepping exactly.
        noise = self.config.workload_noise
        totals = np.array(base_demand, dtype=float)
        if noise > 0:
            active = totals > 0
            n_active = int(active.sum())
            if n_active:
                sigma = np.sqrt(np.log1p(noise**2))
                totals[active] *= self._rng.lognormal(
                    -0.5 * sigma**2, sigma, size=n_active
                )
        mix = deployment.mix
        volumes = totals[:, None] * mix.shares_block(windows, self._rng)
        t_demand = perf_counter()

        mask_block = self._online_mask_block(deployment, windows)
        counts = mask_block.sum(axis=1)
        per_server_rps = np.zeros_like(volumes)
        np.divide(
            volumes, counts[:, None], out=per_server_rps,
            where=counts[:, None] > 0,
        )

        arrays = pool.server_arrays()
        flat_windows, flat_positions, observations = observe_pool_block(
            pool.profile, arrays, mask_block, windows,
            mix.class_names, per_server_rps, self._rng,
            self._emit_counters(deployment),
        )
        t_observe = perf_counter()

        store = self.store
        indices = self._store_indices(deployment, arrays.server_ids)
        availability = Counter.AVAILABILITY.value
        if self._wanted_counter(availability):
            store.record_columns(
                pool_id,
                dc_id,
                availability,
                np.repeat(windows, pool.size),
                np.tile(indices, n_windows),
                mask_block.astype(float).ravel(),
            )
        if flat_windows.size:
            flat_indices = indices[flat_positions]
            for counter, values in observations.items():
                if self._wanted_counter(counter):
                    store.record_columns(
                        pool_id, dc_id, counter, flat_windows, flat_indices, values
                    )
        t_ingest = perf_counter()
        stage["demand"] += t_demand - t_start
        stage["observe"] += t_observe - t_demand
        stage["ingest"] += t_ingest - t_observe

    def _step_block(self, n_windows: int) -> None:
        """Simulate ``n_windows`` consecutive windows as one block."""
        windows = np.arange(
            self._window, self._window + n_windows, dtype=np.int64
        )
        t_start = perf_counter()
        block = self._demand_engine.compute_demand_block(windows)
        self.stage_seconds["demand"] += perf_counter() - t_start
        for deployment in self.fleet.deployments():
            self._step_deployment_block(
                deployment,
                windows,
                block.column(deployment.pool_id, deployment.datacenter_id),
            )
        self._window += n_windows

    def _step_legacy(self, window: int, demand: Dict[Tuple[str, str], float]) -> None:
        """The seed per-sample path: per-server observe, per-sample record."""
        wanted = set(self.config.counters) if self.config.counters else None
        record = self.store.record_fast
        for deployment in self.fleet.deployments():
            self._update_server_states(deployment, window)
            total = self._noisy(
                demand[(deployment.pool_id, deployment.datacenter_id)]
            )
            class_volumes = deployment.mix.split_volume(total, window, self._rng)
            observations = deployment.pool.step(window, class_volumes, self._rng)
            pool_id = deployment.pool_id
            dc_id = deployment.datacenter_id
            record_classes = self.config.record_request_classes
            for server_id, counters in observations.items():
                for counter, value in counters.items():
                    if wanted is not None and counter not in wanted:
                        if not (
                            record_classes and counter.startswith(_WORKLOAD_PREFIX)
                        ):
                            continue
                    record(window, server_id, pool_id, dc_id, counter, value)

    def step(self) -> None:
        """Simulate one telemetry window.

        On the vector engines, per-server ``Server.state`` /
        ``working_set_mb`` are *not* maintained window to window (that
        per-server loop is exactly the cost the columnar path removes);
        :meth:`run` reconciles them on completion.  Callers driving
        ``step()`` directly and reading pool state mid-run must call
        :meth:`sync_server_state` first — telemetry in the store is
        always correct either way.
        """
        window = self._window
        demand = self.offered_demand(window)
        engine = self.config.engine
        if engine == "legacy":
            self._step_legacy(window, demand)
        else:
            self._wanted_set = (
                set(self.config.counters) if self.config.counters else frozenset()
            )
            batch = engine == "batch"
            for deployment in self.fleet.deployments():
                self._step_deployment_vector(
                    deployment,
                    window,
                    demand[(deployment.pool_id, deployment.datacenter_id)],
                    batch,
                )
        self._window += 1

    def sync_server_state(self) -> None:
        """Write the vector engines' state back onto the Server objects.

        The columnar hot path tracks online-ness as masks and working
        sets as cached arrays, leaving ``Server.state`` /
        ``Server.working_set_mb`` untouched window to window.  This
        reconciles them with the last simulated window so post-run
        introspection (``pool.online_servers()``, leak inspection)
        sees what the legacy engine would have left behind.  Called
        automatically at the end of :meth:`run`.
        """
        if self._window == 0 or self.config.engine == "legacy":
            return
        last_window = self._window - 1
        for deployment in self.fleet.deployments():
            self._update_server_states(deployment, last_window)
            deployment.pool.flush_arrays()

    def run(self, n_windows: int) -> None:
        """Simulate ``n_windows`` consecutive windows.

        The main entry point of all three engines:

        * ``"batch"`` with ``block_windows == 1`` (the default) steps
          per window; with ``block_windows > 1`` it advances in blocks
          through the cross-window emission path (the last block is
          truncated to the remaining windows).  A block size of one is
          bit-identical to per-window stepping; larger blocks are
          statistically equivalent.
        * ``"per-sample"`` produces bit-identical telemetry to
          ``"batch"`` (same emission and RNG draws, per-sample ingest).
        * ``"legacy"`` is the seed per-server loop: identical
          availability, statistically equivalent noisy counters.

        Per-server ``Server.state`` / ``working_set_mb`` are reconciled
        by :meth:`sync_server_state` on completion.
        """
        self.run_block(n_windows)
        self.sync_server_state()

    def run_block(self, n_windows: int) -> None:
        """Advance ``n_windows`` windows *without* the final state sync.

        The streaming driver's building block: repeated ``run_block``
        calls issue exactly the call sequence one big :meth:`run` of
        the total horizon would (same blocks, same RNG draws, same
        emission order), so a streamed simulation's telemetry is
        bit-identical to the batch run by construction.  Callers that
        read per-server ``Server.state`` afterwards must call
        :meth:`sync_server_state` themselves — :meth:`run` does both.
        """
        if n_windows < 0:
            raise ValueError("n_windows must be non-negative")
        block = self.config.block_windows
        if block > 1 and self.config.engine == "batch":
            self._wanted_set = (
                set(self.config.counters) if self.config.counters else frozenset()
            )
            remaining = n_windows
            while remaining > 0:
                step = min(block, remaining)
                self._step_block(step)
                remaining -= step
        else:
            for _ in range(n_windows):
                self.step()

    def run_days(self, days: float) -> None:
        """Simulate a number of days (720 windows per day)."""
        from repro.workload.diurnal import WINDOWS_PER_DAY

        self.run(int(round(days * WINDOWS_PER_DAY)))
