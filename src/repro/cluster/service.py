"""Micro-service profiles (the paper's Table I catalogue).

Each :class:`MicroServiceProfile` is the ground truth for one
micro-service: how requests translate into CPU, network, disk and
memory activity, how latency responds to load, what background noise
the servers generate, and how generously the owning team provisioned
the pool.  The catalogue mirrors Table I:

====  ==========================================================
Pool  Description
====  ==========================================================
A     In-memory storage (similar to MemCached)
B     Modifies incoming requests such as spelling corrections
C     Orchestrates a workflow of stateless processing modules
D     Converts responses from data to formatted web pages
E     Split-TCP proxy, CDN, load balancer and authentication
F     In-memory storage with custom processing logic
G     High volume, low latency metrics collection
====  ==========================================================

Parameter choices are tuned so that the planner, observing only
telemetry, recovers the Table IV savings profile: heavily
overprovisioned pools (B, D, E, F) yield ~33 % headroom savings,
nearly right-sized pools (C, G) yield single digits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cluster.latency import LatencyModel
from repro.workload.request_mix import RequestClass, RequestMix


@dataclass(frozen=True)
class BackgroundNoise:
    """Non-workload activity on every server.

    ``log_upload_period_windows`` / ``log_upload_cpu_pct`` model the
    periodic many-GB/hour log uploads §II-A1 discovered as resource
    spikes uncorrelated with workload.  Disk and memory scales drive
    the vertical noise bands of Fig 2.
    """

    idle_cpu_pct: float = 1.2
    idle_cpu_noise_pct: float = 0.35
    log_upload_period_windows: int = 180
    log_upload_duration_windows: int = 3
    log_upload_cpu_pct: float = 4.0
    log_upload_disk_bytes: float = 25e6
    disk_noise_bytes: float = 8e6
    memory_pages_noise: float = 3_000.0
    disk_queue_mean: float = 1.2


@dataclass(frozen=True)
class MicroServiceProfile:
    """Ground-truth behaviour of one micro-service."""

    name: str
    description: str
    mix: RequestMix
    latency: LatencyModel
    noise: BackgroundNoise = field(default_factory=BackgroundNoise)
    #: Typical per-server request rate the owning team sizes around.
    typical_rps_per_server: float = 300.0
    #: Peak utilization the owning team provisions for (the headroom
    #: the paper right-sizes away lives in the gap between this and
    #: what the SLO actually allows).
    provisioned_peak_utilization: float = 0.15
    #: The pool's latency SLO (95th percentile, milliseconds).
    slo_latency_ms: float = 60.0
    #: Mean fraction of the day servers are online (planned
    #: maintenance, repurposing).  Drives Figs 14-15.
    availability_mean: float = 0.98
    #: CPU measurement noise (multiplicative std).
    cpu_observation_noise: float = 0.03
    #: Latency measurement noise (multiplicative std).
    latency_observation_noise: float = 0.04

    def __post_init__(self) -> None:
        if not 0.0 < self.provisioned_peak_utilization < 1.0:
            raise ValueError("provisioned_peak_utilization must be in (0, 1)")
        if self.slo_latency_ms <= 0:
            raise ValueError("slo_latency_ms must be positive")
        if not 0.0 < self.availability_mean <= 1.0:
            raise ValueError("availability_mean must be in (0, 1]")

    def cpu_cost_per_rps(self) -> float:
        """Mean ground-truth CPU percentage points per request/second."""
        return self.mix.mean_cpu_cost()


def _mix_single(name: str, cpu_cost: float, bytes_per_request: float) -> RequestMix:
    return RequestMix(
        classes=(
            RequestClass(
                name=name,
                cpu_cost=cpu_cost,
                bytes_per_request=bytes_per_request,
            ),
        ),
        proportions=(1.0,),
    )


def service_catalog() -> Dict[str, MicroServiceProfile]:
    """The seven micro-services of Table I, keyed by pool letter."""
    catalog: Dict[str, MicroServiceProfile] = {}

    # A: in-memory storage, two tables with very different per-request
    # cost and a drifting mix — the §II-A1 noisy-metric case study.
    catalog["A"] = MicroServiceProfile(
        name="A",
        description="In-Memory Storage (similar to MemCached)",
        mix=RequestMix(
            classes=(
                RequestClass(name="table_user", cpu_cost=0.004, bytes_per_request=900.0),
                RequestClass(name="table_index", cpu_cost=0.016, bytes_per_request=3_200.0),
            ),
            proportions=(0.7, 0.3),
            drift=0.5,
        ),
        latency=LatencyModel(base_ms=3.5, cold_ms=2.0, warmup_rps=400.0, queue_coeff_ms=60.0),
        typical_rps_per_server=1_500.0,
        provisioned_peak_utilization=0.22,
        slo_latency_ms=13.5,
        availability_mean=0.94,
    )

    # B: query modification.  Parameters chosen near the paper's pool B
    # fits: CPU slope ~0.028 %/RPS, latency ~30 ms at ~380 RPS/server.
    catalog["B"] = MicroServiceProfile(
        name="B",
        description="Modifies incoming requests such as spelling corrections",
        mix=_mix_single("query", cpu_cost=0.028, bytes_per_request=5_500.0),
        latency=LatencyModel(base_ms=28.0, cold_ms=7.0, warmup_rps=130.0, queue_coeff_ms=120.0),
        typical_rps_per_server=380.0,
        provisioned_peak_utilization=0.12,
        slo_latency_ms=36.0,
        availability_mean=0.71,  # pool repurposed off-peak (§III-B2)
    )

    # C: workflow orchestrator — nearly right-sized already.
    catalog["C"] = MicroServiceProfile(
        name="C",
        description="Orchestrates a workflow of stateless processing modules",
        mix=_mix_single("workflow", cpu_cost=0.055, bytes_per_request=9_000.0),
        latency=LatencyModel(base_ms=38.0, cold_ms=10.0, warmup_rps=60.0, queue_coeff_ms=31.0),
        typical_rps_per_server=160.0,
        provisioned_peak_utilization=0.34,
        slo_latency_ms=51.0,
        availability_mean=0.90,
    )

    # D: web-page formatting (the Fig 2 / pool-D experiment service).
    # CPU slope ~0.09 %/RPS, latency ~52 ms around 80 RPS/server.
    catalog["D"] = MicroServiceProfile(
        name="D",
        description="Converts responses from data to formatted web pages",
        mix=_mix_single("render", cpu_cost=0.092, bytes_per_request=42_000.0),
        latency=LatencyModel(base_ms=46.0, cold_ms=18.0, warmup_rps=45.0, queue_coeff_ms=180.0),
        typical_rps_per_server=80.0,
        provisioned_peak_utilization=0.12,
        slo_latency_ms=58.0,
        availability_mean=0.98,
    )

    # E: split-TCP proxy / CDN / auth — high volume, cheap requests.
    catalog["E"] = MicroServiceProfile(
        name="E",
        description="Split-TCP proxy, CDN, load balancer, and authentication service",
        mix=_mix_single("proxy", cpu_cost=0.0065, bytes_per_request=18_000.0),
        latency=LatencyModel(base_ms=6.0, cold_ms=2.5, warmup_rps=500.0, queue_coeff_ms=80.0),
        typical_rps_per_server=1_800.0,
        provisioned_peak_utilization=0.13,
        slo_latency_ms=12.5,
        availability_mean=0.96,
    )

    # F: in-memory storage with custom processing logic.
    catalog["F"] = MicroServiceProfile(
        name="F",
        description="In-Memory storage with custom processing logic",
        mix=_mix_single("kv_custom", cpu_cost=0.018, bytes_per_request=2_600.0),
        latency=LatencyModel(base_ms=8.0, cold_ms=3.0, warmup_rps=300.0, queue_coeff_ms=100.0),
        typical_rps_per_server=600.0,
        provisioned_peak_utilization=0.12,
        slo_latency_ms=14.5,
        availability_mean=0.98,
    )

    # G: metrics collection — latency budget is tiny and the pool is
    # already run hot, so there is little to reclaim.
    catalog["G"] = MicroServiceProfile(
        name="G",
        description="High volume, low latency, metrics collection system",
        mix=_mix_single("metrics", cpu_cost=0.0035, bytes_per_request=700.0),
        latency=LatencyModel(base_ms=2.0, cold_ms=0.8, warmup_rps=900.0, queue_coeff_ms=4.6),
        typical_rps_per_server=4_000.0,
        provisioned_peak_utilization=0.33,
        slo_latency_ms=3.8,
        availability_mean=0.98,
    )
    return catalog


#: Pool letters in catalogue order.
CATALOG_POOLS: Tuple[str, ...] = ("A", "B", "C", "D", "E", "F", "G")
