"""Production-system simulator (ground truth).

This package stands in for the proprietary 100K-server fleet the paper
measured.  It simulates datacenters, micro-service pools, and servers
whose resource usage and QoS follow ground-truth models the planner
never sees — preserving the black-box discipline: ``repro.core`` only
observes the fleet through the telemetry the simulator emits.
"""

from repro.cluster.hardware import HardwareSpec, GENERATION_2014, GENERATION_2017
from repro.cluster.latency import LatencyModel
from repro.cluster.server import Server, ServerArrays, ServerState, observe_pool
from repro.cluster.service import MicroServiceProfile, service_catalog
from repro.cluster.pool import ServerPool
from repro.cluster.datacenter import Datacenter, Fleet, PoolDeployment
from repro.cluster.deployment import SoftwareVersion
from repro.cluster.faults import (
    DatacenterOutage,
    MaintenancePolicy,
    RepurposingPolicy,
)
from repro.cluster.simulation import SimulationConfig, Simulator
from repro.cluster.builders import build_paper_fleet, build_single_pool_fleet

__all__ = [
    "HardwareSpec",
    "GENERATION_2014",
    "GENERATION_2017",
    "LatencyModel",
    "Server",
    "ServerArrays",
    "ServerState",
    "observe_pool",
    "MicroServiceProfile",
    "service_catalog",
    "ServerPool",
    "Datacenter",
    "Fleet",
    "PoolDeployment",
    "SoftwareVersion",
    "DatacenterOutage",
    "MaintenancePolicy",
    "RepurposingPolicy",
    "SimulationConfig",
    "Simulator",
    "build_paper_fleet",
    "build_single_pool_fleet",
]
