"""Datacenters, regions and the fleet topology.

The studied service spans 9 geographic regions; diurnal peaks rotate
around the globe because each region's demand follows its local
timezone.  A :class:`Fleet` holds the datacenters and the per-(service,
datacenter) pool deployments, together with each deployment's demand
pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.pool import ServerPool
from repro.workload.diurnal import DiurnalPattern
from repro.workload.request_mix import RequestMix


@dataclass(frozen=True)
class Datacenter:
    """One datacenter in one geographic region."""

    datacenter_id: str
    region: str
    timezone_offset_hours: float

    def __post_init__(self) -> None:
        if not self.datacenter_id:
            raise ValueError("datacenter_id must be non-empty")


@dataclass
class PoolDeployment:
    """One micro-service pool deployed in one datacenter.

    Couples the pool (servers) with the demand pattern that drives it.
    """

    pool: ServerPool
    datacenter: Datacenter
    pattern: DiurnalPattern

    @property
    def pool_id(self) -> str:
        return self.pool.pool_id

    @property
    def datacenter_id(self) -> str:
        return self.datacenter.datacenter_id

    @property
    def mix(self) -> RequestMix:
        return self.pool.profile.mix


class Fleet:
    """All datacenters and pool deployments of the service."""

    def __init__(self, datacenters: List[Datacenter]) -> None:
        if not datacenters:
            raise ValueError("a fleet needs at least one datacenter")
        ids = [dc.datacenter_id for dc in datacenters]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate datacenter ids")
        self._datacenters: Dict[str, Datacenter] = {
            dc.datacenter_id: dc for dc in datacenters
        }
        self._deployments: Dict[Tuple[str, str], PoolDeployment] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def datacenters(self) -> Tuple[Datacenter, ...]:
        return tuple(self._datacenters[k] for k in sorted(self._datacenters))

    def datacenter(self, datacenter_id: str) -> Datacenter:
        if datacenter_id not in self._datacenters:
            raise KeyError(f"unknown datacenter {datacenter_id!r}")
        return self._datacenters[datacenter_id]

    def add_deployment(self, deployment: PoolDeployment) -> None:
        key = (deployment.pool_id, deployment.datacenter_id)
        if key in self._deployments:
            raise ValueError(f"deployment {key} already exists")
        if deployment.datacenter_id not in self._datacenters:
            raise KeyError(f"unknown datacenter {deployment.datacenter_id!r}")
        self._deployments[key] = deployment

    def deployment(self, pool_id: str, datacenter_id: str) -> PoolDeployment:
        key = (pool_id, datacenter_id)
        if key not in self._deployments:
            raise KeyError(f"no deployment of pool {pool_id!r} in {datacenter_id!r}")
        return self._deployments[key]

    def deployments(self) -> Iterator[PoolDeployment]:
        for key in sorted(self._deployments):
            yield self._deployments[key]

    def deployments_of_pool(self, pool_id: str) -> List[PoolDeployment]:
        return [d for d in self.deployments() if d.pool_id == pool_id]

    @property
    def pool_ids(self) -> Tuple[str, ...]:
        return tuple(sorted({pool_id for (pool_id, _dc) in self._deployments}))

    def total_servers(self) -> int:
        return sum(d.pool.size for d in self.deployments())

    def servers_of_pool(self, pool_id: str) -> int:
        return sum(d.pool.size for d in self.deployments_of_pool(pool_id))
