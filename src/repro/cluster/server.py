"""Server resource model.

A :class:`Server` converts the request volume routed to it into the
observable counter values of Fig 2.  The translation is the simulator's
ground truth; the planner only ever sees the emitted counters.

Two implementations share the same ground-truth math:

* :meth:`Server.observe` — the original per-server scalar path, kept
  for direct use and tests;
* :func:`observe_pool` over a :class:`ServerArrays` view — the batched
  path: every counter for every online server of a pool is computed as
  one NumPy expression, which is what lets the simulator advance
  thousand-server fleets at array speed.

Behaviours reproduced from the paper's measurements:

* CPU tracks per-class workload linearly (plus idle base and noise);
* network bytes/packets track workload linearly with moderate,
  per-datacenter-varying noise;
* disk reads and memory paging are dominated by background activity
  (paging, periodic log uploads) — vertical bands at any workload;
* disk queue length is near-constant in steady state;
* latency follows the service's ground-truth
  :class:`~repro.cluster.latency.LatencyModel`;
* a leaky software version grows its working set each window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.deployment import BASELINE_VERSION, SoftwareVersion
from repro.cluster.hardware import GENERATION_2014, HardwareSpec
from repro.cluster.service import MicroServiceProfile
from repro.telemetry.counters import Counter, workload_counter

#: Average network packet size (bytes) used to derive the packet counter.
_PACKET_BYTES = 1_100.0

#: Baseline resident working set (MB) for a freshly started server.
_BASE_WORKING_SET_MB = 9_000.0


class ServerState(enum.Enum):
    """Operational state; only ONLINE servers receive traffic."""

    ONLINE = "online"
    OFFLINE_MAINTENANCE = "offline_maintenance"
    OFFLINE_REPURPOSED = "offline_repurposed"
    OFFLINE_FAILED = "offline_failed"

    @property
    def is_online(self) -> bool:
        return self is ServerState.ONLINE


@dataclass
class Server:
    """One simulated server in a pool."""

    server_id: str
    pool_id: str
    datacenter_id: str
    profile: MicroServiceProfile
    hardware: HardwareSpec = field(default=GENERATION_2014)
    version: SoftwareVersion = field(default=BASELINE_VERSION)
    state: ServerState = field(default=ServerState.ONLINE)
    #: Per-server phase for the periodic log-upload spike so that the
    #: fleet's spikes are decorrelated.
    noise_phase: int = 0
    working_set_mb: float = field(default=_BASE_WORKING_SET_MB)

    def restart(self) -> None:
        """Restart the service process: the working set resets."""
        self.working_set_mb = _BASE_WORKING_SET_MB

    # ------------------------------------------------------------------
    # Ground-truth resource math
    # ------------------------------------------------------------------
    def true_cpu_pct(self, class_rps: Dict[str, float]) -> float:
        """Noise-free CPU percentage for a per-class request volume."""
        work = self.profile.mix.cpu_for(class_rps)
        scaled = work * self.hardware.cpu_scale * self.version.cpu_multiplier
        return self.profile.noise.idle_cpu_pct + scaled

    def true_latency_p95_ms(self, rps: float, utilization: float) -> float:
        """Noise-free 95th-percentile latency for a load point."""
        model = self.profile.latency
        base = model.p95_ms(rps, utilization)
        queue_part = base - model.base_ms - model.cold_ms * np.exp(
            -rps / model.warmup_rps
        )
        adjusted_queue = queue_part * self.version.latency_queue_multiplier
        return (
            model.base_ms
            + self.version.latency_base_delta_ms
            + model.cold_ms * np.exp(-rps / model.warmup_rps)
            + adjusted_queue
        )

    def _log_upload_active(self, window: int) -> bool:
        noise = self.profile.noise
        if noise.log_upload_period_windows <= 0:
            return False
        phase = (window + self.noise_phase) % noise.log_upload_period_windows
        return phase < noise.log_upload_duration_windows

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        window: int,
        class_rps: Dict[str, float],
        rng: np.random.Generator,
    ) -> Dict[str, float]:
        """Emit one window of counter values.

        ``class_rps`` is the per-request-class volume the load balancer
        routed to this server for the window.  Offline servers emit only
        the availability counter.
        """
        if not self.state.is_online:
            return {Counter.AVAILABILITY.value: 0.0}

        profile = self.profile
        noise = profile.noise
        total_rps = float(sum(class_rps.values()))

        # --- CPU ------------------------------------------------------
        cpu = self.true_cpu_pct(class_rps)
        cpu += rng.normal(0.0, noise.idle_cpu_noise_pct)
        if self._log_upload_active(window):
            cpu += noise.log_upload_cpu_pct
        cpu *= rng.normal(1.0, profile.cpu_observation_noise)
        cpu = float(np.clip(cpu, 0.0, 100.0))

        # --- Latency ----------------------------------------------------
        utilization = cpu / 100.0
        p95 = self.true_latency_p95_ms(total_rps, utilization)
        p95 *= rng.normal(1.0, profile.latency_observation_noise)
        p95 = max(p95, 0.1)
        p50 = profile.latency.median_fraction * p95

        # --- Network ----------------------------------------------------
        by_name = {c.name: c for c in profile.mix.classes}
        bytes_total = sum(
            by_name[name].bytes_per_request * rps
            for name, rps in class_rps.items()
            if name in by_name
        )
        # Network counters are linear in workload but visibly noisier
        # than CPU (Fig 2 "we see more variation of bytes and packets"):
        # retransmits, connection churn and co-located control traffic.
        bytes_total *= rng.normal(1.0, 0.15)
        bytes_total = max(bytes_total, 0.0)
        packets = bytes_total / _PACKET_BYTES

        # --- Disk and memory (background-dominated; Fig 2's bands) -----
        disk_read = abs(rng.normal(0.0, noise.disk_noise_bytes))
        if self._log_upload_active(window):
            disk_read += noise.log_upload_disk_bytes
        memory_pages = abs(rng.normal(0.0, noise.memory_pages_noise))
        # Paging correlates with disk reads (the paper infers most disk
        # activity is paging); couple them loosely.
        memory_pages += disk_read / 8e3 * rng.uniform(0.5, 1.5)
        disk_queue = max(rng.normal(noise.disk_queue_mean, 1.0), 0.0)

        # --- Memory working set (leak accounting) ----------------------
        self.working_set_mb += self.version.memory_leak_mb_per_window

        # --- Errors -----------------------------------------------------
        # Near zero in steady state; grows only at extreme utilization.
        error_rate = 0.0
        if utilization > 0.9:
            error_rate = (utilization - 0.9) * total_rps * 0.5
        errors = max(rng.normal(error_rate, 0.01), 0.0)

        return {
            Counter.AVAILABILITY.value: 1.0,
            Counter.REQUESTS.value: total_rps,
            Counter.PROCESSOR_UTILIZATION.value: cpu,
            Counter.LATENCY_P95.value: float(p95),
            Counter.LATENCY_P50.value: float(p50),
            Counter.NETWORK_BYTES_TOTAL.value: float(bytes_total),
            Counter.NETWORK_PACKETS.value: float(packets),
            Counter.DISK_READ_BYTES.value: float(disk_read),
            Counter.DISK_QUEUE_LENGTH.value: float(disk_queue),
            Counter.MEMORY_PAGES.value: float(memory_pages),
            Counter.MEMORY_WORKING_SET.value: float(self.working_set_mb * 1e6),
            Counter.ERRORS.value: float(errors),
            **{
                workload_counter(name): float(rps)
                for name, rps in class_rps.items()
            },
        }


# ----------------------------------------------------------------------
# Batched (columnar) observation path
# ----------------------------------------------------------------------


@dataclass
class ServerArrays:
    """Column view of a pool's servers for the vectorized hot path.

    One array per per-server attribute the counter math reads, gathered
    once from the ``Server`` objects and cached by the pool until its
    composition changes (resize, version deploy).  ``working_set_mb`` is
    *owned* by this view while it is active; :meth:`flush` writes it
    back to the ``Server`` objects before the pool mutates them.
    """

    server_ids: Tuple[str, ...]
    cpu_scale: np.ndarray
    version_cpu_multiplier: np.ndarray
    #: Elementwise ``cpu_scale * version_cpu_multiplier`` — the only
    #: form the counter math consumes, prebuilt so the hot path gathers
    #: one column instead of two.
    cpu_scale_mult: np.ndarray
    latency_base_delta_ms: np.ndarray
    latency_queue_multiplier: np.ndarray
    memory_leak_mb_per_window: np.ndarray
    noise_phase: np.ndarray
    working_set_mb: np.ndarray

    @classmethod
    def from_servers(cls, servers: Sequence["Server"]) -> "ServerArrays":
        return cls(
            server_ids=tuple(s.server_id for s in servers),
            cpu_scale=np.array([s.hardware.cpu_scale for s in servers]),
            version_cpu_multiplier=np.array(
                [s.version.cpu_multiplier for s in servers]
            ),
            cpu_scale_mult=np.array(
                [s.hardware.cpu_scale * s.version.cpu_multiplier for s in servers]
            ),
            latency_base_delta_ms=np.array(
                [s.version.latency_base_delta_ms for s in servers]
            ),
            latency_queue_multiplier=np.array(
                [s.version.latency_queue_multiplier for s in servers]
            ),
            memory_leak_mb_per_window=np.array(
                [s.version.memory_leak_mb_per_window for s in servers]
            ),
            noise_phase=np.array([s.noise_phase for s in servers], dtype=np.int64),
            working_set_mb=np.array([s.working_set_mb for s in servers]),
        )

    def flush(self, servers: Sequence["Server"]) -> None:
        """Write the mutable working-set column back to the servers."""
        for server, ws in zip(servers, self.working_set_mb):
            server.working_set_mb = float(ws)


class _Gates:
    """Which counter groups a pool emission must compute.

    Derived once per call from the caller's wanted-counter set (``None``
    = emit everything).  Counters share intermediates, so the gates are
    dependency-aware: CPU must be computed whenever latency or errors
    need the utilization, disk reads whenever memory paging couples to
    them, and so on.  Skipping a group skips both its math *and* its
    RNG draws — callers on different engines must therefore pass the
    same set for their streams to coincide, which the simulator
    guarantees by deriving the set once from its config.
    """

    __slots__ = (
        "requests", "cpu", "cpu_value", "p95", "p95_value", "p50",
        "bytes", "bytes_value", "packets", "disk", "disk_value",
        "pages", "queue", "working_set", "errors", "availability",
    )

    def __init__(self, counters: Optional[FrozenSet[str]]) -> None:
        def want(counter: Counter) -> bool:
            return counters is None or counter.value in counters

        self.requests = want(Counter.REQUESTS)
        self.availability = want(Counter.AVAILABILITY)
        self.cpu_value = want(Counter.PROCESSOR_UTILIZATION)
        self.p95_value = want(Counter.LATENCY_P95)
        self.p50 = want(Counter.LATENCY_P50)
        self.errors = want(Counter.ERRORS)
        self.p95 = self.p95_value or self.p50
        self.cpu = self.cpu_value or self.p95 or self.errors
        self.bytes_value = want(Counter.NETWORK_BYTES_TOTAL)
        self.packets = want(Counter.NETWORK_PACKETS)
        self.bytes = self.bytes_value or self.packets
        self.disk_value = want(Counter.DISK_READ_BYTES)
        self.pages = want(Counter.MEMORY_PAGES)
        self.disk = self.disk_value or self.pages
        self.queue = want(Counter.DISK_QUEUE_LENGTH)
        self.working_set = want(Counter.MEMORY_WORKING_SET)


def observe_pool(
    profile: MicroServiceProfile,
    arrays: ServerArrays,
    online: np.ndarray,
    window: int,
    class_rps: Dict[str, float],
    rng: np.random.Generator,
    counters: Optional[FrozenSet[str]] = None,
) -> Dict[str, np.ndarray]:
    """One window of counter values for a pool's *online* servers.

    ``online`` is the integer index array of online servers (positions
    into ``arrays``); ``class_rps`` is the per-class volume the load
    balancer routes to each of them (even split, so one scalar per
    class).  Returns counter name -> value array aligned with
    ``online``.  Offline servers emit only availability, which the
    caller derives from the mask; this function also advances the leak
    accounting for online servers.

    ``counters`` restricts emission to the named counters (plus the
    intermediates they depend on); ``None`` emits everything.  Skipped
    counters skip their RNG draws too, so the stream depends on the
    set — but not on anything else, and the emitted draws always come
    in the same relative order.  Leak accounting advances regardless.

    The math is the vectorized transcription of :meth:`Server.observe`;
    each draw that was per-server scalar becomes one array draw.
    """
    m = int(online.size)
    noise = profile.noise
    gates = _Gates(counters)
    total_rps = float(sum(class_rps.values()))
    observations: Dict[str, np.ndarray] = {}

    if gates.availability:
        observations[Counter.AVAILABILITY.value] = np.ones(m)
    if gates.requests:
        observations[Counter.REQUESTS.value] = np.full(m, total_rps)

    if noise.log_upload_period_windows > 0 and (gates.cpu or gates.disk):
        phase = arrays.noise_phase[online]
        upload_active = (
            (window + phase) % noise.log_upload_period_windows
        ) < noise.log_upload_duration_windows
    else:
        upload_active = np.zeros(m, dtype=bool)

    # --- CPU ----------------------------------------------------------
    if gates.cpu:
        work = profile.mix.cpu_for(class_rps)
        cpu = noise.idle_cpu_pct + work * arrays.cpu_scale_mult[online]
        cpu = cpu + rng.normal(0.0, noise.idle_cpu_noise_pct, size=m)
        cpu = cpu + noise.log_upload_cpu_pct * upload_active
        cpu = cpu * rng.normal(1.0, profile.cpu_observation_noise, size=m)
        cpu = np.clip(cpu, 0.0, 100.0)
        utilization = cpu / 100.0
        if gates.cpu_value:
            observations[Counter.PROCESSOR_UTILIZATION.value] = cpu

    # --- Latency ------------------------------------------------------
    if gates.p95:
        model = profile.latency
        util_clamped = np.minimum(utilization, model.utilization_cap - 1e-6)
        cold = model.cold_ms * np.exp(-total_rps / model.warmup_rps)
        queue = model.queue_coeff_ms * util_clamped**2 / (1.0 - util_clamped)
        p95 = (
            model.base_ms
            + arrays.latency_base_delta_ms[online]
            + cold
            + queue * arrays.latency_queue_multiplier[online]
        )
        p95 = p95 * rng.normal(1.0, profile.latency_observation_noise, size=m)
        p95 = np.maximum(p95, 0.1)
        if gates.p95_value:
            observations[Counter.LATENCY_P95.value] = p95
        if gates.p50:
            observations[Counter.LATENCY_P50.value] = model.median_fraction * p95

    # --- Network ------------------------------------------------------
    if gates.bytes:
        by_name = {c.name: c for c in profile.mix.classes}
        bytes_total = sum(
            by_name[name].bytes_per_request * rps
            for name, rps in class_rps.items()
            if name in by_name
        )
        bytes_total = bytes_total * rng.normal(1.0, 0.15, size=m)
        bytes_total = np.maximum(bytes_total, 0.0)
        if gates.bytes_value:
            observations[Counter.NETWORK_BYTES_TOTAL.value] = bytes_total
        if gates.packets:
            observations[Counter.NETWORK_PACKETS.value] = bytes_total / _PACKET_BYTES

    # --- Disk and memory (background-dominated; Fig 2's bands) --------
    if gates.disk:
        disk_read = np.abs(rng.normal(0.0, noise.disk_noise_bytes, size=m))
        disk_read = disk_read + noise.log_upload_disk_bytes * upload_active
        if gates.disk_value:
            observations[Counter.DISK_READ_BYTES.value] = disk_read
    if gates.pages:
        memory_pages = np.abs(rng.normal(0.0, noise.memory_pages_noise, size=m))
        memory_pages = memory_pages + disk_read / 8e3 * rng.uniform(0.5, 1.5, size=m)
        observations[Counter.MEMORY_PAGES.value] = memory_pages
    if gates.queue:
        observations[Counter.DISK_QUEUE_LENGTH.value] = np.maximum(
            rng.normal(noise.disk_queue_mean, 1.0, size=m), 0.0
        )

    # --- Memory working set (leak accounting; always advanced) --------
    arrays.working_set_mb[online] += arrays.memory_leak_mb_per_window[online]
    if gates.working_set:
        observations[Counter.MEMORY_WORKING_SET.value] = (
            arrays.working_set_mb[online] * 1e6
        )

    # --- Errors -------------------------------------------------------
    if gates.errors:
        error_rate = np.where(
            utilization > 0.9, (utilization - 0.9) * total_rps * 0.5, 0.0
        )
        observations[Counter.ERRORS.value] = np.maximum(
            rng.normal(error_rate, 0.01), 0.0
        )

    for name, rps in class_rps.items():
        name = workload_counter(name)
        if counters is None or name in counters:
            observations[name] = np.full(m, rps)
    return observations


def observe_pool_block(
    profile: MicroServiceProfile,
    arrays: ServerArrays,
    online_mask: np.ndarray,
    windows: np.ndarray,
    class_names: Sequence[str],
    class_rps: np.ndarray,
    rng: np.random.Generator,
    counters: Optional[FrozenSet[str]] = None,
) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
    """A whole block of windows of counter values in one vectorized pass.

    The blocked mode of :func:`observe_pool`: instead of one emission
    per window, the counter math for ``len(windows)`` consecutive
    windows runs as a single set of NumPy expressions over the
    flattened (window, online server) grid, amortizing the per-window
    Python and RNG-call overhead that dominates per-window stepping.

    ``online_mask`` is the boolean (n_windows, n_servers) online grid;
    ``class_rps`` is the ``(n_windows, n_classes)`` per-*server* RPS
    matrix (the even load-balancer split of each window's volume),
    with columns in ``class_names`` order — the columnar replacement
    of the former per-window dict list.  Per-window totals and cost
    reductions accumulate column by column in class order, matching
    the scalar dict iteration term for term.

    Returns ``(flat_windows, flat_positions, observations)`` where the
    flat arrays enumerate the online (window, server) cells in
    window-major order — exactly the row order the per-window batch
    engine appends — and ``observations`` maps counter name to the
    aligned value array.  Availability is *not* included: the caller
    derives it from ``online_mask`` for all servers, offline included.

    ``counters`` gates emission exactly as in :func:`observe_pool`
    (same dependency rules, same draw-skipping), so per-window and
    blocked runs given the same set stay stream-compatible.

    RNG draws happen in the same counter order as :func:`observe_pool`
    but sized for the whole block, so a block of W windows consumes
    different draw shapes than W per-window calls: for ``W == 1`` the
    streams coincide and the output is bit-identical to the batch
    engine; for ``W > 1`` it is statistically equivalent (same
    distributions, different draws).  Leak accounting is advanced for
    the whole block, with each emitted working set reflecting the
    cumulative online windows up to and including its own.
    """
    n_windows, n_servers = online_mask.shape
    class_rps = np.asarray(class_rps, dtype=float)
    if len(windows) != n_windows or class_rps.shape[0] != n_windows:
        raise ValueError("windows and class_rps must match the mask")
    if class_rps.shape[1] != len(class_names):
        raise ValueError("class_rps columns must match class_names")
    windows = np.asarray(windows, dtype=np.int64)
    # Window-major enumeration of online cells: np.nonzero on a 2-D
    # array walks rows first, matching per-window append order.
    window_pos, flat_positions = np.nonzero(online_mask)
    flat_windows = windows[window_pos]
    flat_count = int(window_pos.size)
    noise = profile.noise
    gates = _Gates(counters)
    mix = profile.mix

    # Per-window reductions over the class axis, accumulated column by
    # column so the summation order (and hence every bit) matches the
    # scalar engines' Python sums over the class dicts.
    total_rps_w = np.zeros(n_windows)
    for k in range(class_rps.shape[1]):
        total_rps_w += class_rps[:, k]
    total_rps = total_rps_w[window_pos]
    observations: Dict[str, np.ndarray] = {}

    if gates.requests:
        observations[Counter.REQUESTS.value] = total_rps

    if noise.log_upload_period_windows > 0 and (gates.cpu or gates.disk):
        phase = arrays.noise_phase[flat_positions]
        upload_active = (
            (flat_windows + phase) % noise.log_upload_period_windows
        ) < noise.log_upload_duration_windows
    else:
        upload_active = np.zeros(flat_count, dtype=bool)

    # --- CPU ----------------------------------------------------------
    if gates.cpu:
        cpu_costs = mix.cpu_costs
        work_w = np.zeros(n_windows)
        for k in range(class_rps.shape[1]):
            work_w += cpu_costs[k] * class_rps[:, k]
        cpu = (
            noise.idle_cpu_pct
            + work_w[window_pos] * arrays.cpu_scale_mult[flat_positions]
        )
        cpu = cpu + rng.normal(0.0, noise.idle_cpu_noise_pct, size=flat_count)
        cpu = cpu + noise.log_upload_cpu_pct * upload_active
        cpu = cpu * rng.normal(1.0, profile.cpu_observation_noise, size=flat_count)
        cpu = np.clip(cpu, 0.0, 100.0)
        utilization = cpu / 100.0
        if gates.cpu_value:
            observations[Counter.PROCESSOR_UTILIZATION.value] = cpu

    # --- Latency ------------------------------------------------------
    if gates.p95:
        model = profile.latency
        util_clamped = np.minimum(utilization, model.utilization_cap - 1e-6)
        # The cold-start term depends only on the window's total RPS:
        # evaluate the exp per window and gather, not per online cell.
        cold_w = model.cold_ms * np.exp(-total_rps_w / model.warmup_rps)
        queue = model.queue_coeff_ms * util_clamped**2 / (1.0 - util_clamped)
        p95 = (
            model.base_ms
            + arrays.latency_base_delta_ms[flat_positions]
            + cold_w[window_pos]
            + queue * arrays.latency_queue_multiplier[flat_positions]
        )
        p95 = p95 * rng.normal(
            1.0, profile.latency_observation_noise, size=flat_count
        )
        p95 = np.maximum(p95, 0.1)
        if gates.p95_value:
            observations[Counter.LATENCY_P95.value] = p95
        if gates.p50:
            observations[Counter.LATENCY_P50.value] = model.median_fraction * p95

    # --- Network ------------------------------------------------------
    if gates.bytes:
        bytes_coeffs = mix.bytes_per_request
        bytes_w = np.zeros(n_windows)
        for k in range(class_rps.shape[1]):
            bytes_w += bytes_coeffs[k] * class_rps[:, k]
        bytes_total = bytes_w[window_pos] * rng.normal(1.0, 0.15, size=flat_count)
        bytes_total = np.maximum(bytes_total, 0.0)
        if gates.bytes_value:
            observations[Counter.NETWORK_BYTES_TOTAL.value] = bytes_total
        if gates.packets:
            observations[Counter.NETWORK_PACKETS.value] = bytes_total / _PACKET_BYTES

    # --- Disk and memory (background-dominated; Fig 2's bands) --------
    if gates.disk:
        disk_read = np.abs(
            rng.normal(0.0, noise.disk_noise_bytes, size=flat_count)
        )
        disk_read = disk_read + noise.log_upload_disk_bytes * upload_active
        if gates.disk_value:
            observations[Counter.DISK_READ_BYTES.value] = disk_read
    if gates.pages:
        memory_pages = np.abs(
            rng.normal(0.0, noise.memory_pages_noise, size=flat_count)
        )
        memory_pages = memory_pages + disk_read / 8e3 * rng.uniform(
            0.5, 1.5, size=flat_count
        )
        observations[Counter.MEMORY_PAGES.value] = memory_pages
    if gates.queue:
        observations[Counter.DISK_QUEUE_LENGTH.value] = np.maximum(
            rng.normal(noise.disk_queue_mean, 1.0, size=flat_count), 0.0
        )

    # --- Memory working set (leak accounting; always advanced) --------
    leak = arrays.memory_leak_mb_per_window
    if gates.working_set:
        # cumulative[w, s] = online windows of s in the block up to w
        # inclusive; each emitted value reflects its own window.
        cumulative = np.cumsum(online_mask, axis=0, dtype=np.int64)
        emitted_ws = (
            arrays.working_set_mb[flat_positions]
            + leak[flat_positions] * cumulative[window_pos, flat_positions]
        )
        observations[Counter.MEMORY_WORKING_SET.value] = emitted_ws * 1e6
        if n_windows:
            arrays.working_set_mb += leak * cumulative[-1]
    elif n_windows:
        arrays.working_set_mb += leak * online_mask.sum(axis=0)

    # --- Errors -------------------------------------------------------
    if gates.errors:
        error_rate = np.where(
            utilization > 0.9, (utilization - 0.9) * total_rps * 0.5, 0.0
        )
        observations[Counter.ERRORS.value] = np.maximum(
            rng.normal(error_rate, 0.01), 0.0
        )

    for k, name in enumerate(class_names):
        name = workload_counter(name)
        if counters is None or name in counters:
            observations[name] = class_rps[window_pos, k]
    return flat_windows, flat_positions, observations
