"""Server resource model.

A :class:`Server` converts the request volume routed to it into the
observable counter values of Fig 2.  The translation is the simulator's
ground truth; the planner only ever sees the emitted counters.

Behaviours reproduced from the paper's measurements:

* CPU tracks per-class workload linearly (plus idle base and noise);
* network bytes/packets track workload linearly with moderate,
  per-datacenter-varying noise;
* disk reads and memory paging are dominated by background activity
  (paging, periodic log uploads) — vertical bands at any workload;
* disk queue length is near-constant in steady state;
* latency follows the service's ground-truth
  :class:`~repro.cluster.latency.LatencyModel`;
* a leaky software version grows its working set each window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.cluster.deployment import BASELINE_VERSION, SoftwareVersion
from repro.cluster.hardware import GENERATION_2014, HardwareSpec
from repro.cluster.service import MicroServiceProfile
from repro.telemetry.counters import Counter, workload_counter

#: Average network packet size (bytes) used to derive the packet counter.
_PACKET_BYTES = 1_100.0

#: Baseline resident working set (MB) for a freshly started server.
_BASE_WORKING_SET_MB = 9_000.0


class ServerState(enum.Enum):
    """Operational state; only ONLINE servers receive traffic."""

    ONLINE = "online"
    OFFLINE_MAINTENANCE = "offline_maintenance"
    OFFLINE_REPURPOSED = "offline_repurposed"
    OFFLINE_FAILED = "offline_failed"

    @property
    def is_online(self) -> bool:
        return self is ServerState.ONLINE


@dataclass
class Server:
    """One simulated server in a pool."""

    server_id: str
    pool_id: str
    datacenter_id: str
    profile: MicroServiceProfile
    hardware: HardwareSpec = field(default=GENERATION_2014)
    version: SoftwareVersion = field(default=BASELINE_VERSION)
    state: ServerState = field(default=ServerState.ONLINE)
    #: Per-server phase for the periodic log-upload spike so that the
    #: fleet's spikes are decorrelated.
    noise_phase: int = 0
    working_set_mb: float = field(default=_BASE_WORKING_SET_MB)

    def restart(self) -> None:
        """Restart the service process: the working set resets."""
        self.working_set_mb = _BASE_WORKING_SET_MB

    # ------------------------------------------------------------------
    # Ground-truth resource math
    # ------------------------------------------------------------------
    def true_cpu_pct(self, class_rps: Dict[str, float]) -> float:
        """Noise-free CPU percentage for a per-class request volume."""
        work = self.profile.mix.cpu_for(class_rps)
        scaled = work * self.hardware.cpu_scale * self.version.cpu_multiplier
        return self.profile.noise.idle_cpu_pct + scaled

    def true_latency_p95_ms(self, rps: float, utilization: float) -> float:
        """Noise-free 95th-percentile latency for a load point."""
        model = self.profile.latency
        base = model.p95_ms(rps, utilization)
        queue_part = base - model.base_ms - model.cold_ms * np.exp(
            -rps / model.warmup_rps
        )
        adjusted_queue = queue_part * self.version.latency_queue_multiplier
        return (
            model.base_ms
            + self.version.latency_base_delta_ms
            + model.cold_ms * np.exp(-rps / model.warmup_rps)
            + adjusted_queue
        )

    def _log_upload_active(self, window: int) -> bool:
        noise = self.profile.noise
        if noise.log_upload_period_windows <= 0:
            return False
        phase = (window + self.noise_phase) % noise.log_upload_period_windows
        return phase < noise.log_upload_duration_windows

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        window: int,
        class_rps: Dict[str, float],
        rng: np.random.Generator,
    ) -> Dict[str, float]:
        """Emit one window of counter values.

        ``class_rps`` is the per-request-class volume the load balancer
        routed to this server for the window.  Offline servers emit only
        the availability counter.
        """
        if not self.state.is_online:
            return {Counter.AVAILABILITY.value: 0.0}

        profile = self.profile
        noise = profile.noise
        total_rps = float(sum(class_rps.values()))

        # --- CPU ------------------------------------------------------
        cpu = self.true_cpu_pct(class_rps)
        cpu += rng.normal(0.0, noise.idle_cpu_noise_pct)
        if self._log_upload_active(window):
            cpu += noise.log_upload_cpu_pct
        cpu *= rng.normal(1.0, profile.cpu_observation_noise)
        cpu = float(np.clip(cpu, 0.0, 100.0))

        # --- Latency ----------------------------------------------------
        utilization = cpu / 100.0
        p95 = self.true_latency_p95_ms(total_rps, utilization)
        p95 *= rng.normal(1.0, profile.latency_observation_noise)
        p95 = max(p95, 0.1)
        p50 = profile.latency.median_fraction * p95

        # --- Network ----------------------------------------------------
        by_name = {c.name: c for c in profile.mix.classes}
        bytes_total = sum(
            by_name[name].bytes_per_request * rps
            for name, rps in class_rps.items()
            if name in by_name
        )
        # Network counters are linear in workload but visibly noisier
        # than CPU (Fig 2 "we see more variation of bytes and packets"):
        # retransmits, connection churn and co-located control traffic.
        bytes_total *= rng.normal(1.0, 0.15)
        bytes_total = max(bytes_total, 0.0)
        packets = bytes_total / _PACKET_BYTES

        # --- Disk and memory (background-dominated; Fig 2's bands) -----
        disk_read = abs(rng.normal(0.0, noise.disk_noise_bytes))
        if self._log_upload_active(window):
            disk_read += noise.log_upload_disk_bytes
        memory_pages = abs(rng.normal(0.0, noise.memory_pages_noise))
        # Paging correlates with disk reads (the paper infers most disk
        # activity is paging); couple them loosely.
        memory_pages += disk_read / 8e3 * rng.uniform(0.5, 1.5)
        disk_queue = max(rng.normal(noise.disk_queue_mean, 1.0), 0.0)

        # --- Memory working set (leak accounting) ----------------------
        self.working_set_mb += self.version.memory_leak_mb_per_window

        # --- Errors -----------------------------------------------------
        # Near zero in steady state; grows only at extreme utilization.
        error_rate = 0.0
        if utilization > 0.9:
            error_rate = (utilization - 0.9) * total_rps * 0.5
        errors = max(rng.normal(error_rate, 0.01), 0.0)

        return {
            Counter.AVAILABILITY.value: 1.0,
            Counter.REQUESTS.value: total_rps,
            Counter.PROCESSOR_UTILIZATION.value: cpu,
            Counter.LATENCY_P95.value: float(p95),
            Counter.LATENCY_P50.value: float(p50),
            Counter.NETWORK_BYTES_TOTAL.value: float(bytes_total),
            Counter.NETWORK_PACKETS.value: float(packets),
            Counter.DISK_READ_BYTES.value: float(disk_read),
            Counter.DISK_QUEUE_LENGTH.value: float(disk_queue),
            Counter.MEMORY_PAGES.value: float(memory_pages),
            Counter.MEMORY_WORKING_SET.value: float(self.working_set_mb * 1e6),
            Counter.ERRORS.value: float(errors),
            **{
                workload_counter(name): float(rps)
                for name, rps in class_rps.items()
            },
        }
