"""Software versions and their resource/QoS deltas.

Step 4 (offline capacity validation) and the Fig 16 case study hinge on
software changes that shift the workload->resource or workload->QoS
curves.  A :class:`SoftwareVersion` carries those ground-truth deltas;
the regression-analysis machinery must *detect* them from telemetry
without ever reading them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SoftwareVersion:
    """One released build of a micro-service.

    Parameters
    ----------
    name:
        Build identifier (e.g. ``"v42"``).
    cpu_multiplier:
        Scales per-request CPU cost (1.0 = no change; 1.15 = a 15 %
        capacity regression).
    latency_base_delta_ms:
        Additive shift of the latency floor.
    latency_queue_multiplier:
        Scales the queueing term — regressions of this kind only appear
        *under load*, which is exactly why Fig 16's defect escaped
        ordinary testing and was caught by the ramped regression
        analysis.
    memory_leak_mb_per_window:
        Working-set growth per telemetry window; the Fig 16 baseline
        leaks, and the fix sets this to zero (while accidentally
        regressing the queue multiplier).
    """

    name: str
    cpu_multiplier: float = 1.0
    latency_base_delta_ms: float = 0.0
    latency_queue_multiplier: float = 1.0
    memory_leak_mb_per_window: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("version name must be non-empty")
        if self.cpu_multiplier <= 0:
            raise ValueError("cpu_multiplier must be positive")
        if self.latency_queue_multiplier <= 0:
            raise ValueError("latency_queue_multiplier must be positive")
        if self.memory_leak_mb_per_window < 0:
            raise ValueError("memory_leak_mb_per_window must be non-negative")


#: The default, well-behaved build.
BASELINE_VERSION = SoftwareVersion(name="v1")


def leaky_version(name: str = "v1-leaky", mb_per_window: float = 4.0) -> SoftwareVersion:
    """A build with the Fig 16 memory leak."""
    return SoftwareVersion(name=name, memory_leak_mb_per_window=mb_per_window)


def leak_fix_with_latency_regression(
    name: str = "v2-leakfix",
    queue_multiplier: float = 1.9,
) -> SoftwareVersion:
    """The Fig 16 change: fixes the leak, regresses latency under load."""
    return SoftwareVersion(
        name=name,
        memory_leak_mb_per_window=0.0,
        latency_queue_multiplier=queue_multiplier,
    )
