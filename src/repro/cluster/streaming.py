"""Streaming simulation: an unbounded clock loop over a batch core.

Both related fleet simulators are *step-forever* loops — a clock
advances, demand arrives, state updates, repeat — while our engines
were batch-only: fixed horizon, memoized full-recompute queries.
:class:`StreamingSimulator` closes that gap without forking the
engine: it drives the existing :class:`~repro.cluster.simulation.\
Simulator` one emission block at a time via
:meth:`~repro.cluster.simulation.Simulator.run_block`, which issues
*exactly* the call sequence one big ``run()`` of the same horizon
would — so streamed telemetry is bit-identical to the batch run by
construction, on every shard backend.

Around that core the loop adds the three things a run-for-days fleet
needs:

* **Incremental aggregates** — after each block the store's
  :meth:`seal_through` extends the tracked per-window aggregate
  series, so operator queries over sealed history are served from the
  maintained series instead of re-gathering (and re-reading spill)
  per query.
* **Rolling retention** — windows older than ``retain_windows`` are
  evicted to the store's spill archive each block; hot memory stays
  bounded by the retained span while queries that reach below the
  watermark still merge the archive back exactly.
* **An online alarm** — an
  :class:`~repro.core.regression_analysis.OnlineRegressionAlarm`
  observed once per sealed block, latching a named
  :class:`~repro.core.regression_analysis.RegressionAlert` within a
  bounded number of blocks of a mid-stream regression.

The loop runs until ``max_windows`` or ``KeyboardInterrupt`` (SIGINT:
the ``repro simulate --stream`` entry point), then reconciles
per-server state exactly like a finishing batch run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.simulation import Simulator
from repro.core.regression_analysis import OnlineRegressionAlarm, RegressionAlert
from repro.telemetry.counters import Counter
from repro.telemetry.query_server import LiveQuerySurface, QueryServer

#: The counters the online alarm's response profiles are fitted from;
#: tracked incrementally (mean) so per-block alarm evaluation never
#: re-gathers or touches spill.
ALARM_COUNTERS = (
    Counter.REQUESTS.value,
    Counter.PROCESSOR_UTILIZATION.value,
    Counter.LATENCY_P95.value,
    Counter.MEMORY_WORKING_SET.value,
)


@dataclass
class StreamingReport:
    """What a streaming run did: progress, retention, and verdicts."""

    #: Windows simulated by this ``run`` call.
    windows: int = 0
    #: Blocks the clock loop advanced.
    blocks: int = 0
    #: Rows moved to the spill archive by rolling retention.
    evicted_rows: int = 0
    #: Every alert the online alarm raised (latched: at most one per
    #: alarm, kept in firing order).
    alerts: List[RegressionAlert] = field(default_factory=list)
    #: ``"max-windows"`` or ``"interrupt"``.
    stopped_by: str = "max-windows"


class StreamingSimulator:
    """Drive a :class:`Simulator` as an unbounded block-clock loop.

    Parameters
    ----------
    sim:
        The simulator to stream.  Its ``config.block_windows`` is the
        clock tick: every loop iteration advances one emission block
        (so ``block_windows=1`` streams per window).
    retain_windows:
        Keep only the trailing N windows hot; older rows are evicted
        to the store's spill archive after each block.  ``None``
        disables retention (everything stays hot, like batch mode).
    alarm:
        An :class:`OnlineRegressionAlarm` observed once per sealed
        block.  Its profile counters are registered as tracked (mean)
        aggregates so each observation reads the incrementally
        maintained series.
    track:
        Extra aggregates to maintain incrementally: an iterable of
        ``(pool_id, counter, datacenter_id, reducer)`` tuples passed
        to the store's ``track_aggregate``.
    query_listen:
        ``host:port`` to serve live operator queries on (port 0 picks
        an ephemeral port — read it back from :attr:`query_address`).
        Starts a :class:`~repro.telemetry.query_server.QueryServer`
        whose sessions share one read-only
        :class:`~repro.telemetry.query_server.LiveQuerySurface` over
        ``sim.store``.  The clock loop holds the store's lock across
        every whole block, so readers observe only sealed block
        boundaries — a live answer for any window ``w <=
        sealed_through`` is bit-identical to a finished batch twin.
        The server outlives :meth:`run` (so a finished run stays
        queryable); call :meth:`close` to stop it.
    """

    def __init__(
        self,
        sim: Simulator,
        retain_windows: Optional[int] = None,
        alarm: Optional[OnlineRegressionAlarm] = None,
        track: Sequence[Tuple[str, str, Optional[str], str]] = (),
        query_listen: Optional[str] = None,
    ) -> None:
        if retain_windows is not None and retain_windows < 1:
            raise ValueError("retain_windows must be >= 1 (or None)")
        self.sim = sim
        self.retain_windows = retain_windows
        self.alarm = alarm
        self._actions: Dict[int, List[Callable[[], None]]] = {}
        store = sim.store
        for pool_id, counter, datacenter_id, reducer in track:
            store.track_aggregate(pool_id, counter, datacenter_id, reducer)
        if alarm is not None:
            for counter in ALARM_COUNTERS:
                store.track_aggregate(
                    alarm.pool_id, counter, alarm.datacenter_id, "mean"
                )
        #: Live progress mirrored for the query surface, updated under
        #: the store lock at each block boundary: the sealed watermark,
        #: windows/blocks advanced, and every latched alert so far.
        self.sealed_window: int = -1
        self.windows: int = 0
        self.blocks: int = 0
        self.alerts: List[RegressionAlert] = []
        self._query_server: Optional[QueryServer] = None
        if query_listen is not None:
            surface = LiveQuerySurface(store, streamer=self)
            self._query_server = QueryServer(surface, address=query_listen)
            self._query_server.start()

    @property
    def query_address(self) -> Optional[str]:
        """The query server's bound ``host:port`` (None when not serving)."""
        if self._query_server is None:
            return None
        return self._query_server.address

    def close(self) -> None:
        """Stop the query server, if one is running (idempotent)."""
        if self._query_server is not None:
            self._query_server.stop()

    def schedule(self, window: int, action: Callable[[], None]) -> None:
        """Run ``action`` before the block containing ``window`` starts.

        The streaming fault/rollout hook: schedule a
        ``sim.set_version(...)`` to inject a mid-stream regression, a
        ``resize_pool`` to model a capacity change, and so on.
        Actions fire at block granularity — before the first block
        whose window range includes ``window``.
        """
        if window < 0:
            raise ValueError("window must be non-negative")
        self._actions.setdefault(window, []).append(action)

    def _fire_due_actions(self, next_block_end: int) -> None:
        due = [w for w in self._actions if w < next_block_end]
        for window in sorted(due):
            for action in self._actions.pop(window):
                action()

    def run(self, max_windows: Optional[int] = None) -> StreamingReport:
        """Stream blocks until ``max_windows`` (or forever until SIGINT).

        Returns a :class:`StreamingReport`; per-server state is
        reconciled (``sync_server_state``) on every exit path, so the
        fleet is inspectable after an interrupt too.
        """
        if max_windows is not None and max_windows < 0:
            raise ValueError("max_windows must be non-negative (or None)")
        sim = self.sim
        store = sim.store
        block = max(1, sim.config.block_windows)
        report = StreamingReport()
        try:
            while True:
                step = block
                if max_windows is not None:
                    step = min(step, max_windows - report.windows)
                    if step <= 0:
                        report.stopped_by = "max-windows"
                        break
                # The whole block span — ingest, seal, alarm, evict —
                # mutates under the store lock, so a live query-server
                # reader only ever observes sealed block boundaries
                # (every visible window final), never a half-ingested
                # block.  Between iterations the lock is free and
                # readers drain.
                with store.lock:
                    self._fire_due_actions(sim.current_window + step)
                    sim.run_block(step)
                    report.windows += step
                    report.blocks += 1
                    sealed = sim.current_window - 1
                    store.seal_through(sealed)
                    if self.alarm is not None:
                        alert = self.alarm.observe(store, sealed)
                        if alert is not None:
                            report.alerts.append(alert)
                            self.alerts.append(alert)
                    if self.retain_windows is not None:
                        cutoff = sim.current_window - self.retain_windows
                        if cutoff > 0:
                            report.evicted_rows += int(
                                store.evict_windows(cutoff) or 0
                            )
                    self.sealed_window = sealed
                    self.windows = report.windows
                    self.blocks = report.blocks
        except KeyboardInterrupt:
            report.stopped_by = "interrupt"
        finally:
            sim.sync_server_state()
        return report
