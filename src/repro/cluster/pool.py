"""Server pools and the load balancer.

"A server pool is a set of servers with a network load-balancer
distributing incoming requests evenly across them.  All servers have
the same software and hardware." (§I, footnote 1).  The pool is the
unit of capacity: planning adds or removes whole servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.deployment import SoftwareVersion
from repro.cluster.hardware import HardwareSpec
from repro.cluster.server import Server, ServerArrays, ServerState
from repro.cluster.service import MicroServiceProfile


@dataclass
class ServerPool:
    """The servers of one micro-service in one datacenter."""

    pool_id: str
    datacenter_id: str
    profile: MicroServiceProfile
    servers: List[Server] = field(default_factory=list)
    #: Cached column view of the servers for the batched observation
    #: path; rebuilt lazily after any composition change.
    _arrays: Optional[ServerArrays] = field(default=None, repr=False, compare=False)

    @classmethod
    def build(
        cls,
        pool_id: str,
        datacenter_id: str,
        profile: MicroServiceProfile,
        n_servers: int,
        hardware: HardwareSpec,
        rng: np.random.Generator,
        hardware_mix: Optional[Dict[HardwareSpec, float]] = None,
    ) -> "ServerPool":
        """Construct a pool of ``n_servers`` identical (or mixed) servers.

        ``hardware_mix`` maps SKU -> fraction; when provided it overrides
        ``hardware`` and produces the Fig 3 two-generation pool.
        """
        if n_servers < 1:
            raise ValueError("a pool needs at least one server")
        pool = cls(pool_id=pool_id, datacenter_id=datacenter_id, profile=profile)
        skus: List[HardwareSpec] = []
        if hardware_mix:
            fractions = np.asarray(list(hardware_mix.values()), dtype=float)
            if abs(fractions.sum() - 1.0) > 1e-6:
                raise ValueError("hardware_mix fractions must sum to 1")
            counts = np.floor(fractions * n_servers).astype(int)
            while counts.sum() < n_servers:
                counts[int(np.argmax(fractions))] += 1
            for sku, count in zip(hardware_mix, counts):
                skus.extend([sku] * int(count))
        else:
            skus = [hardware] * n_servers
        for i, sku in enumerate(skus[:n_servers]):
            pool.servers.append(
                Server(
                    server_id=f"{datacenter_id}.{pool_id}.s{i:04d}",
                    pool_id=pool_id,
                    datacenter_id=datacenter_id,
                    profile=profile,
                    hardware=sku,
                    noise_phase=int(rng.integers(0, 10_000)),
                )
            )
        return pool

    # ------------------------------------------------------------------
    # Capacity control
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.servers)

    def online_servers(self) -> List[Server]:
        return [s for s in self.servers if s.state.is_online]

    @property
    def online_count(self) -> int:
        return len(self.online_servers())

    def server_arrays(self) -> ServerArrays:
        """Cached column view of the servers (the batched hot path).

        The cache is invalidated by :meth:`resize` and
        :meth:`set_version`; code that mutates ``Server`` objects
        directly must call :meth:`invalidate_arrays` afterwards.
        """
        if self._arrays is None or len(self._arrays.server_ids) != self.size:
            self._arrays = ServerArrays.from_servers(self.servers)
        return self._arrays

    def flush_arrays(self) -> None:
        """Write the cached column view's mutable state back to servers."""
        if self._arrays is not None and len(self._arrays.server_ids) == self.size:
            self._arrays.flush(self.servers)

    def invalidate_arrays(self) -> None:
        """Flush and drop the cached column view after a mutation."""
        self.flush_arrays()
        self._arrays = None

    def resize(self, n_servers: int, rng: np.random.Generator) -> None:
        """Grow or shrink the pool to ``n_servers`` total servers.

        Shrinking removes servers from the tail (drained and returned);
        growing clones the configuration of an existing server.  This is
        the experimental control variable of §II-B2.
        """
        if n_servers < 1:
            raise ValueError("cannot shrink a pool below one server")
        self.invalidate_arrays()
        if n_servers < self.size:
            del self.servers[n_servers:]
            return
        template = self.servers[-1]
        for i in range(self.size, n_servers):
            self.servers.append(
                Server(
                    server_id=f"{self.datacenter_id}.{self.pool_id}.s{i:04d}",
                    pool_id=self.pool_id,
                    datacenter_id=self.datacenter_id,
                    profile=self.profile,
                    hardware=template.hardware,
                    version=template.version,
                    noise_phase=int(rng.integers(0, 10_000)),
                )
            )

    def set_version(self, version: SoftwareVersion) -> None:
        """Deploy a software version to every server (instantaneous)."""
        # The restart resets working sets, so the stale cached column
        # view is dropped without flushing back.
        self._arrays = None
        for server in self.servers:
            server.version = version
            server.restart()

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def route(
        self,
        class_volumes: Dict[str, float],
    ) -> Dict[str, Dict[str, float]]:
        """Evenly split per-class volume across online servers.

        Returns server_id -> class -> RPS.  With no online servers the
        traffic is dropped (callers decide whether that is an SLO
        violation); we return an empty routing table.
        """
        online = self.online_servers()
        if not online:
            return {}
        n = len(online)
        per_server = {name: volume / n for name, volume in class_volumes.items()}
        return {server.server_id: dict(per_server) for server in online}

    def step(
        self,
        window: int,
        class_volumes: Dict[str, float],
        rng: np.random.Generator,
    ) -> Dict[str, Dict[str, float]]:
        """Advance one window: route traffic and collect observations.

        Returns server_id -> counter -> value for *all* servers (offline
        servers report only availability = 0).
        """
        routing = self.route(class_volumes)
        observations: Dict[str, Dict[str, float]] = {}
        for server in self.servers:
            class_rps = routing.get(server.server_id, {})
            observations[server.server_id] = server.observe(window, class_rps, rng)
        return observations
