"""Ground-truth latency model.

The planner never sees this model: it only sees the latency counters
servers export.  The functional form reproduces every latency behaviour
the paper observed empirically:

* latency grows **convexly** with load (quadratic polynomials fit well
  over the operating range — Figs 6, 9, 11);
* "the elevated latency at low workload is typical, and caused by
  additional work performed when the software starts such as priming
  caches and pre-compiling managed code" (Fig 6) — a cold-work term
  that decays with request rate gives the dip-then-rise shape whose
  quadratic fit has a negative linear coefficient, exactly like the
  paper's ``y = 4.03e-5 x^2 - 0.031 x + 36.68``;
* latency explodes only near saturation, which the studied pools never
  approached (no samples above 50 % utilization).

The total per-request 95th-percentile latency is::

    p95(rps, util) = base
                   + cold * exp(-rps / warmup_rps)
                   + queue_coeff * util^2 / (1 - min(util, cap))

with multiplicative observation noise applied by the server layer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Parameters of the ground-truth latency curve (milliseconds)."""

    base_ms: float
    cold_ms: float = 6.0
    warmup_rps: float = 120.0
    queue_coeff_ms: float = 180.0
    utilization_cap: float = 0.95
    median_fraction: float = 0.62

    def __post_init__(self) -> None:
        if self.base_ms <= 0:
            raise ValueError("base_ms must be positive")
        if self.cold_ms < 0:
            raise ValueError("cold_ms must be non-negative")
        if self.warmup_rps <= 0:
            raise ValueError("warmup_rps must be positive")
        if self.queue_coeff_ms < 0:
            raise ValueError("queue_coeff_ms must be non-negative")
        if not 0.0 < self.utilization_cap < 1.0:
            raise ValueError("utilization_cap must be in (0, 1)")
        if not 0.0 < self.median_fraction <= 1.0:
            raise ValueError("median_fraction must be in (0, 1]")

    def p95_ms(self, rps_per_server: float, utilization: float) -> float:
        """95th-percentile latency at a given per-server load point.

        ``utilization`` is a fraction in [0, 1]; values at or above the
        cap are clamped just below it (the queue term stays finite but
        very large, modelling a saturated-but-alive server).
        """
        import math

        if rps_per_server < 0:
            raise ValueError("rps_per_server must be non-negative")
        util = min(max(utilization, 0.0), self.utilization_cap - 1e-6)
        cold = self.cold_ms * math.exp(-rps_per_server / self.warmup_rps)
        queue = self.queue_coeff_ms * util * util / (1.0 - util)
        return self.base_ms + cold + queue

    def p50_ms(self, rps_per_server: float, utilization: float) -> float:
        """Median latency — a fixed fraction of the tail in this model."""
        return self.median_fraction * self.p95_ms(rps_per_server, utilization)
