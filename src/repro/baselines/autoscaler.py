"""Reactive dynamic autoscaler — the feedback baseline.

§I's critique of dynamic capacity allocation for large online services:

* diurnal swings need thousands of servers moved, "more than is readily
  available to dynamically allocate during peak demand" — modelled by
  ``max_step_servers`` and ``pool_limit_servers``;
* "prior work underestimated the time required to change the capacity
  of a system" (service start-up, JIT, cache priming, logistics) —
  modelled by ``provisioning_lag_windows``;
* scaling decisions chase measured utilization, so every lag window of
  rising demand is served under-provisioned.

The autoscaler replays a demand series and reports both its capacity
footprint and its SLO misses, for head-to-head comparison with the
black-box plan in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class AutoscalerOutcome:
    """What the reactive controller did over the replayed trace."""

    allocation: np.ndarray  # online servers per window
    demand_rps: np.ndarray
    overload_windows: int
    total_windows: int
    peak_allocation: int
    mean_allocation: float

    @property
    def overload_fraction(self) -> float:
        if self.total_windows == 0:
            return 0.0
        return self.overload_windows / self.total_windows

    def describe(self) -> str:
        return (
            f"autoscaler: mean {self.mean_allocation:.1f} servers, peak "
            f"{self.peak_allocation}, overloaded in "
            f"{self.overload_fraction:.1%} of windows"
        )


@dataclass
class ReactiveAutoscaler:
    """Threshold-based scaling with provisioning lag.

    Scales so that projected per-server load returns to
    ``target_rps_per_server``; upscale requests only materialise after
    ``provisioning_lag_windows`` (start-up + logistics), downscales are
    immediate (draining is fast).  ``max_rps_per_server`` is the true
    capacity limit; demand above allocation * max_rps counts as an
    overload (SLO-miss) window.
    """

    target_rps_per_server: float
    max_rps_per_server: float
    provisioning_lag_windows: int = 15
    max_step_servers: int = 10
    min_servers: int = 1
    pool_limit_servers: int = 100_000
    scale_down_hysteresis: float = 0.8

    def __post_init__(self) -> None:
        if self.target_rps_per_server <= 0:
            raise ValueError("target_rps_per_server must be positive")
        if self.max_rps_per_server <= self.target_rps_per_server:
            raise ValueError("max_rps_per_server must exceed the target")
        if self.provisioning_lag_windows < 0:
            raise ValueError("provisioning_lag_windows must be non-negative")
        if not 0.0 < self.scale_down_hysteresis <= 1.0:
            raise ValueError("scale_down_hysteresis must be in (0, 1]")

    def replay(
        self,
        demand_rps: Sequence[float],
        initial_servers: Optional[int] = None,
    ) -> AutoscalerOutcome:
        """Run the control loop over a demand series."""
        demand = np.asarray(demand_rps, dtype=float)
        if demand.ndim != 1 or demand.size == 0:
            raise ValueError("demand series must be a non-empty 1-D array")
        online = (
            initial_servers
            if initial_servers is not None
            else max(int(np.ceil(demand[0] / self.target_rps_per_server)), self.min_servers)
        )
        pending: List[int] = []  # arrival window of each in-flight server
        allocation = np.empty(demand.size, dtype=int)
        overloads = 0

        for w, load in enumerate(demand):
            # In-flight servers that finished provisioning come online.
            arrived = sum(1 for due in pending if due <= w)
            if arrived:
                online += arrived
                pending = [due for due in pending if due > w]
            online = min(max(online, self.min_servers), self.pool_limit_servers)

            allocation[w] = online
            if load > online * self.max_rps_per_server:
                overloads += 1

            # Control decision based on *current observed* load.
            desired = max(
                int(np.ceil(load / self.target_rps_per_server)), self.min_servers
            )
            if desired > online + len(pending):
                step = min(desired - online - len(pending), self.max_step_servers)
                due = w + 1 + self.provisioning_lag_windows
                pending.extend([due] * step)
            elif desired < int(online * self.scale_down_hysteresis):
                step = min(online - desired, self.max_step_servers)
                online = max(online - step, self.min_servers)

        return AutoscalerOutcome(
            allocation=allocation,
            demand_rps=demand,
            overload_windows=overloads,
            total_windows=int(demand.size),
            peak_allocation=int(allocation.max()),
            mean_allocation=float(allocation.mean()),
        )
