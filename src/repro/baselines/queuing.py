"""Queuing-theory (M/M/c) capacity planner — the white-box baseline.

The classical approach the paper contrasts with (§I): model each pool
as an M/M/c queue, parameterised by a measured mean service time, and
size c so the Erlang-C waiting time stays within the latency budget.

Its weakness is exactly the one the paper calls out: the service-time
parameter is part of a hand-maintained model.  When a deployment
changes per-request cost, the queuing plan silently under- or
over-provisions until someone re-measures — the ablation bench
exercises that failure mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


def erlang_c_wait_probability(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Erlang-C probability that an arriving request must queue.

    ``arrival_rate`` (lambda) and ``service_rate`` (mu, per server) in
    the same time unit; ``servers`` is c.  Returns 1.0 for an unstable
    system (rho >= 1).
    """
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive (arrival may be zero)")
    if servers < 1:
        raise ValueError("servers must be >= 1")
    offered = arrival_rate / service_rate  # a = lambda / mu
    rho = offered / servers
    if rho >= 1.0:
        return 1.0
    # Sum_{k=0}^{c-1} a^k / k! computed iteratively to stay stable.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered / k
        total += term
    last = term * offered / servers  # a^c / c!
    numerator = last / (1.0 - rho)
    return numerator / (total + numerator)


def mmc_mean_wait_seconds(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean queueing delay W_q of an M/M/c system (seconds)."""
    p_wait = erlang_c_wait_probability(arrival_rate, service_rate, servers)
    if p_wait >= 1.0:
        return math.inf
    return p_wait / (servers * service_rate - arrival_rate)


@dataclass(frozen=True)
class MMcPlanner:
    """Size a pool with the M/M/c model.

    ``service_time_s`` is the hand-measured mean request service time;
    ``requests_per_server_slot`` converts one physical server into the
    number of concurrent service slots it provides (cores, workers).
    """

    service_time_s: float
    target_latency_s: float
    requests_per_server_slot: int = 16
    max_servers: int = 1_000_000

    def __post_init__(self) -> None:
        if self.service_time_s <= 0:
            raise ValueError("service_time_s must be positive")
        if self.target_latency_s <= self.service_time_s:
            raise ValueError(
                "target latency must exceed the service time; an M/M/c "
                "system can never respond faster than one service time"
            )
        if self.requests_per_server_slot < 1:
            raise ValueError("requests_per_server_slot must be >= 1")

    def required_servers(self, demand_rps: float) -> int:
        """Minimal servers keeping mean latency within target."""
        if demand_rps < 0:
            raise ValueError("demand must be non-negative")
        if demand_rps == 0:
            return 1
        mu = 1.0 / self.service_time_s  # per-slot service rate
        budget_wait = self.target_latency_s - self.service_time_s
        # Lower bound: stability requires c*mu > lambda.  The mean wait
        # is monotone decreasing in the slot count, so exponential
        # search for a feasible upper bound then bisect.
        min_slots = int(math.floor(demand_rps / mu)) + 1
        max_slots_cap = self.max_servers * self.requests_per_server_slot

        hi = min_slots
        while mmc_mean_wait_seconds(demand_rps, mu, hi) > budget_wait:
            if hi > max_slots_cap:
                raise ValueError("demand exceeds max_servers capacity")
            hi = max(hi * 2, hi + 1)
        lo = min_slots
        while lo < hi:
            mid = (lo + hi) // 2
            if mmc_mean_wait_seconds(demand_rps, mu, mid) <= budget_wait:
                hi = mid
            else:
                lo = mid + 1
        if lo > max_slots_cap:
            raise ValueError("demand exceeds max_servers capacity")
        return max(math.ceil(lo / self.requests_per_server_slot), 1)

    def with_service_time(self, service_time_s: float) -> "MMcPlanner":
        """A re-measured copy (what keeping the model current requires)."""
        return MMcPlanner(
            service_time_s=service_time_s,
            target_latency_s=self.target_latency_s,
            requests_per_server_slot=self.requests_per_server_slot,
            max_servers=self.max_servers,
        )
