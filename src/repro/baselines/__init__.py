"""Baseline capacity-planning approaches the paper argues against.

* :mod:`~repro.baselines.queuing` — the white-box queuing-theory
  planner (M/M/c / Erlang-C): accurate only while its hand-maintained
  service-time model matches reality (§I: "models based on simplified
  assumptions are either inaccurate, or are quickly invalidated").
* :mod:`~repro.baselines.autoscaler` — reactive dynamic allocation:
  ignores provisioning lag at its peril (§I's second objection).
* :mod:`~repro.baselines.static_peak` — provision for peak plus a fixed
  headroom fudge factor: the industry default the paper's savings are
  measured against.
"""

from repro.baselines.queuing import MMcPlanner, erlang_c_wait_probability
from repro.baselines.autoscaler import AutoscalerOutcome, ReactiveAutoscaler
from repro.baselines.static_peak import StaticPeakPlanner

__all__ = [
    "MMcPlanner",
    "erlang_c_wait_probability",
    "AutoscalerOutcome",
    "ReactiveAutoscaler",
    "StaticPeakPlanner",
]
