"""Static peak-plus-headroom planner — the industry default.

"Service owners told us the over allocation of capacity was to absorb
unexpected increases in traffic and unplanned capacity outages"
(§III-B1).  In practice that becomes: measure the historical peak,
multiply by a fixed fudge factor, and never revisit.  This baseline
quantifies exactly that policy so the savings of the black-box plan
have a concrete reference point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class StaticPeakPlanner:
    """Provision for observed peak demand times a fixed headroom factor.

    ``rps_per_server_at_target`` is the per-server rate the operator
    considers safe (typically derived from a conservative utilization
    target rather than the QoS curve); ``headroom_factor`` is the fudge
    multiplier (1.5 = 50 % extra capacity).
    """

    rps_per_server_at_target: float
    headroom_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.rps_per_server_at_target <= 0:
            raise ValueError("rps_per_server_at_target must be positive")
        if self.headroom_factor < 1.0:
            raise ValueError("headroom_factor must be >= 1")

    def required_servers(self, demand_rps: Sequence[float]) -> int:
        """Servers for the observed peak, inflated by the headroom factor."""
        demand = np.asarray(demand_rps, dtype=float)
        if demand.size == 0:
            raise ValueError("demand series must be non-empty")
        peak = float(demand.max())
        return max(
            int(np.ceil(peak * self.headroom_factor / self.rps_per_server_at_target)),
            1,
        )
