"""CART decision-tree classifier, built from scratch.

§II-A2 trains "a decision tree with 5-fold cross validation with
manually labeled pools using a minimum leaf size of 2000 machines",
reporting a tree of 34 splits, R^2 = 0.746, and AUC = 0.9804 for the
Yes/No prediction probability.  This module provides the classifier:
binary splits on continuous features chosen by Gini impurity, with
``min_leaf_size`` and ``max_depth`` stopping rules, probabilistic leaf
predictions, split counting, and feature importances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class TreeNode:
    """A node in the fitted tree.

    Internal nodes carry (``feature``, ``threshold``) and two children;
    leaves carry the positive-class probability and sample count.
    """

    probability: float
    n_samples: int
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def count_splits(self) -> int:
        """Number of internal (split) nodes below and including this one."""
        if self.is_leaf:
            return 0
        return 1 + self.left.count_splits() + self.right.count_splits()


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    p = labels.mean()
    return float(2.0 * p * (1.0 - p))


def _best_split(
    features: np.ndarray,
    labels: np.ndarray,
    min_leaf_size: int,
) -> Optional[Tuple[int, float, float]]:
    """Find the (feature, threshold, gain) with maximal Gini gain.

    Thresholds are midpoints between consecutive distinct sorted feature
    values.  Returns ``None`` when no split satisfies ``min_leaf_size``
    on both sides or no split reduces impurity.
    """
    n, n_features = features.shape
    parent_impurity = _gini(labels)
    best: Optional[Tuple[int, float, float]] = None
    best_gain = 1e-12  # require strictly positive gain

    for j in range(n_features):
        order = np.argsort(features[:, j], kind="stable")
        xs = features[order, j]
        ys = labels[order]
        # Prefix sums of positives let us score every cut in O(n).
        positives = np.cumsum(ys)
        total_pos = positives[-1]
        for i in range(min_leaf_size, n - min_leaf_size + 1):
            if i < 1 or i >= n:
                continue
            if xs[i - 1] == xs[i]:
                continue  # cannot cut between equal values
            left_n, right_n = i, n - i
            left_pos = positives[i - 1]
            right_pos = total_pos - left_pos
            p_l = left_pos / left_n
            p_r = right_pos / right_n
            child_impurity = (
                left_n / n * 2.0 * p_l * (1.0 - p_l)
                + right_n / n * 2.0 * p_r * (1.0 - p_r)
            )
            gain = parent_impurity - child_impurity
            if gain > best_gain:
                best_gain = gain
                threshold = 0.5 * (xs[i - 1] + xs[i])
                best = (j, float(threshold), float(gain))
    return best


@dataclass
class DecisionTreeClassifier:
    """Binary CART classifier over continuous features.

    Parameters mirror the paper's setup: ``min_leaf_size`` is the
    minimum number of samples in each leaf (the paper used 2000
    machines; our synthetic fleets use proportionally smaller values)
    and ``max_depth`` bounds tree height.
    """

    min_leaf_size: int = 1
    max_depth: int = 12
    root: Optional[TreeNode] = field(default=None, repr=False)
    n_features_: int = 0

    def fit(
        self,
        features: Sequence[Sequence[float]],
        labels: Sequence[int],
    ) -> "DecisionTreeClassifier":
        """Grow the tree on ``features`` (n x d) and binary ``labels``."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float)
        if x.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if y.ndim != 1 or y.size != x.shape[0]:
            raise ValueError("labels must be 1-D with one entry per row of features")
        if not np.all((y == 0) | (y == 1)):
            raise ValueError("labels must be binary (0/1)")
        if self.min_leaf_size < 1:
            raise ValueError("min_leaf_size must be >= 1")
        self.n_features_ = x.shape[1]
        self.root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(
            probability=float(y.mean()) if y.size else 0.0,
            n_samples=int(y.size),
            impurity=_gini(y),
        )
        if (
            depth >= self.max_depth
            or y.size < 2 * self.min_leaf_size
            or node.impurity == 0.0
        ):
            return node
        split = _best_split(x, y, self.min_leaf_size)
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def _require_fitted(self) -> TreeNode:
        if self.root is None:
            raise RuntimeError("tree has not been fitted")
        return self.root

    def predict_proba(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Positive-class probability for each row of ``features``."""
        root = self._require_fitted()
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {x.shape[1]}"
            )
        out = np.empty(x.shape[0], dtype=float)
        for i, row in enumerate(x):
            node = root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.probability
        return out

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 probability threshold."""
        return (self.predict_proba(features) >= 0.5).astype(int)

    def count_splits(self) -> int:
        """Number of internal split nodes in the fitted tree."""
        return self._require_fitted().count_splits()

    def depth(self) -> int:
        """Height of the fitted tree."""
        return self._require_fitted().depth()

    def feature_importances(self) -> np.ndarray:
        """Impurity-weighted importance of each feature, normalised to 1."""
        root = self._require_fitted()
        importances = np.zeros(self.n_features_, dtype=float)

        def visit(node: TreeNode) -> None:
            if node.is_leaf:
                return
            child_weighted = (
                node.left.n_samples * node.left.impurity
                + node.right.n_samples * node.right.impurity
            )
            decrease = node.n_samples * node.impurity - child_weighted
            importances[node.feature] += max(decrease, 0.0)
            visit(node.left)
            visit(node.right)

        visit(root)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
