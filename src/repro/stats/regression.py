"""Ordinary least-squares linear and polynomial regression.

The paper fits two families of curves from telemetry:

* workload -> limiting resource (CPU): **linear**, e.g.
  ``y = 0.028 * RPS + 1.37`` with ``R^2 = 0.984`` (Fig 8), and
* workload -> QoS (95th-percentile latency): **quadratic**, e.g.
  ``y = 4.028e-5 * RPS^2 - 0.031 * RPS + 36.68`` (Fig 9).

Both are implemented here via numpy least squares, together with the
goodness-of-fit (R^2) statistic the paper reports for every fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np


def _validate_xy(x: Sequence[float], y: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.ndim != 1 or ys.ndim != 1:
        raise ValueError("x and y must be one-dimensional")
    if xs.size != ys.size:
        raise ValueError(f"x and y must have equal length, got {xs.size} != {ys.size}")
    return xs, ys


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    Returns 1.0 for a perfect fit.  When the response is constant the
    total sum of squares is zero; we follow the convention of returning
    1.0 if the fit is also exact and 0.0 otherwise.
    """
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True)
class LinearModel:
    """A fitted line ``y = slope * x + intercept``.

    Mirrors the linear CPU-vs-workload models in §III-A, carrying the
    sample count and R^2 the paper reports alongside each fit.
    """

    slope: float
    intercept: float
    r2: float
    n: int
    residual_std: float

    def predict(self, x) -> np.ndarray:
        """Evaluate the line at ``x`` (scalar or array)."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept

    def predict_scalar(self, x: float) -> float:
        """Evaluate the line at a single point, returning a float."""
        return float(self.slope * x + self.intercept)

    def describe(self) -> str:
        """Render the fit the way the paper prints it."""
        return (
            f"y = {self.slope:.4g}*x + {self.intercept:.4g} "
            f"(R^2 = {self.r2:.3f}, N = {self.n})"
        )


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearModel:
    """Least-squares fit of a straight line to (x, y)."""
    xs, ys = _validate_xy(x, y)
    if xs.size < 2:
        raise ValueError("linear fit requires at least two points")
    design = np.column_stack([xs, np.ones_like(xs)])
    coeffs, *_ = np.linalg.lstsq(design, ys, rcond=None)
    slope, intercept = float(coeffs[0]), float(coeffs[1])
    pred = design @ coeffs
    residuals = ys - pred
    dof = max(xs.size - 2, 1)
    return LinearModel(
        slope=slope,
        intercept=intercept,
        r2=r_squared(ys, pred),
        n=int(xs.size),
        residual_std=float(np.sqrt(np.sum(residuals**2) / dof)),
    )


@dataclass(frozen=True)
class PolynomialModel:
    """A fitted polynomial ``y = c[0]*x^d + c[1]*x^(d-1) + ... + c[d]``.

    Coefficients are in numpy ``polyval`` order (highest degree first).
    The paper's latency fits are degree-2 instances of this class.
    """

    coefficients: Tuple[float, ...]
    r2: float
    n: int
    residual_std: float
    x_min: float = field(default=float("nan"))
    x_max: float = field(default=float("nan"))

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def predict(self, x) -> np.ndarray:
        """Evaluate the polynomial at ``x`` (scalar or array)."""
        return np.polyval(np.asarray(self.coefficients, dtype=float), np.asarray(x, dtype=float))

    def predict_scalar(self, x: float) -> float:
        """Evaluate the polynomial at a single point, returning a float."""
        return float(np.polyval(np.asarray(self.coefficients, dtype=float), x))

    def is_extrapolating(self, x: float) -> bool:
        """True when ``x`` lies outside the range the model was fitted on.

        The paper stresses that forecasts are extrapolations whose trend
        shape may shift (§III-A), so consumers surface this flag.
        """
        return bool(x < self.x_min or x > self.x_max)

    def describe(self) -> str:
        """Render the fit the way the paper prints it."""
        terms = []
        degree = self.degree
        for i, c in enumerate(self.coefficients):
            power = degree - i
            if power > 1:
                terms.append(f"{c:.4g}*x^{power}")
            elif power == 1:
                terms.append(f"{c:+.4g}*x")
            else:
                terms.append(f"{c:+.4g}")
        return f"y = {' '.join(terms)} (R^2 = {self.r2:.3f}, N = {self.n})"


@dataclass(frozen=True)
class MultiLinearModel:
    """A fitted hyperplane ``y = coeffs . x + intercept``.

    Used when a workload must be decomposed into several request-class
    metrics before the resource relationship becomes tight (§II-A1's
    per-table split).
    """

    coefficients: Tuple[float, ...]
    intercept: float
    r2: float
    n: int

    def predict(self, x) -> np.ndarray:
        array = np.asarray(x, dtype=float)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        return array @ np.asarray(self.coefficients) + self.intercept

    def describe(self) -> str:
        terms = " + ".join(
            f"{c:.4g}*x{i}" for i, c in enumerate(self.coefficients)
        )
        return f"y = {terms} + {self.intercept:.4g} (R^2 = {self.r2:.3f}, N = {self.n})"


def fit_multilinear(x: Sequence[Sequence[float]], y: Sequence[float]) -> MultiLinearModel:
    """Least-squares fit of a hyperplane to (X, y)."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.ndim == 1:
        xs = xs.reshape(-1, 1)
    if xs.shape[0] != ys.size:
        raise ValueError("X rows and y length must match")
    if xs.shape[0] < xs.shape[1] + 1:
        raise ValueError("not enough points for the number of features")
    design = np.column_stack([xs, np.ones(xs.shape[0])])
    coeffs, *_ = np.linalg.lstsq(design, ys, rcond=None)
    pred = design @ coeffs
    return MultiLinearModel(
        coefficients=tuple(float(c) for c in coeffs[:-1]),
        intercept=float(coeffs[-1]),
        r2=r_squared(ys, pred),
        n=int(ys.size),
    )


def fit_polynomial(
    x: Sequence[float],
    y: Sequence[float],
    degree: int = 2,
) -> PolynomialModel:
    """Least-squares polynomial fit (default quadratic, as in Eq. 1)."""
    xs, ys = _validate_xy(x, y)
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if xs.size < degree + 1:
        raise ValueError(
            f"polynomial fit of degree {degree} requires at least {degree + 1} points, "
            f"got {xs.size}"
        )
    coeffs = np.polyfit(xs, ys, degree)
    pred = np.polyval(coeffs, xs)
    residuals = ys - pred
    dof = max(xs.size - (degree + 1), 1)
    return PolynomialModel(
        coefficients=tuple(float(c) for c in coeffs),
        r2=r_squared(ys, pred),
        n=int(xs.size),
        residual_std=float(np.sqrt(np.sum(residuals**2) / dof)),
        x_min=float(xs.min()),
        x_max=float(xs.max()),
    )
