"""Algorithmic statistics substrate for the capacity-planning library.

Everything the paper's methodology leans on — ordinary least squares,
robust (RANSAC) regression, CART decision trees, k-means clustering,
cross-validation / ROC analysis, and descriptive statistics — is
implemented here from scratch on top of numpy so the rest of the library
has no dependency on scikit-learn or similar packages.
"""

from repro.stats.descriptive import (
    Cdf,
    SummaryStats,
    empirical_cdf,
    percentile_profile,
    summarize,
)
from repro.stats.regression import (
    LinearModel,
    PolynomialModel,
    fit_linear,
    fit_polynomial,
)
from repro.stats.ransac import RansacModel, RansacRegressor
from repro.stats.decision_tree import DecisionTreeClassifier, TreeNode
from repro.stats.clustering import ClusteringResult, KMeans, select_k
from repro.stats.crossval import (
    CrossValidationResult,
    auc_score,
    confusion_counts,
    k_fold_indices,
    roc_curve,
)

__all__ = [
    "Cdf",
    "SummaryStats",
    "empirical_cdf",
    "percentile_profile",
    "summarize",
    "LinearModel",
    "PolynomialModel",
    "fit_linear",
    "fit_polynomial",
    "RansacModel",
    "RansacRegressor",
    "DecisionTreeClassifier",
    "TreeNode",
    "ClusteringResult",
    "KMeans",
    "select_k",
    "CrossValidationResult",
    "auc_score",
    "confusion_counts",
    "k_fold_indices",
    "roc_curve",
]
