"""Cross-validation and classifier evaluation utilities.

Supports the §II-A2 evaluation protocol: 5-fold cross validation of the
pool-grouping decision tree, with the AUC of the Yes/No prediction
probability (paper: 0.9804) and the R^2 of predicted probabilities
against labels (paper: 0.746).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.regression import r_squared


def k_fold_indices(
    n: int,
    k: int,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs for shuffled k-fold CV.

    The shuffle draws from ``rng`` when given; otherwise from a
    generator seeded with ``seed`` — an explicit parameter so the fold
    assignment is reproducible by construction, not by accident.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"cannot split {n} samples into {k} folds")
    rng = rng if rng is not None else np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train_idx, test_idx


def roc_curve(
    labels: Sequence[int],
    scores: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute (fpr, tpr, thresholds) for a binary classifier.

    Thresholds sweep the distinct score values from high to low.
    """
    y = np.asarray(labels, dtype=int)
    s = np.asarray(scores, dtype=float)
    if y.size != s.size:
        raise ValueError("labels and scores must have equal length")
    n_pos = int((y == 1).sum())
    n_neg = int((y == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC requires both positive and negative labels")
    order = np.argsort(-s, kind="stable")
    y_sorted = y[order]
    s_sorted = s[order]
    tps = np.cumsum(y_sorted == 1)
    fps = np.cumsum(y_sorted == 0)
    # Keep one operating point per distinct threshold.
    distinct = np.r_[np.where(np.diff(s_sorted))[0], y_sorted.size - 1]
    tpr = np.r_[0.0, tps[distinct] / n_pos]
    fpr = np.r_[0.0, fps[distinct] / n_neg]
    thresholds = np.r_[np.inf, s_sorted[distinct]]
    return fpr, tpr, thresholds


def auc_score(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve via trapezoidal integration."""
    fpr, tpr, _ = roc_curve(labels, scores)
    return float(np.trapezoid(tpr, fpr))


def confusion_counts(
    labels: Sequence[int],
    predictions: Sequence[int],
) -> Tuple[int, int, int, int]:
    """Return (true_pos, false_pos, true_neg, false_neg)."""
    y = np.asarray(labels, dtype=int)
    p = np.asarray(predictions, dtype=int)
    if y.size != p.size:
        raise ValueError("labels and predictions must have equal length")
    tp = int(((y == 1) & (p == 1)).sum())
    fp = int(((y == 0) & (p == 1)).sum())
    tn = int(((y == 0) & (p == 0)).sum())
    fn = int(((y == 1) & (p == 0)).sum())
    return tp, fp, tn, fn


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregate metrics from a k-fold cross-validation run."""

    k: int
    auc: float
    r2: float
    accuracy: float
    fold_aucs: Tuple[float, ...]

    def describe(self) -> str:
        return (
            f"{self.k}-fold CV: AUC = {self.auc:.4f}, R^2 = {self.r2:.3f}, "
            f"accuracy = {self.accuracy:.3f}"
        )


def cross_validate_classifier(
    make_classifier,
    features: Sequence[Sequence[float]],
    labels: Sequence[int],
    k: int = 5,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> CrossValidationResult:
    """Run k-fold CV for a probabilistic binary classifier.

    ``make_classifier`` is a zero-argument factory returning an object
    with ``fit(X, y)`` and ``predict_proba(X)``.  Out-of-fold
    probabilities are pooled before computing AUC / R^2 / accuracy,
    mirroring the single summary numbers the paper reports.  The fold
    shuffle uses ``rng`` when given, else a generator seeded with
    ``seed`` (see :func:`k_fold_indices`).
    """
    x = np.asarray(features, dtype=float)
    y = np.asarray(labels, dtype=int)
    pooled_scores = np.zeros(y.size, dtype=float)
    fold_aucs: List[float] = []
    for train_idx, test_idx in k_fold_indices(y.size, k, rng=rng, seed=seed):
        clf = make_classifier()
        clf.fit(x[train_idx], y[train_idx])
        scores = clf.predict_proba(x[test_idx])
        pooled_scores[test_idx] = scores
        fold_labels = y[test_idx]
        if 0 < fold_labels.sum() < fold_labels.size:
            fold_aucs.append(auc_score(fold_labels, scores))
    overall_auc = auc_score(y, pooled_scores)
    overall_r2 = r_squared(y.astype(float), pooled_scores)
    accuracy = float(((pooled_scores >= 0.5).astype(int) == y).mean())
    return CrossValidationResult(
        k=k,
        auc=overall_auc,
        r2=overall_r2,
        accuracy=accuracy,
        fold_aucs=tuple(fold_aucs),
    )
