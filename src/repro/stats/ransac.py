"""RANSAC robust regression.

§II-B2 fits the second-order latency model (Eq. 1) with "robust
regressions (RANSAC)" because production experiments are contaminated
by natural operational changes — deployments, traffic shifts — that
inject outlier observations (visible in the 3rd RSM iteration of
Fig 7).  This module implements the classic Fischler–Bolles RANSAC
loop generically over the OLS fitters in :mod:`repro.stats.regression`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.stats.regression import (
    LinearModel,
    PolynomialModel,
    fit_linear,
    fit_polynomial,
)

FittedModel = Union[LinearModel, PolynomialModel]


@dataclass(frozen=True)
class RansacModel:
    """Result of a RANSAC fit: the refit consensus model plus metadata."""

    model: FittedModel
    inlier_mask: np.ndarray
    n_inliers: int
    n_outliers: int
    iterations_run: int

    @property
    def inlier_fraction(self) -> float:
        total = self.n_inliers + self.n_outliers
        return self.n_inliers / total if total else 0.0

    def predict(self, x) -> np.ndarray:
        return self.model.predict(x)

    def predict_scalar(self, x: float) -> float:
        return self.model.predict_scalar(x)


class RansacRegressor:
    """Random-sample-consensus wrapper around linear/polynomial OLS.

    Parameters
    ----------
    degree:
        Polynomial degree of the underlying model; ``1`` selects the
        plain linear fitter.
    residual_threshold:
        Absolute residual below which a point counts as an inlier.  When
        ``None`` it defaults to 1.5x the median absolute deviation of
        ``y`` (a standard scale-free choice).
    max_iterations:
        Number of random minimal samples to try.
    min_inlier_fraction:
        A consensus set smaller than this fraction of the data is
        rejected; if no acceptable consensus is found the regressor
        falls back to a plain OLS fit on all points (so callers always
        get a usable model, matching the paper's "start simple" ethos).
    rng:
        The random generator driving subset sampling.  Pass one to
        share a stream with a larger pipeline.
    seed:
        Seed for the generator built when ``rng`` is not given.  The
        fit is fully deterministic either way; this makes the default
        stream an explicit, documented choice rather than a hidden
        constant.
    """

    def __init__(
        self,
        degree: int = 2,
        residual_threshold: Optional[float] = None,
        max_iterations: int = 200,
        min_inlier_fraction: float = 0.5,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        if not 0.0 < min_inlier_fraction <= 1.0:
            raise ValueError("min_inlier_fraction must be in (0, 1]")
        self.degree = degree
        self.residual_threshold = residual_threshold
        self.max_iterations = max_iterations
        self.min_inlier_fraction = min_inlier_fraction
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def _fit_subset(self, xs: np.ndarray, ys: np.ndarray) -> FittedModel:
        if self.degree == 1:
            return fit_linear(xs, ys)
        return fit_polynomial(xs, ys, degree=self.degree)

    def _default_threshold(self, ys: np.ndarray) -> float:
        mad = float(np.median(np.abs(ys - np.median(ys))))
        if mad == 0.0:
            # Degenerate (constant) response: any tiny threshold works.
            return max(1e-9, 1e-6 * max(abs(float(ys[0])), 1.0))
        return 1.5 * mad

    def fit(self, x: Sequence[float], y: Sequence[float]) -> RansacModel:
        """Run the RANSAC loop and refit on the best consensus set."""
        xs = np.asarray(x, dtype=float)
        ys = np.asarray(y, dtype=float)
        if xs.size != ys.size:
            raise ValueError("x and y must have equal length")
        minimal = self.degree + 1
        if xs.size < minimal:
            raise ValueError(
                f"RANSAC with degree {self.degree} needs at least {minimal} points"
            )

        threshold = (
            self.residual_threshold
            if self.residual_threshold is not None
            else self._default_threshold(ys)
        )

        best_mask: Optional[np.ndarray] = None
        best_count = 0
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            sample_idx = self._rng.choice(xs.size, size=minimal, replace=False)
            sample_x = xs[sample_idx]
            # A minimal sample with duplicate x values yields a singular
            # design matrix for polynomials; skip those draws.
            if np.unique(sample_x).size < minimal:
                continue
            candidate = self._fit_subset(sample_x, ys[sample_idx])
            residuals = np.abs(ys - candidate.predict(xs))
            mask = residuals <= threshold
            count = int(mask.sum())
            if count > best_count:
                best_count = count
                best_mask = mask
                if count == xs.size:
                    break  # every point is an inlier; cannot improve

        min_consensus = max(minimal, int(np.ceil(self.min_inlier_fraction * xs.size)))
        if best_mask is None or best_count < min_consensus:
            # No stable consensus: degrade gracefully to all-points OLS.
            model = self._fit_subset(xs, ys)
            full_mask = np.ones(xs.size, dtype=bool)
            return RansacModel(
                model=model,
                inlier_mask=full_mask,
                n_inliers=int(xs.size),
                n_outliers=0,
                iterations_run=iterations,
            )

        model = self._fit_subset(xs[best_mask], ys[best_mask])
        return RansacModel(
            model=model,
            inlier_mask=best_mask,
            n_inliers=int(best_mask.sum()),
            n_outliers=int((~best_mask).sum()),
            iterations_run=iterations,
        )
