"""k-means clustering with automatic k selection.

Fig 3 visualises per-server (5th pct CPU, 95th pct CPU) points and
shows that most pools form one tight cluster per datacenter while one
pool splits into *two* clusters — newer, more powerful hardware next to
an older generation.  The grouping stage (§II-A2) must discover such
sub-groups automatically; this module provides Lloyd's algorithm with
k-means++ seeding plus silhouette-based selection of the cluster count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of a k-means run: centers, assignments and quality."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    k: int

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.k)


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation.

    ``rng`` shares a caller's generator; otherwise ``seed`` names the
    stream explicitly (k-means++ seeding and restarts are the only
    stochastic steps, so the same seed reproduces the same clustering
    bit for bit).
    """

    def __init__(
        self,
        k: int,
        max_iterations: int = 100,
        n_init: int = 5,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.max_iterations = max_iterations
        self.n_init = n_init
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def _init_centers(self, points: np.ndarray) -> np.ndarray:
        """k-means++ seeding: spread initial centers apart."""
        n = points.shape[0]
        centers = np.empty((self.k, points.shape[1]), dtype=float)
        first = self._rng.integers(n)
        centers[0] = points[first]
        closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
        for i in range(1, self.k):
            total = closest_sq.sum()
            if total <= 0:
                # All remaining points coincide with a chosen center.
                centers[i:] = centers[0]
                break
            probs = closest_sq / total
            idx = self._rng.choice(n, p=probs)
            centers[i] = points[idx]
            dist_sq = np.sum((points - centers[i]) ** 2, axis=1)
            closest_sq = np.minimum(closest_sq, dist_sq)
        return centers

    def _run_once(self, points: np.ndarray) -> ClusteringResult:
        centers = self._init_centers(points)
        labels = np.zeros(points.shape[0], dtype=int)
        for _ in range(self.max_iterations):
            distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
            new_labels = distances.argmin(axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for j in range(self.k):
                members = points[labels == j]
                if members.size:
                    centers[j] = members.mean(axis=0)
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        labels = distances.argmin(axis=1)
        inertia = float(np.sum(distances[np.arange(points.shape[0]), labels] ** 2))
        return ClusteringResult(centers=centers, labels=labels, inertia=inertia, k=self.k)

    def fit(self, points: Sequence[Sequence[float]]) -> ClusteringResult:
        """Cluster ``points`` (n x d); best of ``n_init`` restarts."""
        array = np.asarray(points, dtype=float)
        if array.ndim == 1:
            array = array.reshape(-1, 1)
        if array.shape[0] < self.k:
            raise ValueError(
                f"cannot form {self.k} clusters from {array.shape[0]} points"
            )
        best: Optional[ClusteringResult] = None
        for _ in range(self.n_init):
            result = self._run_once(array)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points.

    Computed exactly (O(n^2)); our grouping problems are per-pool and
    comfortably small.  Returns 0.0 when every point is in one cluster.
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=int)
    unique = np.unique(labels)
    if unique.size < 2:
        return 0.0
    distances = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=2)
    scores = np.zeros(points.shape[0], dtype=float)
    for i in range(points.shape[0]):
        same = labels == labels[i]
        n_same = same.sum()
        if n_same <= 1:
            scores[i] = 0.0
            continue
        a = distances[i, same].sum() / (n_same - 1)
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            mask = labels == other
            b = min(b, distances[i, mask].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def select_k(
    points: Sequence[Sequence[float]],
    max_k: int = 4,
    min_silhouette: float = 0.6,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> ClusteringResult:
    """Choose the cluster count by silhouette score.

    Tries k = 1..max_k and keeps the k >= 2 with the best silhouette,
    but only if that silhouette clears ``min_silhouette`` — otherwise
    the pool is treated as a single tight group (the common case in
    Fig 3).  The threshold makes the splitter conservative: we only
    partition a pool when the sub-groups are unambiguous, because every
    extra group multiplies the experiment cost downstream.

    ``rng`` shares a caller's generator across the candidate fits;
    otherwise ``seed`` names the stream explicitly.
    """
    array = np.asarray(points, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    rng = rng if rng is not None else np.random.default_rng(seed)
    single = KMeans(1, rng=rng).fit(array)
    best = single
    best_score = min_silhouette
    for k in range(2, max_k + 1):
        if array.shape[0] < k:
            break
        result = KMeans(k, rng=rng).fit(array)
        if np.any(result.cluster_sizes() == 0):
            continue
        score = silhouette_score(array, result.labels)
        if score > best_score:
            best = result
            best_score = score
    return best
