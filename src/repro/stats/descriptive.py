"""Descriptive statistics: percentile profiles, CDFs and summaries.

The paper works almost exclusively with percentile read-outs of noisy
telemetry (5th/25th/50th/75th/95th CPU percentiles, 95th-percentile
latency, CDFs of per-server utilization).  This module centralises those
computations so every consumer uses the same conventions:

* percentiles are computed with linear interpolation (numpy default);
* the paper's "minimum" and "maximum" follow the industry practice of
  using the 5th and 95th percentiles to suppress outliers (§II-A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

#: The percentile grid used for server feature vectors in §II-A2.
STANDARD_PERCENTILES: Tuple[float, ...] = (5.0, 25.0, 50.0, 75.0, 95.0)


@dataclass(frozen=True)
class SummaryStats:
    """Compact summary of a one-dimensional sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p5: float
    p25: float
    p50: float
    p75: float
    p95: float
    maximum: float

    def as_dict(self) -> dict:
        """Return the summary as a plain dictionary (for report rendering)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p5": self.p5,
            "p25": self.p25,
            "p50": self.p50,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for ``values``.

    Raises ``ValueError`` on an empty sample — an empty summary is always
    a caller bug in this library.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    p5, p25, p50, p75, p95 = np.percentile(array, STANDARD_PERCENTILES)
    return SummaryStats(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=float(array.min()),
        p5=float(p5),
        p25=float(p25),
        p50=float(p50),
        p75=float(p75),
        p95=float(p95),
        maximum=float(array.max()),
    )


def percentile_profile(
    values: Sequence[float],
    percentiles: Sequence[float] = STANDARD_PERCENTILES,
) -> np.ndarray:
    """Return the requested percentiles of ``values`` as a float array.

    This is the building block of the server feature vector in §II-A2:
    the 5th/25th/50th/75th/95th CPU-utilization percentiles.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute percentiles of an empty sample")
    return np.percentile(array, list(percentiles)).astype(float)


@dataclass(frozen=True)
class Cdf:
    """Empirical cumulative distribution function.

    ``xs`` are sorted sample values and ``ps`` the cumulative fraction of
    samples less than or equal to each value.  Used for the fleet-wide
    utilization CDFs of Figs 12 and 13.
    """

    xs: np.ndarray
    ps: np.ndarray

    def fraction_at_or_below(self, x: float) -> float:
        """Return P(X <= x) under the empirical distribution."""
        if self.xs.size == 0:
            raise ValueError("CDF built from empty sample")
        idx = np.searchsorted(self.xs, x, side="right")
        if idx == 0:
            return 0.0
        return float(self.ps[idx - 1])

    def fraction_above(self, x: float) -> float:
        """Return P(X > x) under the empirical distribution."""
        return 1.0 - self.fraction_at_or_below(x)

    def quantile(self, p: float) -> float:
        """Return the smallest value x with P(X <= x) >= p."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {p}")
        idx = np.searchsorted(self.ps, p, side="left")
        idx = min(idx, self.xs.size - 1)
        return float(self.xs[idx])


def empirical_cdf(values: Sequence[float]) -> Cdf:
    """Build the empirical CDF of ``values``."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    ps = np.arange(1, array.size + 1, dtype=float) / array.size
    return Cdf(xs=array, ps=ps)


def histogram_fractions(
    values: Sequence[float],
    bin_edges: Sequence[float],
) -> np.ndarray:
    """Return the fraction of samples falling in each histogram bin.

    Used for Fig 13 (distribution of 120 s CPU samples) and Fig 14
    (distribution of daily server availability).
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot histogram an empty sample")
    counts, _ = np.histogram(array, bins=np.asarray(bin_edges, dtype=float))
    return counts.astype(float) / array.size
