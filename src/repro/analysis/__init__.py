"""Fleet-wide studies (§III-B): utilization distributions and savings."""

from repro.analysis.utilization import (
    FleetUtilizationStudy,
    study_fleet_utilization,
)
from repro.analysis.savings import SavingsSummary, summarize_savings

__all__ = [
    "FleetUtilizationStudy",
    "study_fleet_utilization",
    "SavingsSummary",
    "summarize_savings",
]
