"""§III-B1 — fleet-wide utilization analysis (Figs 12-13, §I stats).

The paper's headline resource findings:

* global CPU utilization averages ~23 %;
* ~60 % of servers have a 95th-percentile CPU of <= 15 % and 80 % use
  less than 30 % (Fig 12);
* high-CPU *samples* are rare: only ~1 % of 120 s samples exceed 25 %
  and fewer than 0.1 % exceed 40 % (Fig 13);
* only ~15 % of servers ever spike above 40 %.

This module computes the same read-outs from the metric store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.stats.descriptive import Cdf, empirical_cdf, histogram_fractions
from repro.telemetry.counters import Counter
from repro.telemetry.store import MetricStore


@dataclass(frozen=True)
class FleetUtilizationStudy:
    """All fleet-wide CPU utilization read-outs."""

    #: 95th-percentile CPU per server (the Fig 12 population).
    server_p95: np.ndarray
    #: Every 120 s CPU sample in the study (the Fig 13 population).
    all_samples: np.ndarray
    #: Per-server maximum CPU sample (for the spike analysis).
    server_spike_max: np.ndarray

    # ------------------------------------------------------------------
    # §I / §III-B1 headline numbers
    # ------------------------------------------------------------------
    @property
    def global_mean_utilization(self) -> float:
        """Fleet-wide mean CPU (the paper's 23 %), in percent."""
        return float(self.all_samples.mean())

    @property
    def theoretical_efficiency_factor(self) -> float:
        """Upper-bound efficiency multiple (paper: 'nearly 4x').

        If the fleet could run perfectly mixed at 100 % CPU, current
        demand would need 1/utilization of today's capacity.
        """
        mean = self.global_mean_utilization
        if mean <= 0:
            raise ValueError("mean utilization is zero; factor undefined")
        return 100.0 / mean

    def fraction_of_servers_below(self, p95_cpu_pct: float) -> float:
        """Share of servers whose 95th-pct CPU is <= the threshold."""
        return float((self.server_p95 <= p95_cpu_pct).mean())

    def fraction_of_servers_spiking_above(self, cpu_pct: float) -> float:
        """Share of servers with any sample above the threshold."""
        return float((self.server_spike_max > cpu_pct).mean())

    def fraction_of_samples_above(self, cpu_pct: float) -> float:
        """Share of 120 s samples above the threshold (Fig 13)."""
        return float((self.all_samples > cpu_pct).mean())

    # ------------------------------------------------------------------
    # Figure series
    # ------------------------------------------------------------------
    def p95_cdf(self) -> Cdf:
        """Fig 12: CDF of per-server 95th-percentile CPU."""
        return empirical_cdf(self.server_p95)

    def sample_histogram(
        self, bin_width_pct: float = 2.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fig 13: fraction of samples per CPU bin."""
        edges = np.arange(0.0, 100.0 + bin_width_pct, bin_width_pct)
        return edges, histogram_fractions(self.all_samples, edges)


def study_fleet_utilization(
    store: MetricStore,
    pool_ids: Optional[List[str]] = None,
) -> FleetUtilizationStudy:
    """Build the utilization study over the whole store (or some pools)."""
    pools = pool_ids if pool_ids is not None else list(store.pools)
    p95s: List[np.ndarray] = []
    maxima: List[np.ndarray] = []
    chunks: List[np.ndarray] = []
    for pool in pools:
        # One dense (window, server) CPU cube per pool: the per-server
        # percentile/max reductions become single vectorized passes.
        _windows, _names, matrix = store.pool_matrix(
            pool, Counter.PROCESSOR_UTILIZATION.value
        )
        if matrix.size == 0:
            continue
        counts = np.sum(~np.isnan(matrix), axis=0)
        keep = counts >= 10
        if not keep.any():
            continue
        kept = matrix[:, keep]
        p95s.append(np.nanpercentile(kept, 95.0, axis=0))
        maxima.append(np.nanmax(kept, axis=0))
        chunks.append(kept[~np.isnan(kept)])
    if not chunks:
        raise ValueError("no CPU telemetry found for the requested pools")
    return FleetUtilizationStudy(
        server_p95=np.concatenate(p95s),
        all_samples=np.concatenate(chunks),
        server_spike_max=np.concatenate(maxima),
    )
