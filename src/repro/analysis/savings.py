"""Table IV — summary of server savings for the largest pools.

Combines the headroom (efficiency) savings and availability (online)
savings per pool, and carries the paper's published Table IV values so
benches can print paper-vs-measured rows side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.planner import FleetPlan
from repro.core.report import format_ms, format_percent, render_table

#: The paper's Table IV, keyed by pool letter:
#: (efficiency savings, latency impact ms, online savings, total savings).
PAPER_TABLE_IV: Dict[str, Tuple[float, float, float, float]] = {
    "A": (0.15, 9.0, 0.04, 0.19),
    "B": (0.33, 2.0, 0.27, 0.60),
    "C": (0.04, 7.0, 0.07, 0.11),
    "D": (0.33, 8.0, 0.00, 0.33),
    "E": (0.33, 2.0, 0.02, 0.35),
    "F": (0.33, 4.0, 0.00, 0.33),
    "G": (0.05, 1.0, 0.00, 0.05),
}

#: The paper's aggregate row: ~20 % efficiency, ~5 ms, ~10 % online, ~30 % total.
PAPER_AGGREGATE: Tuple[float, float, float, float] = (0.20, 5.0, 0.10, 0.30)


@dataclass(frozen=True)
class SavingsRow:
    """One pool's measured savings next to the paper's."""

    pool_id: str
    efficiency_savings: float
    latency_impact_ms: float
    online_savings: float
    total_savings: float

    @property
    def paper_values(self) -> Tuple[float, float, float, float]:
        return PAPER_TABLE_IV.get(self.pool_id, (float("nan"),) * 4)


@dataclass(frozen=True)
class SavingsSummary:
    """Measured Table IV with paper-vs-measured rendering."""

    rows: Tuple[SavingsRow, ...]

    @property
    def mean_efficiency(self) -> float:
        return float(np.mean([r.efficiency_savings for r in self.rows]))

    @property
    def mean_online(self) -> float:
        return float(np.mean([r.online_savings for r in self.rows]))

    @property
    def mean_total(self) -> float:
        return float(np.mean([r.total_savings for r in self.rows]))

    @property
    def mean_latency_impact_ms(self) -> float:
        return float(np.mean([r.latency_impact_ms for r in self.rows]))

    def row_for(self, pool_id: str) -> SavingsRow:
        for row in self.rows:
            if row.pool_id == pool_id:
                return row
        raise KeyError(f"no savings row for pool {pool_id!r}")

    def render_comparison(self) -> str:
        """Paper-vs-measured Table IV."""
        table_rows: List[List[object]] = []
        for row in self.rows:
            paper_eff, paper_ms, paper_online, paper_total = row.paper_values
            table_rows.append(
                [
                    row.pool_id,
                    format_percent(paper_eff) if not np.isnan(paper_eff) else "-",
                    format_percent(row.efficiency_savings),
                    format_ms(paper_ms, 0) if not np.isnan(paper_ms) else "-",
                    format_ms(row.latency_impact_ms, 0),
                    format_percent(paper_online) if not np.isnan(paper_online) else "-",
                    format_percent(row.online_savings),
                    format_percent(paper_total) if not np.isnan(paper_total) else "-",
                    format_percent(row.total_savings),
                ]
            )
        table_rows.append(
            [
                "mean",
                format_percent(PAPER_AGGREGATE[0]),
                format_percent(self.mean_efficiency),
                format_ms(PAPER_AGGREGATE[1], 0),
                format_ms(self.mean_latency_impact_ms, 0),
                format_percent(PAPER_AGGREGATE[2]),
                format_percent(self.mean_online),
                format_percent(PAPER_AGGREGATE[3]),
                format_percent(self.mean_total),
            ]
        )
        return render_table(
            [
                "Pool",
                "Eff (paper)",
                "Eff (ours)",
                "QoS (paper)",
                "QoS (ours)",
                "Online (paper)",
                "Online (ours)",
                "Total (paper)",
                "Total (ours)",
            ],
            table_rows,
            title="Table IV: paper vs measured",
        )


def summarize_savings(plan: FleetPlan) -> SavingsSummary:
    """Extract the Table IV rows from a planner outcome."""
    rows = tuple(
        SavingsRow(
            pool_id=s.pool_id,
            efficiency_savings=s.efficiency_savings,
            latency_impact_ms=s.latency_impact_ms,
            online_savings=s.online_savings,
            total_savings=s.total_savings,
        )
        for s in plan.summaries
    )
    if not rows:
        raise ValueError("fleet plan has no pool summaries")
    return SavingsSummary(rows=rows)
