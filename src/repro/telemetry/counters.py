"""Performance-counter taxonomy.

The paper's measurement substrate samples OS performance counters every
100 ns and averages them over 120-second windows (§III).  Fig 2 plots
six of those counters against workload; we reproduce the same taxonomy
here.  Counters fall into three behavioural classes the paper calls
out:

* **workload-linear** counters (CPU, network bytes/packets) track the
  request rate tightly and are candidates for the limiting resource;
* **noisy** counters (disk reads, memory paging) show vertical bands —
  wide variation at a fixed workload — because they are dominated by
  background activity;
* **steady-state** counters (queue lengths, error counts) sit near a
  constant in normal operation and suit anomaly detection instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Window length over which raw samples are averaged before storage.
#: "averaged over a 120 s window ... selected to be as large as possible
#: to minimize the cost of storage" (§III).
WINDOW_SECONDS: int = 120


class Counter(enum.Enum):
    """Every counter the simulated servers expose.

    The values are the human-readable names used in reports; they match
    the y-axis titles of Fig 2 where applicable.
    """

    # Workload counters (requests per second), one per request class.
    # Pool-level workload is the REQUESTS counter; per-class counters
    # are named dynamically via :func:`workload_counter`.
    REQUESTS = "Requests/sec"

    # Resource counters (Fig 2).
    PROCESSOR_UTILIZATION = "Processor Utilization"
    NETWORK_BYTES_TOTAL = "Network Bytes Total"
    NETWORK_PACKETS = "Network Packets/sec"
    DISK_READ_BYTES = "Disk Read Bytes/sec"
    DISK_QUEUE_LENGTH = "Disk Queue Length"
    MEMORY_PAGES = "Memory Pages/sec"
    MEMORY_WORKING_SET = "Memory Working Set Bytes"

    # QoS counters.
    LATENCY_P95 = "Latency 95th Percentile (ms)"
    LATENCY_P50 = "Latency Median (ms)"
    ERRORS = "Errors/sec"

    # Operational counters.
    AVAILABILITY = "Server Online"  # 1.0 online for the window, else 0.0

    @property
    def is_resource(self) -> bool:
        return self in _RESOURCE_COUNTERS

    @property
    def is_qos(self) -> bool:
        return self in (Counter.LATENCY_P95, Counter.LATENCY_P50, Counter.ERRORS)


_RESOURCE_COUNTERS = frozenset(
    {
        Counter.PROCESSOR_UTILIZATION,
        Counter.NETWORK_BYTES_TOTAL,
        Counter.NETWORK_PACKETS,
        Counter.DISK_READ_BYTES,
        Counter.DISK_QUEUE_LENGTH,
        Counter.MEMORY_PAGES,
        Counter.MEMORY_WORKING_SET,
    }
)


def workload_counter(request_class: str) -> str:
    """Name of the per-request-class workload counter.

    §II-A1's MemCached-like example needed the aggregate request metric
    split into one workload counter per table before the linear CPU
    relationship emerged; these derived counter names support that
    splitting step.
    """
    if not request_class:
        raise ValueError("request_class must be non-empty")
    return f"Requests/sec[{request_class}]"


@dataclass(frozen=True)
class CounterSample:
    """One 120-second-window average of one counter on one server.

    ``window_index`` counts windows from the simulation start;
    ``value`` is the window average (or the window percentile for
    latency counters, matching how production percentile counters are
    exported).
    """

    window_index: int
    server_id: str
    pool_id: str
    datacenter_id: str
    counter: str
    value: float

    @property
    def time_seconds(self) -> float:
        """Window start, in seconds since simulation start."""
        return self.window_index * float(WINDOW_SECONDS)
