"""Shard transports: the byte pipe under the worker message protocol.

:mod:`repro.telemetry.workers` defines a placement-agnostic actor
protocol (coalesced ``ingest`` messages, synchronous ``call`` RPC,
interner name-delta replication, ``stop``/EOF shutdown) and was built
on the explicit assumption that the two sides share **nothing** — not
memory, not an interner, not a process.  That makes the pipe the only
process-specific piece, and this module turns the pipe into an
interface:

:class:`PipeTransport`
    A ``multiprocessing.Pipe`` connection end.  Framing and pickling
    are the connection's own; this is the transport the
    ``"processes"`` backend has always used.
:class:`TcpTransport`
    A TCP socket speaking length-prefixed pickle frames (the wire
    format below).  This is the ``"tcp"`` backend's pipe: the same
    protocol messages, now able to cross machines.  The full
    operator-facing spec lives in ``docs/DISTRIBUTED.md``.

Both expose the same three-method surface — ``send(message)``,
``recv()`` (raising :class:`EOFError` on clean peer close) and
``close()`` — so the worker serve loop and the client proxies never
know which one they hold.

Wire format of :class:`TcpTransport` (one *frame* per protocol
message)::

    +----------------------------+---------------------------+
    | length: 8 bytes, unsigned  | payload: ``length`` bytes |
    | big-endian                 | of pickle                 |
    +----------------------------+---------------------------+

The payload is ``pickle.dumps(message, protocol=HIGHEST_PROTOCOL)``;
ndarray columns inside ingest messages therefore cross the wire as raw
buffers, exactly as they cross a ``multiprocessing`` pipe.  Frames are
strictly sequential per connection (the protocol is FIFO by design),
and a frame claiming more than ``MAX_FRAME_BYTES`` is treated as
evidence the peer is not speaking this protocol and kills the
connection rather than attempting a giant allocation.

**Security**: pickle deserialisation executes arbitrary code by
design.  A shard server must only ever listen on loopback or an
otherwise trusted, access-controlled network — the same trust model as
a ``multiprocessing`` pipe, stretched across machines, and the reason
the default listen address is ``127.0.0.1``.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from typing import Any, Tuple

#: Frame header: payload length as an 8-byte unsigned big-endian int.
_HEADER = struct.Struct(">Q")

#: Upper bound on a single frame's payload.  Real messages are far
#: smaller (an ingest message holds at most ``flush_rows`` rows); a
#: length beyond this means the peer is not speaking the protocol.
MAX_FRAME_BYTES = 1 << 40

#: How long :meth:`TcpTransport.connect` keeps retrying a refused
#: connection before giving up (seconds).  Covers the "client raced the
#: server's bind" window of the two-terminal workflow.
DEFAULT_CONNECT_TIMEOUT = 5.0

_RETRY_INTERVAL = 0.05


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string into a ``(host, port)`` pair.

    The CLI's address syntax (``--listen``, ``--shard-addrs``); port 0
    is valid for listeners and means "pick an ephemeral port".
    """
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"invalid address {address!r}: expected host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid address {address!r}: port {port_text!r} is not an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid address {address!r}: port out of range")
    return host, port


def format_address(host: str, port: int) -> str:
    """The inverse of :func:`parse_address`."""
    return f"{host}:{port}"


class PipeTransport:
    """A ``multiprocessing`` connection end behind the transport surface.

    The connection already frames and pickles messages itself, so this
    is a naming shim — its value is that the serve loop and the client
    proxies depend on the three-method transport surface instead of a
    concrete connection type.
    """

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, message: Any) -> None:
        self._conn.send(message)

    def recv(self) -> Any:
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()


class TcpTransport:
    """Length-prefixed pickle frames over one TCP connection.

    One transport per shard session; created either by
    :meth:`connect` (client side) or around an accepted socket (server
    side).  ``TCP_NODELAY`` is set because the protocol is
    request/response at query time — Nagle would add a round-trip's
    latency to every RPC for no batching benefit (ingest messages are
    already coalesced parent-side).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass

    @classmethod
    def connect(
        cls,
        address: str,
        timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> "TcpTransport":
        """Dial ``host:port``, retrying refused connections.

        A freshly started server may not have bound yet (the
        two-terminal workflow has no ordering guarantee), so connection
        refusals — and only refusals — are retried every
        ``_RETRY_INTERVAL`` seconds until ``timeout`` elapses.
        Permanent failures (a DNS typo, an unreachable network) are
        knowable on the first attempt and fail immediately; every
        failure is re-raised with the address in the message.
        """
        host, port = parse_address(address)
        deadline = time.monotonic() + timeout
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=timeout)
                sock.settimeout(None)
                return cls(sock)
            except ConnectionRefusedError as error:
                if time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"cannot connect to shard server at {address}: {error}"
                    ) from error
                time.sleep(_RETRY_INTERVAL)
            except OSError as error:
                raise ConnectionError(
                    f"cannot connect to shard server at {address}: {error}"
                ) from error

    def send(self, message: Any) -> None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self._sock.sendall(_HEADER.pack(len(payload)) + payload)

    def recv(self) -> Any:
        header = self._recv_exact(_HEADER.size, eof_ok=True)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ConnectionError(
                f"oversized frame ({length} bytes): peer is not speaking "
                f"the shard protocol"
            )
        return pickle.loads(self._recv_exact(length))

    def _recv_exact(self, n: int, eof_ok: bool = False) -> bytes:
        """Read exactly ``n`` bytes.

        EOF on a frame boundary (``eof_ok``) is the peer's clean
        goodbye and raises :class:`EOFError`, mirroring
        ``multiprocessing`` connections; EOF mid-frame means the peer
        died and raises :class:`ConnectionError`.
        """
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                if eof_ok and remaining == n:
                    raise EOFError("peer closed the connection")
                raise ConnectionError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks) if len(chunks) != 1 else chunks[0]

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
