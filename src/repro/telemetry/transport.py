"""Shard transports: the byte pipe under the worker message protocol.

:mod:`repro.telemetry.workers` defines a placement-agnostic actor
protocol (coalesced ``ingest`` messages, synchronous ``call`` RPC,
interner name-delta replication, ``stop``/EOF shutdown) and was built
on the explicit assumption that the two sides share **nothing** — not
memory, not an interner, not a process.  That makes the pipe the only
process-specific piece, and this module turns the pipe into an
interface:

:class:`PipeTransport`
    A ``multiprocessing.Pipe`` connection end.  Framing and pickling
    are the connection's own; this is the transport the
    ``"processes"`` backend has always used.
:class:`TcpTransport`
    A TCP socket speaking length-prefixed pickle frames (the wire
    format below).  This is the ``"tcp"`` backend's pipe: the same
    protocol messages, now able to cross machines.  The full
    operator-facing spec lives in ``docs/DISTRIBUTED.md``.

Both expose the same surface — ``send(message)``, ``send_ingest(names,
commands)`` (the ingest fast path, free to pick a wire encoding),
``recv()`` (raising :class:`EOFError` on clean peer close) and
``close()`` — so the worker serve loop and the client proxies never
know which one they hold.

Wire format of :class:`TcpTransport` (one *frame* per protocol
message)::

    +------------------------------------+---------------------------+
    | header: 8 bytes, unsigned          | payload: ``length`` bytes |
    | big-endian; top byte = frame kind, |                           |
    | low 7 bytes = payload length       |                           |
    +------------------------------------+---------------------------+

Frame kind 0 (``pickle``) carries ``pickle.dumps(message,
protocol=HIGHEST_PROTOCOL)`` — any protocol message; ndarray columns
inside ingest messages cross the wire as raw buffers, exactly as they
cross a ``multiprocessing`` pipe.  PR 4 peers only ever produced this
kind (their top header byte was always zero because payloads are
capped far below 2^56), so kind-0 frames are bit-compatible with the
original wire format.

Frame kind 1 (``binary ingest``) is a pickle-free encoding of the one
hot message, ``("ingest", names, commands)`` where every command is a
``record_columns`` call over the fixed ``(int64, int64, float64)``
column layout.  Layout of the payload (lengths big-endian, array data
little-endian)::

    u32 n_names; n_names x (u32 byte_len, utf-8 bytes)
    u32 n_commands
    per command:
        3 x (u32 byte_len, utf-8 bytes)   pool, datacenter, counter
        u64 n_rows
        n_rows x i64 (LE)                  windows
        n_rows x i64 (LE)                  server indices
        n_rows x f64 (LE)                  values

A client only emits kind 1 after the per-session capability probe (see
:mod:`repro.telemetry.workers`) confirmed the peer decodes it — old
peers keep receiving kind 0 and never see an unknown frame.  Frames
are strictly sequential per connection (the protocol is FIFO by
design); a frame claiming an unknown kind or more than
``MAX_FRAME_BYTES`` is treated as evidence the peer is not speaking
this protocol and kills the connection rather than attempting a giant
allocation.

**Security**: pickle deserialisation executes arbitrary code by
design.  A shard server must only ever listen on loopback or an
otherwise trusted, access-controlled network — the same trust model as
a ``multiprocessing`` pipe, stretched across machines, and the reason
the default listen address is ``127.0.0.1``.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from typing import Any, List, Sequence, Tuple

import numpy as np

#: Frame header: one 8-byte unsigned big-endian int — frame kind in
#: the top byte, payload length in the low 7 bytes.  Also packed by
#: :mod:`repro.telemetry.faultinject` to forge a bad-kind frame, so
#: layout changes must keep that corruption path in step.
_HEADER = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

#: Header frame kinds.  PR 4 peers only ever emitted kind 0 (their
#: header was a bare length, and lengths never reach the top byte).
FRAME_PICKLE = 0
FRAME_BINARY_INGEST = 1

_KIND_SHIFT = 56
_LENGTH_MASK = (1 << _KIND_SHIFT) - 1

#: Upper bound on a single frame's payload.  Real messages are far
#: smaller (an ingest message holds at most ``flush_rows`` rows); a
#: length beyond this means the peer is not speaking the protocol.
MAX_FRAME_BYTES = 1 << 40

#: How long :meth:`TcpTransport.connect` keeps retrying a refused
#: connection before giving up (seconds).  Covers the "client raced the
#: server's bind" window of the two-terminal workflow.
DEFAULT_CONNECT_TIMEOUT = 5.0

#: Default per-operation socket timeout (seconds): how long one send
#: or recv may sit with *no progress* before the connection is declared
#: dead.  Bounds every RPC against a hung-but-alive peer — the PR 4
#: behaviour (``settimeout(None)``) blocked forever.  ``None`` disables
#: the bound and restores the old semantics.
DEFAULT_IO_TIMEOUT = 60.0

_RETRY_INTERVAL = 0.05

#: Buffers at least this large are written straight to the socket
#: instead of being joined into the frame's small-field buffer — the
#: column arrays of a binary ingest frame cross with no extra copy.
_SENDV_COALESCE_BYTES = 1 << 16

#: The binary ingest frame's column dtypes (explicitly little-endian;
#: on a big-endian host the encoder falls back to pickle rather than
#: silently shipping native-endian bytes).
_I64 = np.dtype("<i8")
_F64 = np.dtype("<f8")


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string into a ``(host, port)`` pair.

    The CLI's address syntax (``--listen``, ``--shard-addrs``); port 0
    is valid for listeners and means "pick an ephemeral port".  IPv6
    hosts must be bracketed, RFC-3986 style — ``[::1]:9400`` parses to
    ``("::1", 9400)`` — because a bare-colon form like ``::1:9400`` is
    ambiguous and is rejected.  The port must be a bare decimal
    integer in ``[0, 65535]``: signs, spaces, underscores and empty
    strings are rejected with the offending input named.
    """
    host, sep, port_text = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"invalid address {address!r}: expected host:port"
        )
    if host.startswith("[") or host.endswith("]"):
        if not (host.startswith("[") and host.endswith("]")):
            raise ValueError(
                f"invalid address {address!r}: unbalanced brackets in host"
            )
        host = host[1:-1]
        if not host:
            raise ValueError(f"invalid address {address!r}: empty host")
    elif ":" in host:
        raise ValueError(
            f"invalid address {address!r}: IPv6 hosts must be written "
            f"[host]:port (e.g. [::1]:9400)"
        )
    if not port_text.isascii() or not port_text.isdigit():
        raise ValueError(
            f"invalid address {address!r}: port {port_text!r} is not a "
            f"decimal integer"
        )
    port = int(port_text)
    if port > 65535:
        raise ValueError(
            f"invalid address {address!r}: port {port} out of range 0-65535"
        )
    return host, port


def format_address(host: str, port: int) -> str:
    """The inverse of :func:`parse_address` (brackets IPv6 hosts)."""
    if ":" in host:
        return f"[{host}]:{port}"
    return f"{host}:{port}"


class PipeTransport:
    """A ``multiprocessing`` connection end behind the transport surface.

    The connection already frames and pickles messages itself, so this
    is a naming shim — its value is that the serve loop and the client
    proxies depend on the three-method transport surface instead of a
    concrete connection type.
    """

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, message: Any) -> None:
        self._conn.send(message)

    def send_ingest(self, names: List[str], commands: List[tuple]) -> None:
        """Ingest fast path: the pipe has no binary frame, plain send."""
        self._conn.send(("ingest", names, commands))

    def recv(self) -> Any:
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()


class TcpTransport:
    """Length-prefixed frames (pickle or binary) over one TCP connection.

    One transport per shard session; created either by
    :meth:`connect` (client side) or around an accepted socket (server
    side).  ``TCP_NODELAY`` is set because the protocol is
    request/response at query time — Nagle would add a round-trip's
    latency to every RPC for no batching benefit (ingest messages are
    already coalesced parent-side).

    ``io_timeout`` bounds every socket operation: one send or recv that
    makes *no progress* for that many seconds raises
    :class:`TimeoutError` instead of blocking forever against a
    hung-but-alive peer (``None`` disables the bound).  The connection
    is unusable after a timeout — a partial frame may be in flight —
    so callers must treat it as lost.

    ``binary_frames`` controls the *outgoing* encoding of
    :meth:`send_ingest`: when ``True`` (set by the client after the
    capability probe confirmed the peer decodes kind-1 frames),
    all-``record_columns`` ingest messages skip pickle entirely and
    cross as the raw column layout in the module docstring.  Incoming
    frames need no flag — the header names their kind.
    """

    def __init__(
        self,
        sock: socket.socket,
        io_timeout: float | None = None,
    ) -> None:
        self._sock = sock
        self.binary_frames = False
        sock.settimeout(io_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass

    @classmethod
    def connect(
        cls,
        address: str,
        timeout: float = DEFAULT_CONNECT_TIMEOUT,
        io_timeout: float | None = None,
    ) -> "TcpTransport":
        """Dial ``host:port``, retrying refused connections.

        A freshly started server may not have bound yet (the
        two-terminal workflow has no ordering guarantee), so connection
        refusals — and only refusals — are retried every
        ``_RETRY_INTERVAL`` seconds until ``timeout`` elapses.
        Permanent failures (a DNS typo, an unreachable network) are
        knowable on the first attempt and fail immediately; every
        failure is re-raised with the address in the message.
        ``io_timeout`` becomes the connected transport's per-operation
        bound.
        """
        host, port = parse_address(address)
        deadline = time.monotonic() + timeout
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=timeout)
                return cls(sock, io_timeout=io_timeout)
            except ConnectionRefusedError as error:
                if time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"cannot connect to shard server at {address}: {error}"
                    ) from error
                time.sleep(_RETRY_INTERVAL)
            except OSError as error:
                raise ConnectionError(
                    f"cannot connect to shard server at {address}: {error}"
                ) from error

    def send(self, message: Any) -> None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self._sock.sendall(_HEADER.pack(len(payload)) + payload)

    def send_ingest(self, names: List[str], commands: List[tuple]) -> None:
        """Send one ``("ingest", names, commands)`` message.

        Uses the kind-1 binary frame when the session negotiated it and
        every command fits the fixed column layout; anything else (an
        un-negotiated session, a ``record_fast`` compatibility command,
        exotic dtypes) falls back to the kind-0 pickle frame, so the
        fast path never restricts what the protocol can carry.
        """
        if self.binary_frames:
            buffers = _encode_binary_ingest(names, commands)
            if buffers is not None:
                self._sendv(buffers)
                return
        self.send(("ingest", names, commands))

    def _sendv(self, buffers: Sequence) -> None:
        """Write a buffer sequence: small fields coalesce into one
        ``sendall``, large ones (the column arrays) go straight to the
        socket with no join copy."""
        small: List[bytes] = []
        small_size = 0
        for buffer in buffers:
            if len(buffer) >= _SENDV_COALESCE_BYTES:
                if small:
                    self._sock.sendall(b"".join(small))
                    small = []
                    small_size = 0
                self._sock.sendall(buffer)
            else:
                small.append(bytes(buffer))
                small_size += len(buffer)
                if small_size >= _SENDV_COALESCE_BYTES:
                    self._sock.sendall(b"".join(small))
                    small = []
                    small_size = 0
        if small:
            self._sock.sendall(b"".join(small))

    def recv(self) -> Any:
        header = self._recv_exact(_HEADER.size, eof_ok=True)
        (word,) = _HEADER.unpack(header)
        kind = word >> _KIND_SHIFT
        length = word & _LENGTH_MASK
        if kind not in (FRAME_PICKLE, FRAME_BINARY_INGEST):
            raise ConnectionError(
                f"unknown frame kind {kind}: peer is not speaking "
                f"the shard protocol"
            )
        if length > MAX_FRAME_BYTES:
            raise ConnectionError(
                f"oversized frame ({length} bytes): peer is not speaking "
                f"the shard protocol"
            )
        payload = self._recv_exact(length)
        if kind == FRAME_BINARY_INGEST:
            return _decode_binary_ingest(payload)
        return pickle.loads(payload)

    def _recv_exact(self, n: int, eof_ok: bool = False) -> bytearray:
        """Read exactly ``n`` bytes into one (writable) buffer.

        EOF on a frame boundary (``eof_ok``) is the peer's clean
        goodbye and raises :class:`EOFError`, mirroring
        ``multiprocessing`` connections; EOF mid-frame means the peer
        died and raises :class:`ConnectionError`.  Returning a
        ``bytearray`` lets the binary decoder hand out writable ndarray
        views of the payload with zero further copies.
        """
        buffer = bytearray(n)
        view = memoryview(buffer)
        received = 0
        while received < n:
            chunk = self._sock.recv_into(view[received:])
            if not chunk:
                if eof_ok and received == 0:
                    raise EOFError("peer closed the connection")
                raise ConnectionError("connection closed mid-frame")
            received += chunk
        return buffer

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def _encode_binary_ingest(names, commands):
    """Encode an ingest message as kind-1 buffers, or ``None``.

    ``None`` means "not encodable, use pickle": a non-``record_columns``
    command, or columns that are not the fixed contiguous
    ``(int64, int64, float64)`` layout.  On success returns the full
    buffer sequence — header first — ready for a vectored send; column
    arrays are passed through as memoryviews, so large arrays are never
    copied on the way out.
    """
    for method, args in commands:
        if method != "record_columns":
            return None
        windows, server_indices, values = args[3], args[4], args[5]
        for array, dtype in (
            (windows, _I64),
            (server_indices, _I64),
            (values, _F64),
        ):
            if (
                not isinstance(array, np.ndarray)
                or array.dtype != dtype
                or not array.flags.c_contiguous
            ):
                return None
    fields = bytearray()
    buffers: List = [b""]  # header placeholder, filled in below
    fields += _U32.pack(len(names))
    for name in names:
        encoded = name.encode("utf-8")
        fields += _U32.pack(len(encoded)) + encoded
    fields += _U32.pack(len(commands))
    buffers.append(fields)
    total = len(fields)
    for _method, args in commands:
        pool_id, datacenter_id, counter = args[0], args[1], args[2]
        windows, server_indices, values = args[3], args[4], args[5]
        meta = bytearray()
        for text in (pool_id, datacenter_id, counter):
            encoded = text.encode("utf-8")
            meta += _U32.pack(len(encoded)) + encoded
        meta += _U64.pack(windows.size)
        buffers.append(meta)
        total += len(meta)
        for array in (windows, server_indices, values):
            data = memoryview(array).cast("B")
            buffers.append(data)
            total += len(data)
    buffers[0] = _HEADER.pack((FRAME_BINARY_INGEST << _KIND_SHIFT) | total)
    return buffers


def _decode_binary_ingest(payload: bytearray):
    """Decode a kind-1 payload back into ``("ingest", names, commands)``.

    Column arrays are writable ndarray views sharing the received
    buffer — one allocation per frame, no per-array copy (the store
    takes ownership of them, exactly as it does for unpickled arrays).
    A malformed payload raises :class:`ConnectionError`, the same
    not-speaking-the-protocol verdict as a bad frame header.
    """
    view = memoryview(payload)
    try:
        offset = 0
        (n_names,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        names = []
        for _ in range(n_names):
            (byte_len,) = _U32.unpack_from(view, offset)
            offset += _U32.size
            names.append(bytes(view[offset:offset + byte_len]).decode("utf-8"))
            offset += byte_len
        (n_commands,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        commands = []
        for _ in range(n_commands):
            texts = []
            for _field in range(3):
                (byte_len,) = _U32.unpack_from(view, offset)
                offset += _U32.size
                texts.append(
                    bytes(view[offset:offset + byte_len]).decode("utf-8")
                )
                offset += byte_len
            (n_rows,) = _U64.unpack_from(view, offset)
            offset += _U64.size
            columns = []
            for dtype in (_I64, _I64, _F64):
                array = np.frombuffer(view, dtype=dtype, count=n_rows,
                                      offset=offset)
                if not array.dtype.isnative:  # pragma: no cover - BE hosts
                    array = array.astype(array.dtype.newbyteorder("="))
                columns.append(array)
                offset += n_rows * 8
            commands.append(
                ("record_columns", (*texts, *columns))
            )
        if offset != len(payload):
            raise ValueError("trailing bytes")
    except (struct.error, ValueError, UnicodeDecodeError) as error:
        raise ConnectionError(
            f"malformed binary ingest frame: {error}"
        ) from None
    return ("ingest", names, commands)
