"""In-memory metric store.

The paper's pipeline ingests ~3 GB/s of counters into a trace store and
answers pool/datacenter/time-scoped aggregate queries over 90 days of
history.  This module provides the equivalent for the simulator:
samples are appended during simulation and queried by the planner as
(server, pool, datacenter, counter, window-range) slices.

Storage is columnar (parallel lists converted lazily to numpy arrays)
so long simulations stay cheap, and an index by (pool, counter) keeps
the common queries O(matching samples).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.telemetry.counters import CounterSample
from repro.telemetry.series import TimeSeries


@dataclass(frozen=True)
class MetricKey:
    """Identity of a stored series: one counter on one server."""

    server_id: str
    pool_id: str
    datacenter_id: str
    counter: str


class _Column:
    """Append-optimised column of (window, value) pairs."""

    __slots__ = ("windows", "values", "_frozen_windows", "_frozen_values")

    def __init__(self) -> None:
        self.windows: List[int] = []
        self.values: List[float] = []
        self._frozen_windows: Optional[np.ndarray] = None
        self._frozen_values: Optional[np.ndarray] = None

    def append(self, window: int, value: float) -> None:
        self.windows.append(window)
        self.values.append(value)
        self._frozen_windows = None
        self._frozen_values = None

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._frozen_windows is None:
            self._frozen_windows = np.asarray(self.windows, dtype=int)
            self._frozen_values = np.asarray(self.values, dtype=float)
        return self._frozen_windows, self._frozen_values


class MetricStore:
    """Columnar store of counter samples with pool/DC-scoped queries."""

    def __init__(self) -> None:
        self._columns: Dict[MetricKey, _Column] = {}
        self._by_pool_counter: Dict[Tuple[str, str], List[MetricKey]] = defaultdict(list)
        self._pools: Set[str] = set()
        self._datacenters: Set[str] = set()
        self._max_window: int = -1

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def record(self, sample: CounterSample) -> None:
        """Append one counter sample."""
        key = MetricKey(
            server_id=sample.server_id,
            pool_id=sample.pool_id,
            datacenter_id=sample.datacenter_id,
            counter=sample.counter,
        )
        column = self._columns.get(key)
        if column is None:
            column = _Column()
            self._columns[key] = column
            self._by_pool_counter[(key.pool_id, key.counter)].append(key)
            self._pools.add(key.pool_id)
            self._datacenters.add(key.datacenter_id)
        column.append(sample.window_index, sample.value)
        if sample.window_index > self._max_window:
            self._max_window = sample.window_index

    def record_many(self, samples: Iterable[CounterSample]) -> None:
        for sample in samples:
            self.record(sample)

    def record_fast(
        self,
        window: int,
        server_id: str,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        value: float,
    ) -> None:
        """Append one sample without constructing a CounterSample.

        The simulator's hot path: identical semantics to :meth:`record`.
        """
        key = MetricKey(
            server_id=server_id,
            pool_id=pool_id,
            datacenter_id=datacenter_id,
            counter=counter,
        )
        column = self._columns.get(key)
        if column is None:
            column = _Column()
            self._columns[key] = column
            self._by_pool_counter[(pool_id, counter)].append(key)
            self._pools.add(pool_id)
            self._datacenters.add(datacenter_id)
        column.append(window, value)
        if window > self._max_window:
            self._max_window = window

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pools(self) -> Tuple[str, ...]:
        return tuple(sorted(self._pools))

    @property
    def datacenters(self) -> Tuple[str, ...]:
        return tuple(sorted(self._datacenters))

    @property
    def max_window(self) -> int:
        """Largest window index seen; -1 when empty."""
        return self._max_window

    def counters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        names = {
            counter
            for (pool, counter) in self._by_pool_counter
            if pool == pool_id
        }
        return tuple(sorted(names))

    def servers_in_pool(
        self,
        pool_id: str,
        datacenter_id: Optional[str] = None,
    ) -> Tuple[str, ...]:
        servers: Set[str] = set()
        for (pool, _counter), keys in self._by_pool_counter.items():
            if pool != pool_id:
                continue
            for key in keys:
                if datacenter_id is None or key.datacenter_id == datacenter_id:
                    servers.add(key.server_id)
        return tuple(sorted(servers))

    def datacenters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        dcs: Set[str] = set()
        for (pool, _counter), keys in self._by_pool_counter.items():
            if pool != pool_id:
                continue
            for key in keys:
                dcs.add(key.datacenter_id)
        return tuple(sorted(dcs))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _matching_keys(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str],
        server_id: Optional[str],
    ) -> List[MetricKey]:
        keys = self._by_pool_counter.get((pool_id, counter), [])
        out = []
        for key in keys:
            if datacenter_id is not None and key.datacenter_id != datacenter_id:
                continue
            if server_id is not None and key.server_id != server_id:
                continue
            out.append(key)
        return out

    def server_series(
        self,
        pool_id: str,
        counter: str,
        server_id: str,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> TimeSeries:
        """Series of one counter on one server, optionally window-sliced."""
        keys = self._matching_keys(pool_id, counter, None, server_id)
        if not keys:
            return TimeSeries(np.array([], dtype=int), np.array([], dtype=float))
        windows, values = self._columns[keys[0]].arrays()
        series = TimeSeries(windows, values)
        if start is not None or stop is not None:
            series = series.slice_windows(
                start if start is not None else 0,
                stop if stop is not None else self._max_window + 1,
            )
        return series

    def pool_window_aggregate(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        reducer: str = "mean",
    ) -> TimeSeries:
        """Per-window aggregate across a pool's servers.

        ``reducer``: ``"mean"`` (default), ``"sum"``, ``"max"``,
        ``"count"``.  The planner's workhorse — e.g. average RPS/server
        or summed pool workload per window.
        """
        keys = self._matching_keys(pool_id, counter, datacenter_id, None)
        if not keys:
            return TimeSeries(np.array([], dtype=int), np.array([], dtype=float))
        lo = start if start is not None else 0
        hi = stop if stop is not None else self._max_window + 1

        sums: Dict[int, float] = defaultdict(float)
        counts: Dict[int, int] = defaultdict(int)
        maxima: Dict[int, float] = {}
        for key in keys:
            windows, values = self._columns[key].arrays()
            mask = (windows >= lo) & (windows < hi)
            for w, v in zip(windows[mask], values[mask]):
                w = int(w)
                sums[w] += float(v)
                counts[w] += 1
                if w not in maxima or v > maxima[w]:
                    maxima[w] = float(v)
        if not counts:
            return TimeSeries(np.array([], dtype=int), np.array([], dtype=float))
        ordered = sorted(counts)
        if reducer == "mean":
            values_out = [sums[w] / counts[w] for w in ordered]
        elif reducer == "sum":
            values_out = [sums[w] for w in ordered]
        elif reducer == "max":
            values_out = [maxima[w] for w in ordered]
        elif reducer == "count":
            values_out = [float(counts[w]) for w in ordered]
        else:
            raise ValueError(f"unknown reducer {reducer!r}")
        return TimeSeries(np.asarray(ordered, dtype=int), np.asarray(values_out, dtype=float))

    def per_server_values(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Dict[str, np.ndarray]:
        """All window values per server (for percentile feature vectors)."""
        keys = self._matching_keys(pool_id, counter, datacenter_id, None)
        out: Dict[str, np.ndarray] = {}
        lo = start if start is not None else 0
        hi = stop if stop is not None else self._max_window + 1
        for key in keys:
            windows, values = self._columns[key].arrays()
            mask = (windows >= lo) & (windows < hi)
            out[key.server_id] = values[mask]
        return out

    def all_values(
        self,
        counter: str,
        pool_ids: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Every stored value of ``counter``, optionally pool-filtered.

        Powers the fleet-wide distribution studies (Figs 12-14).
        """
        pools = list(pool_ids) if pool_ids is not None else list(self._pools)
        chunks: List[np.ndarray] = []
        for pool in pools:
            for key in self._by_pool_counter.get((pool, counter), []):
                _windows, values = self._columns[key].arrays()
                chunks.append(values)
        if not chunks:
            return np.array([], dtype=float)
        return np.concatenate(chunks)

    def sample_count(self) -> int:
        """Total number of stored samples."""
        return sum(len(col.windows) for col in self._columns.values())
