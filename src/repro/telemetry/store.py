"""In-memory columnar metric store.

The paper's pipeline ingests ~3 GB/s of counters into a trace store and
answers pool/datacenter/time-scoped aggregate queries over 90 days of
history.  This module provides the equivalent for the simulator, built
around an end-to-end columnar data flow:

* **Ingest** is batched: the simulator emits one NumPy array per
  (pool, datacenter, counter, window) and hands it to
  :meth:`MetricStore.record_batch`, which appends whole arrays to the
  matching table.  Server ids are interned once into integer indices
  (:meth:`MetricStore.intern_servers`), so the hot path never hashes
  strings per sample.  ``record`` / ``record_many`` / ``record_fast``
  remain as thin compatibility shims over the same tables.
* **Storage** is one table per (pool, datacenter, counter): three
  parallel column chunk lists (window, server index, value) that are
  concatenated lazily into frozen arrays on first query.
* **Queries** (:meth:`pool_window_aggregate`, :meth:`per_server_values`,
  :meth:`pool_matrix`) group with ``np.bincount`` / stable argsort over
  the frozen columns instead of per-sample Python loops, and the
  common pool aggregates are memoized in a cache that is invalidated
  whenever new samples arrive.

Horizontal scaling lives one layer up:
:class:`~repro.telemetry.sharding.ShardedMetricStore` hash-partitions
rows across several ``MetricStore`` shards that share one global
:class:`ServerInterner` id space, and merges query results shard-wise
so callers see the exact same answers as a single store.  Shards can
be held in-process or owned by worker processes
(:class:`~repro.telemetry.workers.ShardWorker`), in which case each
worker runs a plain ``MetricStore`` exactly like this one and replays
interner names from per-message deltas.
"""

from __future__ import annotations

import pickle
import tempfile
import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.telemetry.counters import CounterSample
from repro.telemetry.series import TimeSeries


class ServerInterner:
    """Bidirectional server id <-> integer index mapping.

    Interning assigns indices in first-seen order, so the hot ingest
    path never hashes strings per sample.  A single interner may be
    shared by several :class:`MetricStore` shards (see
    :class:`~repro.telemetry.sharding.ShardedMetricStore`), which is
    what keeps interned indices — and therefore query ordering —
    globally consistent across shards.
    """

    __slots__ = ("names", "index")

    def __init__(self) -> None:
        self.names: List[str] = []
        self.index: Dict[str, int] = {}

    def intern(self, server_id: str) -> int:
        """Map a server id to its stable integer index."""
        index = self.index.get(server_id)
        if index is None:
            index = len(self.names)
            self.index[server_id] = index
            self.names.append(server_id)
        return index

    def intern_many(self, server_ids: Sequence[str]) -> np.ndarray:
        """Intern many server ids at once; returns the index array."""
        return np.fromiter(
            (self.intern(s) for s in server_ids),
            dtype=np.int64,
            count=len(server_ids),
        )

    def name(self, index: int) -> str:
        return self.names[index]

    def __len__(self) -> int:
        return len(self.names)


def window_aggregate_arrays(
    windows: np.ndarray,
    values: np.ndarray,
    reducer: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Group ``values`` by window with ``np.bincount``.

    The aggregation kernel behind
    :meth:`MetricStore.pool_window_aggregate`, shared with the sharded
    facade so both paths accumulate in exactly the same order (bit-for-
    bit identical floating-point sums).  Returns ``(out_windows,
    out_values)`` for the windows that have at least one sample.
    """
    base = int(windows.min())
    shifted = windows - base
    length = int(shifted.max()) + 1
    counts = np.bincount(shifted, minlength=length)
    present = counts > 0
    out_windows = np.flatnonzero(present) + base
    if reducer == "count":
        out_values = counts[present].astype(float)
    elif reducer == "max":
        maxima = np.full(length, -np.inf)
        np.maximum.at(maxima, shifted, values)
        out_values = maxima[present]
    else:
        sums = np.bincount(shifted, weights=values, minlength=length)
        if reducer == "sum":
            out_values = sums[present]
        else:  # mean
            out_values = sums[present] / counts[present]
    return out_windows, out_values


class SpillArchive:
    """Append-only on-disk archive of evicted column segments.

    The cold half of the streaming store's rolling retention
    (:meth:`MetricStore.evict_windows`): evicted (windows, server
    indices, values) segments are pickled to an anonymous temp file —
    reclaimed by the OS when the store goes away — and indexed by an
    in-memory per-table directory of ``(offset, lo, hi)`` window
    spans.  Queries whose range dips below the eviction watermark read
    the overlapping segments back (oldest first, i.e. original append
    order) and merge them ahead of the hot columns, so every answer
    stays exactly what an unevicted store would return; queries over
    the hot range never touch the disk at all.
    """

    def __init__(self) -> None:
        self._file = tempfile.TemporaryFile(prefix="metric-spill-")
        self._directory: Dict[Tuple, List[Tuple[int, int, int]]] = {}
        #: Total rows spilled (observable retention behaviour).
        self.rows = 0

    def append(
        self,
        key: Tuple,
        windows: np.ndarray,
        servers: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Archive one evicted segment of one table (append order)."""
        self._file.seek(0, 2)
        offset = self._file.tell()
        pickle.dump(
            (windows, servers, values), self._file,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._directory.setdefault(key, []).append(
            (offset, int(windows.min()), int(windows.max()))
        )
        self.rows += int(windows.size)

    def segments(self, key: Tuple) -> List[Tuple[int, int, int]]:
        """This table's ``(offset, lo, hi)`` spans, oldest first."""
        return self._directory.get(key, [])

    def read(self, offset: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Load one archived (windows, servers, values) segment."""
        self._file.seek(offset)
        return pickle.load(self._file)

    def close(self) -> None:
        try:
            self._file.close()
        except Exception:  # pragma: no cover - best effort
            pass
        self._directory = {}
        self.rows = 0


class _TrackedAggregate:
    """One incrementally maintained per-window aggregate series.

    The streaming replacement for cache-invalidate-recompute: instead
    of re-gathering the whole table on every query after every ingest,
    :meth:`MetricStore.seal_through` appends each newly *sealed* block
    of windows' aggregate values here exactly once.  Per-window bins of
    :func:`window_aggregate_arrays` only ever mix rows of their own
    window, so the per-block partials are bit-identical to what one
    full-horizon recompute would produce — the incremental-maintenance
    invariant ``tests/test_streaming.py`` asserts.
    """

    __slots__ = ("reducer", "sealed_through", "_window_parts", "_value_parts", "_frozen")

    def __init__(self, reducer: str) -> None:
        self.reducer = reducer
        #: Largest window whose aggregate is final; -1 before any seal.
        self.sealed_through = -1
        self._window_parts: List[np.ndarray] = []
        self._value_parts: List[np.ndarray] = []
        self._frozen: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def extend(
        self, windows: np.ndarray, values: np.ndarray, through: int
    ) -> None:
        """Append one sealed block's aggregate rows (ascending windows)."""
        if windows.size:
            self._window_parts.append(windows)
            self._value_parts.append(values)
            self._frozen = None
        self.sealed_through = through

    def columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full (windows, values) series, frozen read-only."""
        if self._frozen is None:
            if not self._window_parts:
                empty_w = np.array([], dtype=np.int64)
                self._frozen = (empty_w, np.array([], dtype=float))
            elif len(self._window_parts) == 1:
                self._frozen = (self._window_parts[0], self._value_parts[0])
            else:
                self._frozen = (
                    np.concatenate(self._window_parts),
                    np.concatenate(self._value_parts),
                )
                self._window_parts = [self._frozen[0]]
                self._value_parts = [self._frozen[1]]
            self._frozen[0].setflags(write=False)
            self._frozen[1].setflags(write=False)
        return self._frozen

    def series_slice(self, lo: int, hi: int) -> TimeSeries:
        """The tracked series restricted to windows in [lo, hi)."""
        windows, values = self.columns()
        i = int(np.searchsorted(windows, lo, side="left"))
        j = int(np.searchsorted(windows, hi, side="left"))
        return TimeSeries.from_sorted(windows[i:j], values[i:j])


@dataclass(frozen=True)
class MetricKey:
    """Identity of a stored series: one counter on one server.

    Retained for compatibility with pre-columnar callers; internally the
    store now keys tables by (pool, datacenter, counter) and tracks the
    server as an interned integer column.
    """

    server_id: str
    pool_id: str
    datacenter_id: str
    counter: str


class _Table:
    """Columnar (window, server index, value) rows of one table.

    Appends go to chunk lists (one ndarray per batch, plus a scalar
    spill buffer for the per-sample compatibility shims); queries read
    the lazily concatenated frozen arrays.
    """

    __slots__ = (
        "_window_chunks",
        "_server_chunks",
        "_value_chunks",
        "_scalar_windows",
        "_scalar_servers",
        "_scalar_values",
        "_frozen",
        "n_rows",
        "spilled_rows",
    )

    def __init__(self) -> None:
        self._window_chunks: List[np.ndarray] = []
        self._server_chunks: List[np.ndarray] = []
        self._value_chunks: List[np.ndarray] = []
        self._scalar_windows: List[int] = []
        self._scalar_servers: List[int] = []
        self._scalar_values: List[float] = []
        self._frozen: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self.n_rows: int = 0
        #: Rows evicted to the spill archive (still counted in n_rows).
        self.spilled_rows: int = 0

    def _spill_scalars(self) -> None:
        if self._scalar_windows:
            self._window_chunks.append(np.asarray(self._scalar_windows, dtype=np.int64))
            self._server_chunks.append(np.asarray(self._scalar_servers, dtype=np.int64))
            self._value_chunks.append(np.asarray(self._scalar_values, dtype=float))
            self._scalar_windows.clear()
            self._scalar_servers.clear()
            self._scalar_values.clear()

    def append(self, window: int, server_index: int, value: float) -> None:
        self._scalar_windows.append(window)
        self._scalar_servers.append(server_index)
        self._scalar_values.append(value)
        self._frozen = None
        self.n_rows += 1

    def append_batch(
        self,
        windows: np.ndarray,
        server_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self._spill_scalars()
        self._window_chunks.append(windows)
        self._server_chunks.append(server_indices)
        self._value_chunks.append(values)
        self._frozen = None
        self.n_rows += int(values.size)

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(windows, server indices, values) in append order."""
        if self._frozen is None:
            self._spill_scalars()
            if not self._value_chunks:
                empty = np.array([], dtype=np.int64)
                self._frozen = (empty, empty, np.array([], dtype=float))
            elif len(self._value_chunks) == 1:
                self._frozen = (
                    self._window_chunks[0],
                    self._server_chunks[0],
                    self._value_chunks[0],
                )
            else:
                self._frozen = (
                    np.concatenate(self._window_chunks),
                    np.concatenate(self._server_chunks),
                    np.concatenate(self._value_chunks),
                )
                # Re-chunk so repeated freezes stay O(1).
                self._window_chunks = [self._frozen[0]]
                self._server_chunks = [self._frozen[1]]
                self._value_chunks = [self._frozen[2]]
        return self._frozen

    @property
    def hot_rows(self) -> int:
        """Rows still held in memory (total minus spilled)."""
        return self.n_rows - self.spilled_rows

    def evict(
        self, before: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Split off every row with ``window < before``.

        Returns the evicted (windows, servers, values) columns — in
        their original append order, for the caller to archive — and
        keeps only the remaining hot rows; ``None`` when nothing falls
        below the cutoff.  Rows must have arrived in non-decreasing
        block order (the streaming engines' emission order) for
        spill + hot concatenation to reproduce the original append
        order exactly.
        """
        windows, servers, values = self.columns()
        mask = windows < before
        if not mask.any():
            return None
        keep = ~mask
        self._frozen = (windows[keep], servers[keep], values[keep])
        self._window_chunks = [self._frozen[0]]
        self._server_chunks = [self._frozen[1]]
        self._value_chunks = [self._frozen[2]]
        self.spilled_rows += int(mask.sum())
        return windows[mask], servers[mask], values[mask]


#: Key of one stored table: (pool_id, datacenter_id, counter).
TableKey = Tuple[str, str, str]


def columnise_samples(
    samples: Iterable[CounterSample],
    intern,
) -> Iterator[Tuple[TableKey, np.ndarray, np.ndarray, np.ndarray]]:
    """Group loose samples into per-table (windows, indices, values).

    The shared grouping behind ``record_many`` on both the single store
    and the sharded facade; ``intern`` maps a server id to its integer
    index.  Yields one ``(table key, windows, server indices, values)``
    tuple per (pool, datacenter, counter), rows in input order.
    """
    grouped: Dict[TableKey, Tuple[List[int], List[int], List[float]]] = {}
    for sample in samples:
        key = (sample.pool_id, sample.datacenter_id, sample.counter)
        bucket = grouped.get(key)
        if bucket is None:
            bucket = ([], [], [])
            grouped[key] = bucket
        bucket[0].append(sample.window_index)
        bucket[1].append(intern(sample.server_id))
        bucket[2].append(sample.value)
    for key, (windows, indices, values) in grouped.items():
        yield (
            key,
            np.asarray(windows, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
            np.asarray(values, dtype=float),
        )


class _ServerMembership:
    """Which interned server indices appeared for one (pool, DC).

    Ingest-hot bookkeeping: the per-batch update is a vectorized
    boolean scatter (``seen[indices] = True``) instead of the previous
    ``set.update(np.unique(...).tolist())`` — on coalesced ingest
    frames the unique/set path cost roughly as much CPU as the column
    appends themselves.  Reads (:meth:`indices`) materialise the
    sorted index array; they only happen on the cold query path.
    """

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen = np.zeros(0, dtype=bool)

    def _ensure(self, top: int) -> None:
        if top >= self._seen.size:
            grown = np.zeros(max(64, 2 * (top + 1)), dtype=bool)
            grown[: self._seen.size] = self._seen
            self._seen = grown

    def update_from(self, indices: np.ndarray) -> None:
        """Mark every index in ``indices`` (duplicates are free)."""
        if indices.size == 0:
            return
        self._ensure(int(indices.max()))
        self._seen[indices] = True

    def add(self, index: int) -> None:
        self._ensure(index)
        self._seen[index] = True

    def indices(self) -> np.ndarray:
        """All marked indices, ascending (``int64``)."""
        return np.flatnonzero(self._seen)


class MetricStore:
    """Columnar store of counter samples with pool/DC-scoped queries.

    The single-node building block of the telemetry layer.  Ingest via
    :meth:`record_batch` (one window, many servers) or
    :meth:`record_columns` (pre-columnised rows); query via
    :meth:`pool_window_aggregate`, :meth:`per_server_values`,
    :meth:`pool_matrix` and :meth:`server_series`.  All query results
    are independent of ingest batching: the per-sample shims
    (:meth:`record` / :meth:`record_fast`) and the batch path store
    bit-identical tables given the same rows in the same order.

    ``interner`` optionally shares a :class:`ServerInterner` with other
    stores — the mechanism :class:`~repro.telemetry.sharding.\
ShardedMetricStore` uses to keep one global id space across shards.
    """

    def __init__(self, interner: Optional[ServerInterner] = None) -> None:
        self._tables: Dict[TableKey, _Table] = {}
        self._by_pool_counter: Dict[Tuple[str, str], List[TableKey]] = defaultdict(list)
        self._pools: Set[str] = set()
        self._datacenters: Set[str] = set()
        self._servers_by_pool_dc: Dict[Tuple[str, str], _ServerMembership] = (
            defaultdict(_ServerMembership)
        )
        self._interner = interner if interner is not None else ServerInterner()
        self._max_window: int = -1
        self._agg_cache: Dict[Tuple, TimeSeries] = {}
        #: Rolling-retention state: rows of windows < _evicted_before
        #: live in the spill archive, everything newer is hot.
        self._spill: Optional[SpillArchive] = None
        self._evicted_before: int = 0
        #: Incrementally maintained aggregates, keyed by
        #: (pool, counter, datacenter, reducer).
        self._tracked: Dict[Tuple, _TrackedAggregate] = {}
        #: Synchronization seam for concurrent readers (the live query
        #: server).  The store itself stays single-owner — methods do
        #: not self-lock — but a writer holding :attr:`lock` across a
        #: mutation span and readers taking it per query observe the
        #: store only at the boundaries the writer chooses.
        self._lock = threading.RLock()

    @property
    def lock(self) -> "threading.RLock":
        """Reentrant lock serializing a clock-loop writer and readers.

        The streaming loop holds it across each ingest→seal→evict
        block span; :class:`~repro.telemetry.query_server.\
LiveQuerySurface` takes it around every read, so a live reader only
        ever sees sealed block boundaries, never a half-ingested block.
        """
        return self._lock

    # ------------------------------------------------------------------
    # Server interning
    # ------------------------------------------------------------------
    @property
    def interner(self) -> ServerInterner:
        """The store's server id <-> index mapping (possibly shared)."""
        return self._interner

    def intern_server(self, server_id: str) -> int:
        """Map a server id to its stable integer index."""
        return self._interner.intern(server_id)

    def intern_servers(self, server_ids: Sequence[str]) -> np.ndarray:
        """Intern many server ids at once (the batch hot path setup).

        Returns the integer index array to pass to :meth:`record_batch`
        in place of the string ids; callers cache it per pool.
        """
        return self._interner.intern_many(server_ids)

    def server_name(self, index: int) -> str:
        return self._interner.name(index)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _table(self, pool_id: str, datacenter_id: str, counter: str) -> _Table:
        key = (pool_id, datacenter_id, counter)
        table = self._tables.get(key)
        if table is None:
            table = _Table()
            self._tables[key] = table
            self._by_pool_counter[(pool_id, counter)].append(key)
            self._pools.add(pool_id)
            self._datacenters.add(datacenter_id)
        return table

    def record_batch(
        self,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        window: int,
        server_ids: Sequence[str],
        values: np.ndarray,
    ) -> None:
        """Append one window of one counter for many servers at once.

        ``server_ids`` may be a sequence of id strings or an integer
        ndarray previously obtained from :meth:`intern_servers` (the
        simulator's zero-hash hot path).  ``values`` must be aligned
        with ``server_ids``.  Both arrays are copied, so callers may
        reuse scratch buffers across calls.
        """
        if isinstance(server_ids, np.ndarray) and server_ids.dtype.kind in "iu":
            indices = np.array(server_ids, dtype=np.int64)
        else:
            indices = self.intern_servers(server_ids)
        values = np.array(values, dtype=float)
        if indices.size != values.size:
            raise ValueError("server_ids and values must be aligned")
        if indices.size == 0:
            return
        table = self._table(pool_id, datacenter_id, counter)
        windows = np.full(indices.size, window, dtype=np.int64)
        table.append_batch(windows, indices, values)
        self._servers_by_pool_dc[(pool_id, datacenter_id)].update_from(indices)
        if window > self._max_window:
            self._max_window = window
        if self._agg_cache:
            self._agg_cache.clear()

    def record_columns(
        self,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        windows: np.ndarray,
        server_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Append pre-columnised rows with mixed windows (bulk loads).

        ``server_indices`` are interned indices from
        :meth:`intern_server` / :meth:`intern_servers`.  The store
        takes ownership of the arrays — callers must not mutate them
        afterwards.  This is the bulk-ingest primitive behind
        :meth:`record_many` and the archive importer;
        :meth:`record_batch` is the single-window convenience over it.
        """
        if values.size == 0:
            return
        table = self._table(pool_id, datacenter_id, counter)
        table.append_batch(windows, server_indices, values)
        self._servers_by_pool_dc[(pool_id, datacenter_id)].update_from(
            server_indices
        )
        max_w = int(windows.max())
        if max_w > self._max_window:
            self._max_window = max_w
        if self._agg_cache:
            self._agg_cache.clear()

    def record(self, sample: CounterSample) -> None:
        """Append one counter sample (compatibility shim)."""
        self.record_fast(
            sample.window_index,
            sample.server_id,
            sample.pool_id,
            sample.datacenter_id,
            sample.counter,
            sample.value,
        )

    def record_many(self, samples: Iterable[CounterSample]) -> None:
        """Append many samples, columnised per table (the batch path)."""
        for (pool_id, dc_id, counter), windows, indices, values in columnise_samples(
            samples, self.intern_server
        ):
            self.record_columns(pool_id, dc_id, counter, windows, indices, values)

    def record_fast(
        self,
        window: int,
        server_id: str,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        value: float,
    ) -> None:
        """Append one sample without constructing a CounterSample.

        .. deprecated::
            Per-sample ingestion survives for compatibility and tests;
            new code should build arrays and call :meth:`record_batch`.
        """
        index = self.intern_server(server_id)
        self._table(pool_id, datacenter_id, counter).append(window, index, value)
        self._servers_by_pool_dc[(pool_id, datacenter_id)].add(index)
        if window > self._max_window:
            self._max_window = window
        if self._agg_cache:
            self._agg_cache.clear()

    # ------------------------------------------------------------------
    # Streaming: rolling retention and incremental aggregates
    # ------------------------------------------------------------------
    @property
    def evicted_before(self) -> int:
        """Windows below this index live in the spill archive (0 = none)."""
        return self._evicted_before

    @property
    def sealed_through(self) -> int:
        """Largest window every tracked aggregate is final through; -1
        with no tracked aggregates (or before the first seal)."""
        if not self._tracked:
            return -1
        return min(t.sealed_through for t in self._tracked.values())

    def evict_windows(self, before: int) -> int:
        """Move every row with ``window < before`` to the spill archive.

        The rolling-retention primitive of streaming mode: hot memory
        stays bounded by the retained window span while queries keep
        answering *exactly* — ranges that dip below the watermark merge
        the archived segments back in original append order, ranges
        above it never touch the disk.  Requires rows to have arrived
        in non-decreasing block order (which every simulation engine's
        emission guarantees); returns the number of rows evicted.
        Evicting is idempotent — a cutoff at or below the current
        watermark is a no-op.
        """
        if before <= self._evicted_before:
            return 0
        evicted = 0
        for key, table in self._tables.items():
            segment = table.evict(before)
            if segment is None:
                continue
            if self._spill is None:
                self._spill = SpillArchive()
            self._spill.append(key, *segment)
            evicted += int(segment[0].size)
        self._evicted_before = before
        if evicted and self._agg_cache:
            self._agg_cache.clear()
        return evicted

    def hot_sample_count(self) -> int:
        """Samples currently held in memory (excludes spilled rows)."""
        return sum(table.hot_rows for table in self._tables.values())

    def track_aggregate(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        reducer: str = "mean",
    ) -> None:
        """Maintain ``pool_window_aggregate(...)`` incrementally.

        After registration, :meth:`seal_through` appends each newly
        sealed block's per-window aggregate to a persistent series, and
        :meth:`pool_window_aggregate` answers any query fully inside
        the sealed range by slicing that series — no re-gather, no
        spill reads, however long the run.  Registering the same
        aggregate twice is a no-op.
        """
        if reducer not in ("mean", "sum", "max", "count"):
            raise ValueError(f"unknown reducer {reducer!r}")
        key = (pool_id, counter, datacenter_id, reducer)
        if key not in self._tracked:
            self._tracked[key] = _TrackedAggregate(reducer)

    def seal_through(self, window: int) -> None:
        """Mark windows ``<= window`` complete; extend tracked series.

        Callers must have ingested *all* rows of the sealed windows
        first (the streaming driver seals at block boundaries).  Each
        tracked aggregate gathers only the not-yet-sealed slice and
        appends its per-window partials — bit-identical to a full
        recompute because aggregate bins never mix windows.
        """
        for (pool_id, counter, datacenter_id, _r), tracker in self._tracked.items():
            if window <= tracker.sealed_through:
                continue
            lo = tracker.sealed_through + 1
            keyed = self._matching_tables(pool_id, counter, datacenter_id)
            windows, _servers, values = self._gather(keyed, lo, window + 1)
            if windows.size:
                out_w, out_v = window_aggregate_arrays(
                    windows, values, tracker.reducer
                )
                tracker.extend(out_w, out_v, window)
            else:
                tracker.extend(
                    np.array([], dtype=np.int64), np.array([], dtype=float),
                    window,
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pools(self) -> Tuple[str, ...]:
        return tuple(sorted(self._pools))

    @property
    def datacenters(self) -> Tuple[str, ...]:
        return tuple(sorted(self._datacenters))

    @property
    def max_window(self) -> int:
        """Largest window index seen; -1 when empty."""
        return self._max_window

    def counters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        names = {
            counter
            for (pool, counter) in self._by_pool_counter
            if pool == pool_id
        }
        return tuple(sorted(names))

    def servers_in_pool(
        self,
        pool_id: str,
        datacenter_id: Optional[str] = None,
    ) -> Tuple[str, ...]:
        indices: Set[int] = set()
        for (pool, dc), members in self._servers_by_pool_dc.items():
            if pool != pool_id:
                continue
            if datacenter_id is None or dc == datacenter_id:
                indices.update(members.indices().tolist())
        return tuple(sorted(self._interner.name(i) for i in indices))

    def datacenters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        dcs = {
            dc
            for (pool, dc, _counter) in self._tables
            if pool == pool_id
        }
        return tuple(sorted(dcs))

    def datacenters_for_pool_counter(
        self, pool_id: str, counter: str
    ) -> Tuple[str, ...]:
        """Datacenters with (pool, counter) rows, sorted.

        The table-directory read the sharded facade uses to plan its
        per-datacenter merges; public (rather than a peek at
        ``_by_pool_counter``) so process-backed shards can answer it
        over RPC.
        """
        return tuple(sorted(key[1] for key in self._by_pool_counter.get((pool_id, counter), [])))

    def iter_tables(
        self,
    ) -> Iterator[Tuple[TableKey, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield (key, windows, server indices, values) per table.

        The export module's bulk read; rows are in append order.
        Spilled segments are merged back ahead of the hot columns, so
        exports stay byte-identical whether or not retention evicted.
        """
        for key, table in self._tables.items():
            if table.spilled_rows and self._spill is not None:
                yield (key,) + self._gather([(key, table)], 0, self._max_window + 1)
            else:
                windows, servers, values = table.columns()
                yield key, windows, servers, values

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _matching_tables(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str],
    ) -> List[Tuple[TableKey, _Table]]:
        keys = self._by_pool_counter.get((pool_id, counter), [])
        # Sorted by datacenter so query results never depend on table
        # creation order (which an export/import round trip reshuffles).
        return [
            (key, self._tables[key])
            for key in sorted(keys, key=lambda k: k[1])
            if datacenter_id is None or key[1] == datacenter_id
        ]

    def _gather_one(
        self,
        key: TableKey,
        table: _Table,
        lo: int,
        hi: int,
        ws: List[np.ndarray],
        ss: List[np.ndarray],
        vs: List[np.ndarray],
    ) -> None:
        """Append one table's [lo, hi) slice — spill segments first.

        Spill segments precede the hot columns in original append
        order, so the concatenation is exactly the table's pre-eviction
        column order; queries entirely above the eviction watermark
        skip the archive (no disk reads on the streaming hot path).
        """
        full = lo <= 0 and hi > self._max_window
        if self._spill is not None and lo < self._evicted_before:
            for offset, seg_lo, seg_hi in self._spill.segments(key):
                if seg_hi < lo or seg_lo >= hi:
                    continue
                windows, servers, values = self._spill.read(offset)
                if not (full or (lo <= seg_lo and seg_hi < hi)):
                    mask = (windows >= lo) & (windows < hi)
                    windows = windows[mask]
                    servers = servers[mask]
                    values = values[mask]
                if windows.size:
                    ws.append(windows)
                    ss.append(servers)
                    vs.append(values)
        windows, servers, values = table.columns()
        if windows.size == 0:
            return
        if full or (table.spilled_rows and lo <= self._evicted_before
                    and hi > self._max_window):
            ws.append(windows)
            ss.append(servers)
            vs.append(values)
        else:
            mask = (windows >= lo) & (windows < hi)
            ws.append(windows[mask])
            ss.append(servers[mask])
            vs.append(values[mask])

    def _gather(
        self,
        tables: List[Tuple[TableKey, _Table]],
        lo: int,
        hi: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Window-sliced (windows, server indices, values) of many tables."""
        ws: List[np.ndarray] = []
        ss: List[np.ndarray] = []
        vs: List[np.ndarray] = []
        for key, table in tables:
            self._gather_one(key, table, lo, hi, ws, ss, vs)
        if not ws:
            empty = np.array([], dtype=np.int64)
            return empty, empty, np.array([], dtype=float)
        if len(ws) == 1:
            return ws[0], ss[0], vs[0]
        return np.concatenate(ws), np.concatenate(ss), np.concatenate(vs)

    def gather_columns(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw window-sliced (windows, server indices, values) columns.

        Rows come out table by table — tables sorted by datacenter, rows
        in append order within each table — which is the canonical order
        every aggregate query accumulates in.  The sharded facade reads
        shards through this method to rebuild that exact order.
        """
        lo = start if start is not None else 0
        hi = stop if stop is not None else self._max_window + 1
        tables = self._matching_tables(pool_id, counter, datacenter_id)
        return self._gather(tables, lo, hi)

    def server_series(
        self,
        pool_id: str,
        counter: str,
        server_id: str,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> TimeSeries:
        """Series of one counter on one server, optionally window-sliced."""
        index = self._interner.index.get(server_id)
        empty = TimeSeries(np.array([], dtype=int), np.array([], dtype=float))
        if index is None:
            return empty
        lo = start if start is not None else 0
        hi = stop if stop is not None else self._max_window + 1
        window_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        for keyed in self._matching_tables(pool_id, counter, None):
            windows, servers, values = self._gather([keyed], lo, hi)
            mask = servers == index
            if not mask.any():
                continue
            window_parts.append(windows[mask])
            value_parts.append(values[mask])
        if not window_parts:
            return empty
        if len(window_parts) == 1:
            return TimeSeries(window_parts[0], value_parts[0])
        return TimeSeries(np.concatenate(window_parts), np.concatenate(value_parts))

    def pool_window_aggregate(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
        reducer: str = "mean",
    ) -> TimeSeries:
        """Per-window aggregate across a pool's servers.

        ``reducer``: ``"mean"`` (default), ``"sum"``, ``"max"``,
        ``"count"``.  The planner's workhorse — e.g. average RPS/server
        or summed pool workload per window.  Grouping is a pair of
        ``np.bincount`` calls over the window column; results are
        memoized until the next ingest.
        """
        if reducer not in ("mean", "sum", "max", "count"):
            raise ValueError(f"unknown reducer {reducer!r}")
        lo = start if start is not None else 0
        hi = stop if stop is not None else self._max_window + 1
        tracked = self._tracked.get((pool_id, counter, datacenter_id, reducer))
        if tracked is not None and hi - 1 <= tracked.sealed_through:
            # Served from the incrementally maintained series: no
            # re-gather and no spill reads, however long the run.
            return tracked.series_slice(lo, hi)
        cache_key = (pool_id, counter, datacenter_id, start, stop, reducer)
        cached = self._agg_cache.get(cache_key)
        if cached is not None:
            return cached

        def memoize(series: TimeSeries) -> TimeSeries:
            # The memoized object is shared across callers; freeze its
            # arrays so an accidental in-place mutation raises instead
            # of silently poisoning the cache.
            series.windows.setflags(write=False)
            series.values.setflags(write=False)
            self._agg_cache[cache_key] = series
            return series
        tables = self._matching_tables(pool_id, counter, datacenter_id)
        windows, _servers, values = self._gather(tables, lo, hi)
        if windows.size == 0:
            return memoize(
                TimeSeries(np.array([], dtype=int), np.array([], dtype=float))
            )
        out_windows, out_values = window_aggregate_arrays(windows, values, reducer)
        return memoize(TimeSeries.from_sorted(out_windows, out_values))

    def per_server_values(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Dict[str, np.ndarray]:
        """All window values per server (for percentile feature vectors).

        Values keep their append (window) order within each server;
        grouping is one stable argsort over the interned server column.
        """
        lo = start if start is not None else 0
        hi = stop if stop is not None else self._max_window + 1
        out: Dict[str, np.ndarray] = {}
        for keyed in self._matching_tables(pool_id, counter, datacenter_id):
            _windows, servers, values = self._gather([keyed], lo, hi)
            if values.size == 0:
                continue
            order = np.argsort(servers, kind="stable")
            sorted_servers = servers[order]
            sorted_values = values[order]
            boundaries = np.flatnonzero(np.diff(sorted_servers)) + 1
            starts = np.concatenate(([0], boundaries))
            pieces = np.split(sorted_values, boundaries)
            for offset, piece in zip(starts, pieces):
                out[self._interner.name(sorted_servers[offset])] = piece
        return out

    def pool_matrix(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        start: Optional[int] = None,
        stop: Optional[int] = None,
    ) -> Tuple[np.ndarray, Tuple[str, ...], np.ndarray]:
        """Dense (windows, server_ids, values[window, server]) cube.

        Missing observations (offline servers, late joiners) are NaN.
        This is the array-native view consumers use to compute
        per-server statistics in one vectorized pass.
        """
        lo = start if start is not None else 0
        hi = stop if stop is not None else self._max_window + 1
        tables = self._matching_tables(pool_id, counter, datacenter_id)
        windows, servers, values = self._gather(tables, lo, hi)
        if values.size == 0:
            return (
                np.array([], dtype=np.int64),
                (),
                np.empty((0, 0), dtype=float),
            )
        uniq_windows, window_pos = np.unique(windows, return_inverse=True)
        uniq_servers, server_pos = np.unique(servers, return_inverse=True)
        matrix = np.full((uniq_windows.size, uniq_servers.size), np.nan)
        matrix[window_pos, server_pos] = values
        names = tuple(self._interner.name(i) for i in uniq_servers)
        return uniq_windows, names, matrix

    def all_values(
        self,
        counter: str,
        pool_ids: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Every stored value of ``counter``, optionally pool-filtered.

        Powers the fleet-wide distribution studies (Figs 12-14).
        """
        pools = list(pool_ids) if pool_ids is not None else list(self._pools)
        chunks: List[np.ndarray] = []
        for pool in pools:
            for key in self._by_pool_counter.get((pool, counter), []):
                _windows, _servers, values = self._gather(
                    [(key, self._tables[key])], 0, self._max_window + 1
                )
                if values.size:
                    chunks.append(values)
        if not chunks:
            return np.array([], dtype=float)
        return np.concatenate(chunks)

    def sample_count(self) -> int:
        """Total number of stored samples."""
        return sum(table.n_rows for table in self._tables.values())
