"""Live operator queries against a running streaming simulation.

The paper's operators analyze fleet telemetry *while the fleet is
running*; until now ``simulate --stream`` owned the process, so answers
only existed after the clock loop exited.  This module closes that gap
by composition: the existing shard RPC loop
(:func:`~repro.telemetry.workers.serve_shard`), the length-prefixed
transport (:class:`~repro.telemetry.transport.TcpTransport`), and the
sealed-watermark semantics of ``track_aggregate``/``seal_through``
already provide everything a query server needs.

Three pieces:

* :class:`LiveQuerySurface` — a read-only view over the live store
  (plain :class:`~repro.telemetry.store.MetricStore` or the
  :class:`~repro.telemetry.sharding.ShardedMetricStore` facade over any
  backend).  Every read takes the store's :attr:`lock`, which the
  streaming clock loop holds across each whole ingest→seal→evict block
  span — so a reader only ever observes the store at sealed block
  boundaries, never a half-ingested block.  That is the entire
  consistency argument: at a boundary every visible window is sealed,
  so a live answer for any window ``w <= sealed_through`` is
  bit-identical to the same query against a finished same-seed batch
  run.  The surface has no mutators; an attempt to call one is an
  ``AttributeError`` shipped back as the RPC error reply.
* :class:`QueryServer` — a :class:`~repro.telemetry.workers.ShardServer`
  whose sessions all serve the one shared surface instead of a fresh
  per-session store.  Same wire, same framing, same failure semantics
  as ``repro shard-server``.
* :class:`QueryClient` — the client side of ``repro query``: dial,
  ``call`` methods by name, get the pickled result back.  Connection
  failures surface as the usual named, ``io_timeout``-bounded
  :class:`~repro.telemetry.workers.ShardConnectionError` — never a
  hang.

The security note of ``docs/DISTRIBUTED.md`` applies unchanged: the
wire is pickle, so bind the query listener to loopback or a trusted
network only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.store import ServerInterner
from repro.telemetry.transport import (
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_IO_TIMEOUT,
    TcpTransport,
    format_address,
    parse_address,
)
from repro.telemetry.workers import ShardConnectionError, ShardServer

#: Store methods that mutate state — the read-only deny-list.  The
#: query surface enforces read-only *by omission*: none of these names
#: has a passthrough on :class:`LiveQuerySurface`, so a client calling
#: one gets an ``AttributeError`` shipped back as the RPC error reply.
#: ``tools/repro_lint`` (rpc-surface pass) keeps this honest in both
#: directions: every statically detected mutator on
#: ``MetricStore``/``ShardedMetricStore`` must be listed here, and no
#: listed name may ever appear on the surface — so a new mutator cannot
#: silently become reachable by live readers.
STORE_MUTATORS = frozenset({
    "record",
    "record_many",
    "record_batch",
    "record_columns",
    "record_fast",
    "evict_windows",
    "seal_through",
    "track_aggregate",
    "intern_server",
    "intern_servers",
    "rejoin_shard",
    "flush",
    "close",
})


class LiveQuerySurface:
    """Read-only, lock-serialized view of a live (possibly sharded) store.

    ``streamer`` optionally attaches the driving
    :class:`~repro.cluster.streaming.StreamingSimulator`, which
    contributes the authoritative sealed watermark, run progress, and
    the latched alarm alerts to :meth:`status`.

    The serve loop replays interner deltas on every message, so the
    surface carries its own throwaway :class:`ServerInterner` — a query
    client never sends real deltas, and a stray one lands in the
    sandbox instead of the live store's id space.
    """

    def __init__(self, store, streamer=None) -> None:
        self._store = store
        self._streamer = streamer
        self.interner = ServerInterner()
        self._lock = store.lock

    # -- watermark and retention state ---------------------------------
    @property
    def sealed_through(self) -> int:
        """Largest window a live answer is final through (-1 = none)."""
        with self._lock:
            if self._streamer is not None:
                return self._streamer.sealed_window
            return max(self._store.sealed_through, self._store.max_window)

    @property
    def evicted_before(self) -> int:
        with self._lock:
            return self._store.evicted_before

    @property
    def max_window(self) -> int:
        with self._lock:
            return self._store.max_window

    # -- introspection -------------------------------------------------
    @property
    def pools(self) -> Tuple[str, ...]:
        with self._lock:
            return self._store.pools

    @property
    def datacenters(self) -> Tuple[str, ...]:
        with self._lock:
            return self._store.datacenters

    def counters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        with self._lock:
            return self._store.counters_for_pool(pool_id)

    def servers_in_pool(self, pool_id: str) -> Tuple[str, ...]:
        with self._lock:
            return self._store.servers_in_pool(pool_id)

    def datacenters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        with self._lock:
            return self._store.datacenters_for_pool(pool_id)

    def datacenters_for_pool_counter(
        self, pool_id: str, counter: str
    ) -> Tuple[str, ...]:
        with self._lock:
            return self._store.datacenters_for_pool_counter(pool_id, counter)

    def sample_count(self) -> int:
        with self._lock:
            return self._store.sample_count()

    def hot_sample_count(self) -> int:
        with self._lock:
            return self._store.hot_sample_count()

    def server_name(self, index: int) -> str:
        with self._lock:
            return self._store.server_name(index)

    # -- queries -------------------------------------------------------
    def pool_window_aggregate(self, *args, **kwargs):
        with self._lock:
            return self._store.pool_window_aggregate(*args, **kwargs)

    def per_server_values(self, *args, **kwargs):
        with self._lock:
            return self._store.per_server_values(*args, **kwargs)

    def server_series(self, *args, **kwargs):
        with self._lock:
            return self._store.server_series(*args, **kwargs)

    def pool_matrix(self, *args, **kwargs):
        with self._lock:
            return self._store.pool_matrix(*args, **kwargs)

    def all_values(self, *args, **kwargs):
        with self._lock:
            return self._store.all_values(*args, **kwargs)

    def iter_tables(self) -> List[Tuple]:
        """Every table's columns, materialized *inside* the lock.

        The serve loop would materialize the iterator anyway (it cannot
        pickle a generator); doing it here keeps the whole read atomic.
        """
        with self._lock:
            return list(self._store.iter_tables())

    # -- atomic compound reads (one lock hold = one consistent answer) -
    def aggregate(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        reducer: str = "mean",
    ) -> Dict[str, Any]:
        """One aggregate series plus the watermark it is valid as of.

        Taken under a single lock hold, so ``sealed_through`` and the
        series describe the same block boundary — the pair a live
        client needs to compare its answer against a batch twin.
        """
        with self._lock:
            series = self._store.pool_window_aggregate(
                pool_id, counter, datacenter_id=datacenter_id, reducer=reducer
            )
            return {
                "sealed_through": self.sealed_through,
                "windows": series.windows,
                "values": series.values,
            }

    def status(self) -> Dict[str, Any]:
        """One consistent snapshot of run progress and alarm state."""
        with self._lock:
            store = self._store
            info: Dict[str, Any] = {
                "sealed_through": self.sealed_through,
                "evicted_before": store.evicted_before,
                "max_window": store.max_window,
                "hot_samples": store.hot_sample_count(),
                "samples": store.sample_count(),
                "pools": store.pools,
                "alerts": [],
            }
            streamer = self._streamer
            if streamer is not None:
                info["windows"] = streamer.windows
                info["blocks"] = streamer.blocks
                info["alerts"] = [
                    {
                        "name": alert.name,
                        "pool_id": alert.pool_id,
                        "window": alert.window,
                        "detail": alert.detail,
                    }
                    for alert in streamer.alerts
                ]
            return info

    def snapshot(self) -> Dict[str, Any]:
        """Every table and the name table, atomically.

        Everything :func:`~repro.telemetry.export.export_store` needs
        to write the archive client-side (wrap in
        :class:`StoreSnapshot`) — the live half of the byte-identical
        export guarantee.
        """
        with self._lock:
            return {
                "sealed_through": self.sealed_through,
                "server_names": list(self._store.interner.names),
                "tables": list(self._store.iter_tables()),
            }


class StoreSnapshot:
    """A :meth:`LiveQuerySurface.snapshot` result as an exportable store.

    Duck-types the ``iter_tables``/``server_name`` surface
    :func:`~repro.telemetry.export.export_store` reads, so a client can
    write a byte-identical archive from a snapshot it fetched over the
    wire.
    """

    def __init__(self, snapshot: Dict[str, Any]) -> None:
        self._tables = snapshot["tables"]
        self._names = snapshot["server_names"]
        self.sealed_through = snapshot["sealed_through"]

    def iter_tables(self):
        return iter(self._tables)

    def server_name(self, index: int) -> str:
        return self._names[index]


class QueryServer(ShardServer):
    """A :class:`ShardServer` whose sessions share one live surface.

    Everything else — accept loop, session threads, idempotent
    ``stop()``, ``max_sessions``, ephemeral-port binding — is inherited
    unchanged; the only difference is that a session serves the shared
    read-only surface instead of a fresh private store.
    """

    def __init__(
        self,
        surface: LiveQuerySurface,
        address: str = "127.0.0.1:0",
        max_sessions: Optional[int] = None,
    ) -> None:
        super().__init__(address, max_sessions=max_sessions)
        self._surface = surface

    def _session_store(self) -> LiveQuerySurface:
        return self._surface


class QueryClient:
    """One connection to a :class:`QueryServer`; the ``repro query`` core.

    Dial errors carry the address; a server that dies or hangs
    mid-session surfaces as a named
    :class:`~repro.telemetry.workers.ShardConnectionError` within the
    ``io_timeout`` bound (0 or ``None`` disables the bound) — the same
    failure contract as a shard session, because it is the same wire.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        io_timeout: Optional[float] = DEFAULT_IO_TIMEOUT,
    ) -> None:
        self.address = format_address(*parse_address(address))
        if io_timeout is not None and io_timeout <= 0:
            io_timeout = None
        self._io_timeout = io_timeout
        self._transport = TcpTransport.connect(
            self.address, timeout=connect_timeout, io_timeout=io_timeout
        )
        self._closed = False

    def call(self, method: str, *args, **kwargs) -> Any:
        """Invoke ``method`` on the server's surface, return its result."""
        if self._closed:
            raise RuntimeError("query client is closed")
        try:
            self._transport.send(("call", [], method, args, kwargs))
            reply = self._transport.recv()
        except TimeoutError as error:
            raise ShardConnectionError(
                f"query server ({self.address}): I/O timed out after "
                f"{self._io_timeout:g}s — peer is alive but not making "
                f"progress"
            ) from error
        except (EOFError, OSError) as error:
            raise ShardConnectionError(
                f"query server ({self.address}): connection lost"
            ) from error
        status, payload = reply
        if status == "err":
            raise payload
        return payload

    # Convenience wrappers for the three compound reads.
    def status(self) -> Dict[str, Any]:
        return self.call("status")

    def aggregate(
        self,
        pool_id: str,
        counter: str,
        datacenter_id: Optional[str] = None,
        reducer: str = "mean",
    ) -> Dict[str, Any]:
        return self.call(
            "aggregate", pool_id, counter,
            datacenter_id=datacenter_id, reducer=reducer,
        )

    def snapshot(self) -> Dict[str, Any]:
        return self.call("snapshot")

    def close(self) -> None:
        """End the session (idempotent; safe against a dead server)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._transport.send(("stop",))
        except Exception:  # server already gone — nothing to stop
            pass
        self._transport.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
