"""Remote shards: worker processes and TCP servers behind one protocol.

The paper's pipeline spreads its ~3 GB/s counter stream across many
trace-store *machines*; :class:`~repro.telemetry.sharding.\
ShardedMetricStore` reproduces the partitioning in-process, and this
module moves each partition behind a real placement boundary.  The
shape is the classic actor: one
:class:`~repro.telemetry.store.MetricStore` owned by a serve loop on
the far side of a :mod:`~repro.telemetry.transport` connection, a
command channel in front of it, and a parent-side proxy object whose
surface mirrors the store's query API — the facade cannot tell a
remote shard from a local one.

Two placements share everything but the pipe:

:class:`ShardWorker`
    One ``multiprocessing`` daemon child per shard, reached over a
    duplex pipe (:class:`~repro.telemetry.transport.PipeTransport`).
    The ``"processes"`` backend.
:class:`TcpShardClient` / :class:`ShardServer`
    One TCP session per shard, reached over length-prefixed pickle
    frames (:class:`~repro.telemetry.transport.TcpTransport`).  A
    :class:`ShardServer` — also exposed as the ``repro shard-server``
    CLI command — accepts any number of sessions and gives each one
    its own fresh ``MetricStore``, so *one connection is one shard*
    and a facade pointed at ``host:port,host:port,...`` has true
    multi-machine shards.  The ``"tcp"`` backend.

Message protocol (one connection per shard, all messages tuples,
strictly FIFO; the wire encoding is the transport's business):

``("ingest", names, commands)``
    Fire-and-forget bulk append.  ``commands`` is a list of
    ``(method, args)`` pairs — ``record_columns`` / ``record_fast``
    calls whose ndarray arguments pickle as raw buffers — applied in
    order by the serve loop.  Small parts coalesce: the proxy buffers
    commands until ``flush_rows`` rows are pending (or a query/close
    forces a flush), so one message amortises pickling and wakeup
    cost across many appends.
``("call", names, method, args, kwargs)``
    Synchronous query RPC.  The serve loop resolves ``method`` on its
    store (plain attributes answer property reads, generators are
    materialised into lists so they can cross the connection) and
    replies ``("ok", result)`` or ``("err", exception)``.  Any
    exception a previous *ingest* message raised is delivered here
    instead — ingest errors are deferred, never lost.  One method
    name is reserved: ``protocol_capabilities`` is answered by the
    serve loop itself (:data:`SESSION_CAPABILITIES`) without touching
    the store — the capability probe a client sends once per session
    to learn whether the peer decodes binary ingest frames.  A PR 4
    serve loop answers it with an ``AttributeError``, which a probing
    client reads as "pickle frames only" — so old and new peers
    interoperate in both directions.
``("stop",)``
    Graceful shutdown of this session; so is a clean EOF (the client
    vanishing ends the session, never the server).

A second method name is reserved: ``resync`` makes the serve loop
drop this session's store and start over from the client's
authoritative state — the *full* interner name table rides the resync
call's names field (not a delta), and the client follows up with
ordinary ingest frames replaying its journal.  This is the rejoin
path for a restarted shard server: the rebuilt session reconverges to
the exact pre-crash store state (see
:meth:`~repro.telemetry.sharding.ShardedMetricStore.rejoin_shard`).
A PR 5 serve loop answers ``resync`` with an ``AttributeError``,
which the client reports as "peer does not support resync".

**Replication**: :class:`ReplicatedShardClient` mirrors one shard
across several TCP sessions (a primary plus replicas).  Every ingest
call fans out to every live member, so each member buffers and
coalesces the identical command stream into identical frames; queries
are answered by the first live member.  When a member dies or times
out (a :class:`ShardConnectionError` — the PR 5 timeout/EOF paths) it
is retired and the survivors carry on: queries and subsequent ingest
fail over with **bit-identical** answers, because every member's store
consumed the same calls in the same order.  Only when every member of
a shard has failed does the error reach the caller.

**Pipelined ingest**: with ``pipeline_depth > 0`` (the default), a
proxy's ``flush`` hands the coalesced frame to a per-shard writer
thread and returns — the facade partitions its next block while prior
frames are still crossing the wire.  The queue is bounded at
``pipeline_depth`` frames (a full queue blocks the next flush:
backpressure, not unbounded memory), the writer preserves FIFO order,
and every query RPC first drains the queue — so reads still observe
all previously buffered ingest, and the protocol on the wire is
byte-for-byte what a synchronous client would have sent.  A send
error in the writer (dead or timed-out peer) is raised from the next
``flush`` or query as the usual per-shard ``RuntimeError``;
``close()`` — which must stay safe inside ``finally:`` blocks —
discards a pending error together with the unsent frames, the same
archive-before-close contract buffered rows have always had.

``names`` on every message is the **interner delta**: the slice of
server names the parent interned since the previous message.  The
serve loop replays the slice into its own
:class:`~repro.telemetry.store.ServerInterner`, so both sides agree on
the global id space without sharing memory — ingest ships only
``int64`` index columns, and name-returning queries
(``per_server_values``, ``pool_matrix``, ``servers_in_pool``) still
answer with the right strings.  This replication discipline is what
lets the identical protocol run over a pipe or a socket unchanged.

Cost model: every row crosses the placement boundary exactly once as
part of a pickled ``int64``/``float64`` ndarray (~24 bytes/row of
payload), and every query result crosses back once.  On a single CPU
that serialisation is pure overhead — the threads backend exists for
exactly that reason — but a remote shard keeps its entire store,
freeze, and aggregate-cache workload off the simulating process, which
is what pays once shards outgrow one core or one host.

Equivalence: a remote shard applies the identical ``record_columns``
calls in the identical order a local shard would see, so its tables —
and therefore every query answer and export — are bit-identical to the
serial backend's.  ``tests/test_sharded_store.py`` and
``tests/test_sim_equivalence.py`` enforce this for all four backends.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.store import MetricStore, ServerInterner, TableKey
from repro.telemetry.transport import (
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_IO_TIMEOUT,
    PipeTransport,
    TcpTransport,
    format_address,
)

#: Default number of pending rows that triggers an ingest flush.
DEFAULT_FLUSH_ROWS = 65536

#: Default bound on a shard's pipelined send queue: how many coalesced
#: ingest frames may be queued or in flight before the next ``flush``
#: blocks (backpressure).  0 disables pipelining — every flush sends
#: synchronously on the caller's thread, the PR 4 behaviour.
DEFAULT_PIPELINE_DEPTH = 4

#: What this serve loop can do beyond the PR 4 protocol, answered to
#: the ``protocol_capabilities`` probe RPC.  A PR 4 server has no
#: probe handler and answers the probe with an ``AttributeError``,
#: which clients treat as "no capabilities" — that asymmetry is the
#: whole negotiation.
SESSION_CAPABILITIES = {"binary_ingest": True, "resync": True}

#: How long ``close`` waits for a graceful child exit before escalating
#: to ``terminate()`` (seconds).
_JOIN_TIMEOUT = 5.0

#: How long ``close`` lets an in-flight pipelined frame finish before
#: aborting it by closing the transport (seconds).  Deliberately short:
#: close() already drops buffered rows by contract, so finishing the
#: frame is a courtesy, not a guarantee worth waiting long for.
_ABORT_JOIN_TIMEOUT = 1.0


def serve_shard(transport, store: Optional[MetricStore] = None) -> None:
    """Serve one shard session: own one ``MetricStore``, drain messages.

    The placement-agnostic half of the actor — the same loop runs in a
    ``multiprocessing`` child (pipe transport) and in a
    :class:`ShardServer` session thread (TCP transport).  Runs until a
    ``("stop",)`` message, a clean EOF (the client closed), or a
    transport error (the client died).  Ingest exceptions are
    remembered and surfaced on the next ``call`` so the fire-and-forget
    fast path never needs an acknowledgement round trip.
    """
    store = store if store is not None else MetricStore()
    deferred: Optional[BaseException] = None
    while True:
        try:
            message = transport.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "ingest":
            _replay_names(store.interner, message[1])
            try:
                for method, args in message[2]:
                    getattr(store, method)(*args)
            except BaseException as error:  # noqa: BLE001 — re-raised on next call
                deferred = error
        elif kind == "call":
            _method, args, kwargs = message[2], message[3], message[4]
            if _method == "resync":
                # Session-level rejoin: drop whatever this session's
                # store holds and rebuild from the client's
                # authoritative state.  The *full* interner name table
                # rides this message (the client reset its delta
                # counter), so it must replay into the fresh store,
                # not the one being discarded; the journal replay
                # follows as ordinary ingest frames.
                store = MetricStore()
                deferred = None
                _replay_names(store.interner, message[1])
                if not _send_reply(transport, ("ok", True)):
                    break
                continue
            _replay_names(store.interner, message[1])
            if _method == "protocol_capabilities":
                # Session-level probe, answered here: capabilities
                # describe the serve loop, not the store — and old
                # loops without this branch answer AttributeError,
                # which probing clients read as "no capabilities".
                if not _send_reply(
                    transport, ("ok", dict(SESSION_CAPABILITIES))
                ):
                    break
                continue
            if deferred is not None:
                error, deferred = deferred, None
                if not _send_reply(transport, ("err", error)):
                    break
                continue
            try:
                attr = getattr(store, _method)
                result = attr(*args, **kwargs) if callable(attr) else attr
                if isinstance(result, Iterator):
                    result = list(result)
                reply = ("ok", result)
            except BaseException as error:  # noqa: BLE001
                reply = ("err", error)
            if not _send_reply(transport, reply):
                break
        elif kind == "stop":
            break
    transport.close()


def _worker_main(conn) -> None:
    """Child-process entry point: one shard session over the pipe."""
    serve_shard(PipeTransport(conn))


def _replay_names(interner: ServerInterner, names: List[str]) -> None:
    """Append the parent's interner delta, preserving global indices."""
    for name in names:
        interner.intern(name)


def _send_reply(transport, reply) -> bool:
    """Send an RPC reply; ``False`` means the client is gone.

    A client that died with a call in flight must end the session
    (the loop breaks and closes the transport) rather than crash the
    serving thread; a reply payload that cannot be pickled degrades
    to an ``err`` naming the problem so the client still gets an
    answer.
    """
    try:
        transport.send(reply)
        return True
    except (EOFError, OSError):
        return False
    except Exception as error:  # unpicklable result/exception
        try:
            transport.send(("err", RuntimeError(repr(error))))
            return True
        except (EOFError, OSError):  # pragma: no cover - client died too
            return False


class ShardConnectionError(RuntimeError):
    """A shard's connection died, reset, or timed out.

    The error every ``ShardClient`` raises on the PR 5 failure paths
    (peer vanished → ``EOFError``/``OSError``, hung-but-alive peer →
    ``TimeoutError``), distinct from exceptions the *remote store*
    raised and shipped back (a bad query argument is a ``ValueError``
    here exactly as it would be locally).  The distinction is what
    replication keys failover on: a connection-level failure means
    "try another member", a store-level exception means the call
    itself was wrong and every member would answer the same.
    Subclasses ``RuntimeError``, so pre-replication callers that
    caught ``RuntimeError`` keep working unchanged.
    """


class _ShardQuerySurface:
    """The query half of the remote-shard proxy surface.

    Every method routes through ``self.call`` (provided by the
    subclass), mirroring :class:`~repro.telemetry.store.MetricStore`'s
    read API — shared by :class:`ShardClient` (one session) and
    :class:`ReplicatedShardClient` (a failover group), so the facade
    cannot tell them apart.
    """

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError

    @property
    def pools(self) -> Tuple[str, ...]:
        return tuple(self.call("pools"))

    @property
    def datacenters(self) -> Tuple[str, ...]:
        return tuple(self.call("datacenters"))

    @property
    def max_window(self) -> int:
        return self.call("max_window")

    def counters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        return self.call("counters_for_pool", pool_id)

    def servers_in_pool(
        self, pool_id: str, datacenter_id: Optional[str] = None
    ) -> Tuple[str, ...]:
        return self.call("servers_in_pool", pool_id, datacenter_id)

    def datacenters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        return self.call("datacenters_for_pool", pool_id)

    def datacenters_for_pool_counter(self, pool_id: str, counter: str) -> Tuple[str, ...]:
        return self.call("datacenters_for_pool_counter", pool_id, counter)

    def sample_count(self) -> int:
        return self.call("sample_count")

    def hot_sample_count(self) -> int:
        return self.call("hot_sample_count")

    def evict_windows(self, before: int) -> int:
        """Evict windows below ``before`` on the remote store.

        Rides the ordered command stream like ingest (``call`` drains
        buffered frames first), so eviction observes every previously
        ingested row.
        """
        return self.call("evict_windows", before)

    def iter_tables(
        self,
    ) -> Iterator[Tuple[TableKey, np.ndarray, np.ndarray, np.ndarray]]:
        """Tables materialised remotely and shipped back as a list.

        One pickle of the shard's full columns — the export path's bulk
        read, paid once per export rather than per row.
        """
        return iter(self.call("iter_tables"))

    def gather_columns(self, *args: Any, **kwargs: Any):
        return self.call("gather_columns", *args, **kwargs)

    def pool_window_aggregate(self, *args: Any, **kwargs: Any):
        return self.call("pool_window_aggregate", *args, **kwargs)

    def per_server_values(self, *args: Any, **kwargs: Any) -> Dict[str, np.ndarray]:
        return self.call("per_server_values", *args, **kwargs)

    def server_series(self, *args: Any, **kwargs: Any):
        return self.call("server_series", *args, **kwargs)

    def pool_matrix(self, *args: Any, **kwargs: Any):
        return self.call("pool_matrix", *args, **kwargs)

    def all_values(self, *args: Any, **kwargs: Any) -> np.ndarray:
        return self.call("all_values", *args, **kwargs)


class ShardClient(_ShardQuerySurface):
    """Parent-side proxy to one remote ``MetricStore``, any transport.

    Duck-types the slice of the :class:`MetricStore` surface the
    sharded facade uses — buffered ``record_columns`` / ``record_fast``
    ingest plus every query and introspection method — so
    :class:`~repro.telemetry.sharding.ShardedMetricStore` can hold
    remote-shard handles where it would otherwise hold local stores.
    All answers are bit-identical to a local shard fed the same calls
    (the serve loop applies the same methods in the same order); the
    difference is purely *where* the rows live and the one pickling
    round trip each row (ingest) and each result (query) pays.

    Not thread-safe: one owner (the facade) talks to one shard.
    Subclasses set ``self._transport`` and implement
    :meth:`_shutdown` (orderly teardown of whatever is on the far
    side) and :meth:`_peer` (a human-readable locator for error
    messages).  :meth:`close` is idempotent and fork-safe: a forked
    copy of the proxy only drops its inherited connection end — the
    remote shard belongs to the original owner, and shutting it down
    from the fork would yank a live store out from under that owner.
    """

    def __init__(
        self,
        shard_id: int,
        interner: ServerInterner,
        flush_rows: int = DEFAULT_FLUSH_ROWS,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    ) -> None:
        if flush_rows < 1:
            raise ValueError("flush_rows must be >= 1")
        if pipeline_depth < 0:
            raise ValueError("pipeline_depth must be >= 0")
        self._shard_id = shard_id
        self._interner = interner
        self._flush_rows = flush_rows
        self._synced_names = 0
        self._pending: List[Tuple[str, tuple]] = []
        self._pending_rows = 0
        self._closed = False
        self._close_lock = threading.Lock()
        self._owner_pid = os.getpid()
        self._transport = None  # set by subclasses
        self._io_timeout: Optional[float] = None  # set by tcp subclass
        # Pipelined send state: a bounded FIFO of coalesced ingest
        # frames drained by one writer thread (started on first use).
        # _unsent counts queued plus in-flight frames; the condition
        # guards every field below.
        self._pipeline_depth = pipeline_depth
        self._send_cond = threading.Condition()
        self._send_queue: deque = deque()
        self._send_error: Optional[BaseException] = None
        self._unsent = 0
        self._writer: Optional[threading.Thread] = None
        self._writer_stop = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> int:
        return self._shard_id

    @property
    def closed(self) -> bool:
        return self._closed

    def _peer(self) -> str:
        """Where the remote shard lives, for error messages."""
        raise NotImplementedError

    def _shutdown(self) -> None:
        """Orderly teardown, called exactly once by the owning process."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop the remote shard; idempotent and fork-safe.

        Called from a *forked* copy of the owner (``os.getpid()``
        differs from the pid that created the proxy) it only drops the
        inherited connection end: the remote shard belongs to the
        original parent, so the fork neither signals nor terminates
        it.  Double-close is a no-op — including *concurrent*
        double-close: a replication group retiring a dead member races
        the facade's own ``close()`` against the same proxy, so the
        closed flag is a lock-guarded test-and-set and exactly one
        caller runs the teardown (the transport is never closed twice,
        the pipeline never aborted twice); late callers wait for it
        and return.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._pending.clear()
            self._pending_rows = 0
            if os.getpid() != self._owner_pid:
                # Forked copy: the shard is the original owner's.  Drop
                # our duplicated connection end and leave the far side
                # alone (the writer thread, if any, did not survive the
                # fork).
                self._transport.close()
                return
            self._abort_pipeline()
            self._shutdown()

    def _connection_lost(self, error: BaseException) -> ShardConnectionError:
        if isinstance(error, TimeoutError):
            bound = (
                f" after {self._io_timeout:g}s"
                if self._io_timeout is not None
                else ""
            )
            return ShardConnectionError(
                f"shard {self._shard_id} ({self._peer()}): I/O timed "
                f"out{bound} — peer is alive but not making progress"
            )
        return ShardConnectionError(
            f"shard {self._shard_id} ({self._peer()}): connection lost"
        )

    # ------------------------------------------------------------------
    # Pipelined sending (one writer thread per shard, bounded queue)
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        """Drain the send queue in FIFO order, one frame at a time.

        The first send failure is remembered (and every later frame
        skipped); it surfaces on the owner thread at the next
        ``flush`` or query (``close()`` deliberately discards it — it
        runs in ``finally:`` blocks where raising would mask the
        primary error).  ``_unsent`` is decremented in a ``finally``
        so a waiter can never be left hanging.
        """
        while True:
            with self._send_cond:
                while not self._send_queue and not self._writer_stop:
                    self._send_cond.wait()
                if not self._send_queue:  # stop requested, queue drained
                    return
                names, commands = self._send_queue.popleft()
            try:
                if self._send_error is None:
                    self._transport.send_ingest(names, commands)
            except BaseException as error:  # noqa: BLE001 — re-raised on owner thread
                with self._send_cond:
                    if self._send_error is None:
                        self._send_error = error
            finally:
                with self._send_cond:
                    self._unsent -= 1
                    self._send_cond.notify_all()

    def _enqueue_ingest(self, names: List[str], commands: List[tuple]) -> None:
        """Queue one coalesced frame; blocks while the queue is full.

        The block is the backpressure contract: at most
        ``pipeline_depth`` frames are ever buffered beyond the pending
        list, so a slow peer stalls the producer instead of growing an
        unbounded queue.
        """
        with self._send_cond:
            if self._writer is None:
                self._writer = threading.Thread(
                    target=self._writer_loop,
                    name=f"shard-{self._shard_id}-writer",
                    daemon=True,
                )
                self._writer.start()
            while (
                self._unsent >= self._pipeline_depth
                and self._send_error is None
                and not self._writer_stop
            ):
                self._send_cond.wait()
            if self._writer_stop:
                raise RuntimeError("ShardClient is closed")
            error = self._send_error
            if error is not None:
                raise self._connection_lost(error) from error
            self._send_queue.append((names, commands))
            self._unsent += 1
            self._send_cond.notify_all()

    def _drain_pipeline(self) -> None:
        """Wait until every queued/in-flight frame hit the wire.

        Called before each RPC so the call frame is strictly ordered
        after all ingest — the read-your-writes guarantee — and before
        inspecting ``_send_error`` so a writer failure is never
        observed late.
        """
        if self._writer is not None:
            with self._send_cond:
                while self._unsent and self._send_error is None:
                    self._send_cond.wait()
        error = self._send_error
        if error is not None:
            raise self._connection_lost(error) from error

    def _abort_pipeline(self) -> None:
        """Stop the writer for close(): drop queued frames, let the
        in-flight one finish (bounded), abort it if wedged.

        Queued-but-unsent frames are dropped deliberately — close()
        has always discarded buffered rows no query needed (archive
        before closing).  A writer stuck mid-send past the join
        timeout has its transport closed out from under it, which
        fails the send and frees the thread: never a deadlock.
        """
        writer = self._writer
        if writer is None:
            return
        with self._send_cond:
            self._writer_stop = True
            self._unsent -= len(self._send_queue)
            self._send_queue.clear()
            self._send_cond.notify_all()
        writer.join(_ABORT_JOIN_TIMEOUT)
        if writer.is_alive():
            # Wedged mid-send: close the transport out from under it —
            # the sendall fails and the thread exits.  The peer sees a
            # mid-frame EOF, i.e. "client died", which close() is.
            self._transport.close()
            writer.join(_JOIN_TIMEOUT)
        self._writer = None

    def _names_delta(self) -> List[str]:
        """Server names interned since the last message to this shard."""
        names = self._interner.names
        if self._synced_names == len(names):
            return []
        delta = names[self._synced_names:]
        self._synced_names = len(names)
        return delta

    def flush(self) -> None:
        """Ship buffered ingest commands as one coalesced message.

        Called automatically when ``flush_rows`` rows are pending and
        before every query RPC, so readers always observe their own
        writes.  With ``pipeline_depth > 0`` the frame is handed to the
        shard's writer thread (blocking only when ``pipeline_depth``
        frames are already outstanding — backpressure); with depth 0 it
        is sent synchronously.  A dead or timed-out peer surfaces here
        as a ``RuntimeError`` naming the shard and where it lived —
        never a hang.
        """
        if self._closed:
            raise RuntimeError("ShardClient is closed")
        if not self._pending:
            error = self._send_error
            if error is not None:
                raise self._connection_lost(error) from error
            return
        names = self._names_delta()
        pending, self._pending = self._pending, []
        self._pending_rows = 0
        if self._pipeline_depth:
            self._enqueue_ingest(names, pending)
            return
        try:
            self._transport.send_ingest(names, pending)
        except (EOFError, OSError) as error:
            raise self._connection_lost(error) from error

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Synchronous RPC: flush pending ingest, run ``store.method``.

        Drains the pipelined send queue first, so the call frame — and
        therefore the answer — is ordered after every buffered ingest.
        Exceptions raised in the remote shard — including deferred
        ingest errors — are re-raised here.  The result pays one pickle
        round trip; everything else about it (values, dtypes, ordering)
        is exactly what the local shard would have returned.
        """
        self.flush()
        self._drain_pipeline()
        try:
            self._transport.send(("call", self._names_delta(), method, args, kwargs))
            kind, payload = self._transport.recv()
        except (EOFError, OSError) as error:
            raise self._connection_lost(error) from error
        if kind == "err":
            raise payload
        return payload

    def resync(self) -> None:
        """Re-seed the peer session from scratch (the rejoin handshake).

        Resets the interner-delta counter so the *full* name table —
        not a delta — rides the reserved ``resync`` call, and the serve
        loop swaps in a fresh store for this session.  The caller
        (:meth:`~repro.telemetry.sharding.ShardedMetricStore.\
rejoin_shard`) then replays its journal as ordinary ingest, after
        which the rejoined shard's store is bit-identical to the one
        that crashed.  A PR 5 peer has no ``resync`` branch and
        answers with ``AttributeError``, reported here as an
        unsupported-peer error.
        """
        if self._closed:
            raise RuntimeError("ShardClient is closed")
        self._synced_names = 0
        try:
            self.call("resync")
        except AttributeError as error:
            raise RuntimeError(
                f"shard {self._shard_id} ({self._peer()}): peer does "
                f"not support the resync RPC (pre-replication server)"
            ) from error

    # ------------------------------------------------------------------
    # Ingest (buffered, fire-and-forget)
    # ------------------------------------------------------------------
    def record_columns(
        self,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        windows: np.ndarray,
        server_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Buffer one pre-partitioned column append for the remote shard.

        Same contract as :meth:`MetricStore.record_columns` — the
        proxy takes ownership of the arrays (they are held until the
        next flush, then pickled across the connection).  Nothing
        crosses the placement boundary until the batching threshold is
        hit, so per-window parts from a blocked simulation coalesce
        into few large messages.
        """
        if self._closed:
            raise RuntimeError("ShardClient is closed")
        if values.size == 0:
            return
        self._pending.append(
            (
                "record_columns",
                (pool_id, datacenter_id, counter, windows, server_indices, values),
            )
        )
        self._pending_rows += int(values.size)
        if self._pending_rows >= self._flush_rows:
            self.flush()

    def record_fast(
        self,
        window: int,
        server_id: str,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        value: float,
    ) -> None:
        """Buffer one scalar append (compatibility shim, same batching).

        Rides the same coalescing ingest channel as
        :meth:`record_columns`; the serve loop executes a real
        ``record_fast``, so scalar-spill table layout matches a local
        shard exactly.
        """
        if self._closed:
            raise RuntimeError("ShardClient is closed")
        self._pending.append(
            ("record_fast", (window, server_id, pool_id, datacenter_id, counter, value))
        )
        self._pending_rows += 1
        if self._pending_rows >= self._flush_rows:
            self.flush()


class ShardWorker(ShardClient):
    """Proxy to one ``MetricStore`` in a child process (pipe transport).

    The process is started eagerly in ``__init__`` with the default
    start method and marked ``daemon`` so an abandoned store cannot
    outlive the interpreter; :meth:`close` is the orderly path — a
    ``("stop",)`` message, a bounded join, then ``terminate()`` as the
    escalation — and inherits :class:`ShardClient`'s idempotence and
    fork-safety.
    """

    def __init__(
        self,
        shard_id: int,
        interner: ServerInterner,
        flush_rows: int = DEFAULT_FLUSH_ROWS,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    ) -> None:
        super().__init__(
            shard_id, interner, flush_rows=flush_rows,
            pipeline_depth=pipeline_depth,
        )
        context = multiprocessing.get_context()
        conn, child_conn = context.Pipe(duplex=True)
        self._transport = PipeTransport(conn)
        self._process = context.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"metric-shard-{shard_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        """The child's OS pid (``None`` once closed)."""
        return None if self._closed else self._process.pid

    def _peer(self) -> str:
        return f"worker pid {self._process.pid}"

    def _shutdown(self) -> None:
        """Send ``stop``, join briefly, escalate to ``terminate()`` —
        so a wedged child can never hang interpreter shutdown."""
        try:
            self._transport.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(_JOIN_TIMEOUT)
        if self._process.is_alive():  # pragma: no cover - wedged child
            self._process.terminate()
            self._process.join(_JOIN_TIMEOUT)
        self._transport.close()


class TcpShardClient(ShardClient):
    """Proxy to one ``MetricStore`` session on a :class:`ShardServer`.

    Dials ``address`` eagerly in ``__init__`` (with the transport's
    refused-connection retry window, so starting client and server
    "at the same time" works) and owns exactly one server session —
    the server made a fresh store when this connection arrived and
    will drop it when the connection ends.  Construction then probes
    the session's capabilities (one ``protocol_capabilities`` RPC):
    a peer that advertises ``binary_ingest`` receives pickle-free
    binary column frames for the rest of the session, a PR 4 peer
    answers the probe with ``AttributeError`` and keeps receiving
    pickle frames (set ``binary_frames=False`` to skip the probe and
    force pickle).  :meth:`close` says goodbye with a ``("stop",)``
    message before closing the socket; a vanished server surfaces as
    a ``RuntimeError`` naming the address, and ``io_timeout`` bounds
    every socket operation so even a hung-but-alive server is an
    error naming the shard and address — never a hang.
    """

    def __init__(
        self,
        shard_id: int,
        interner: ServerInterner,
        address: str,
        flush_rows: int = DEFAULT_FLUSH_ROWS,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        io_timeout: Optional[float] = DEFAULT_IO_TIMEOUT,
        binary_frames: bool = True,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    ) -> None:
        super().__init__(
            shard_id, interner, flush_rows=flush_rows,
            pipeline_depth=pipeline_depth,
        )
        if io_timeout is not None and io_timeout <= 0:
            io_timeout = None  # 0 / negative = "no bound", like the CLI
        self._address = address
        self._io_timeout = io_timeout
        self._transport = TcpTransport.connect(
            address, timeout=connect_timeout, io_timeout=io_timeout
        )
        if binary_frames:
            try:
                try:
                    capabilities = self.call("protocol_capabilities")
                except AttributeError:
                    # A PR 4 peer: no probe handler, so its serve loop
                    # answered the reserved method with AttributeError.
                    # Speak pickle frames for the whole session.
                    capabilities = {}
            except BaseException:
                # Probe failed hard (peer hung or died): the dial
                # already succeeded, so close the session instead of
                # leaking the socket and its server-side thread.
                self._transport.close()
                raise
            self._transport.binary_frames = bool(
                capabilities.get("binary_ingest", False)
            )

    @property
    def address(self) -> str:
        """The ``host:port`` this shard's session is connected to."""
        return self._address

    @property
    def addresses(self) -> Tuple[str, ...]:
        """The member address list (one entry — no replicas here)."""
        return (self._address,)

    def _peer(self) -> str:
        return self._address

    def _shutdown(self) -> None:
        try:
            self._transport.send(("stop",))
        except (EOFError, OSError):
            pass
        self._transport.close()


class ReplicatedShardClient(_ShardQuerySurface):
    """One shard mirrored across several TCP sessions, with failover.

    Holds a :class:`TcpShardClient` per address — the first is the
    primary, the rest replicas — and duck-types the single-session
    surface, so the facade treats a replicated shard exactly like a
    plain one.  Every ingest call (``record_columns`` /
    ``record_fast`` / ``flush``) fans out to every live member: each
    member buffers the identical command stream with the same
    ``flush_rows`` threshold, so the coalesced frames on every wire —
    and therefore every member's store — are identical.  Queries are
    answered by the first live member.

    When any operation on a member raises
    :class:`ShardConnectionError` (dead peer, reset, I/O timeout — the
    PR 5 failure paths), the member is retired (closed and removed)
    and the survivors carry on; an interrupted query is retried on the
    next member, whose answer is **bit-identical** because its store
    consumed the same calls in the same order.  Store-level exceptions
    (a bad query argument) are *not* failed over — every member would
    answer the same — and propagate unchanged.  Only when the last
    member dies does a ``ShardConnectionError`` naming every failed
    address reach the caller.

    What replication cannot save: rows buffered parent-side (pending
    lists, pipelined frames) when the *caller* dies, same as the
    single-session contract; and a member that fails is gone for good
    — re-attach a replacement via the facade's ``rejoin_shard``, which
    needs the journal.  Not thread-safe for ingest (one owner, like
    ``ShardClient``); ``close`` may race a concurrent retirement and
    is safe (see :meth:`ShardClient.close`).
    """

    def __init__(
        self,
        shard_id: int,
        interner: ServerInterner,
        addresses: Sequence[str],
        flush_rows: int = DEFAULT_FLUSH_ROWS,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        io_timeout: Optional[float] = DEFAULT_IO_TIMEOUT,
        binary_frames: bool = True,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    ) -> None:
        if not addresses:
            raise ValueError("ReplicatedShardClient needs at least one address")
        self._shard_id = shard_id
        self._addresses = tuple(addresses)
        self._closed = False
        # Guards membership changes and the closed flag: _retire may
        # run on whichever thread observed the failure while close()
        # runs on another.
        self._members_lock = threading.Lock()
        self._members: List[TcpShardClient] = []
        self._failures: List[str] = []
        try:
            for address in addresses:
                self._members.append(
                    TcpShardClient(
                        shard_id,
                        interner,
                        address,
                        flush_rows=flush_rows,
                        connect_timeout=connect_timeout,
                        io_timeout=io_timeout,
                        binary_frames=binary_frames,
                        pipeline_depth=pipeline_depth,
                    )
                )
        except BaseException:
            # A later member failed to dial: close the sessions already
            # opened instead of leaking them server-side.
            for member in self._members:
                try:
                    member.close()
                except Exception:  # pragma: no cover - best effort
                    pass
            raise

    # ------------------------------------------------------------------
    # Lifecycle and membership
    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> int:
        return self._shard_id

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def address(self) -> str:
        """The primary's address (stable even after failover)."""
        return self._addresses[0]

    @property
    def addresses(self) -> Tuple[str, ...]:
        """Every configured member address, primary first."""
        return self._addresses

    @property
    def live_addresses(self) -> Tuple[str, ...]:
        """Addresses of the members still serving (for tests/ops)."""
        with self._members_lock:
            return tuple(member.address for member in self._members)

    def _live_members(self) -> List[TcpShardClient]:
        with self._members_lock:
            return list(self._members)

    def _retire(self, member: TcpShardClient, error: BaseException) -> None:
        """Drop a failed member: survivors own the shard from now on.

        The member is closed *outside* the membership lock (close can
        block for the bounded pipeline-abort grace) — safe against a
        concurrent ``close()`` of the whole group because
        :meth:`ShardClient.close` is itself lock-guarded and
        idempotent, so the transport is never double-closed.
        """
        with self._members_lock:
            if member in self._members:
                self._members.remove(member)
                self._failures.append(f"{member.address}: {error}")
        try:
            member.close()
        except Exception:  # pragma: no cover - dead peer teardown
            pass

    def _all_members_dead(self) -> ShardConnectionError:
        detail = "; ".join(self._failures) if self._failures else "none dialled"
        return ShardConnectionError(
            f"shard {self._shard_id}: every member failed "
            f"({len(self._addresses)} configured — {detail})"
        )

    def close(self) -> None:
        """Close every member session; idempotent and race-safe."""
        with self._members_lock:
            if self._closed:
                return
            self._closed = True
            members = list(self._members)
        for member in members:
            member.close()

    # ------------------------------------------------------------------
    # Mirrored ingest and failover queries
    # ------------------------------------------------------------------
    def _fan_out(self, method: str, args: tuple) -> None:
        """Run one ingest call on every live member, retiring failures.

        A member that raises :class:`ShardConnectionError` mid-fan-out
        missed this and all future calls — which is fine, because it is
        retired on the spot and never answers a query again.  The call
        only fails upward when it leaves *no* live member.
        """
        if self._closed:
            raise RuntimeError("ShardClient is closed")
        members = self._live_members()
        if not members:
            raise self._all_members_dead()
        for member in members:
            try:
                getattr(member, method)(*args)
            except ShardConnectionError as error:
                self._retire(member, error)
        if not self._live_members():
            raise self._all_members_dead()

    def record_columns(self, *args: Any) -> None:
        self._fan_out("record_columns", args)

    def record_fast(self, *args: Any) -> None:
        self._fan_out("record_fast", args)

    def flush(self) -> None:
        self._fan_out("flush", ())

    def resync(self) -> None:
        """Re-seed every member session (the group rejoin handshake)."""
        self._fan_out("resync", ())

    def evict_windows(self, before: int) -> int:
        """Evict on *every* live member, not just the query target.

        Eviction mutates store state, and replicas must stay mirrors —
        a replica that kept old rows hot would answer differently
        after a failover.  Members hold identical state, so every
        answer is equal; the first live member's count is returned.
        """
        if self._closed:
            raise RuntimeError("ShardClient is closed")
        self._fan_out("flush", ())
        members = self._live_members()
        if not members:
            raise self._all_members_dead()
        result: Optional[int] = None
        for member in members:
            try:
                count = member.call("evict_windows", before)
                if result is None:
                    result = int(count)
            except ShardConnectionError as error:
                self._retire(member, error)
        if result is None or not self._live_members():
            raise self._all_members_dead()
        return result

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Query the first live member; fail over on connection loss.

        Flushes *every* live member first, so whichever member ends up
        answering — even after a mid-call failover — has consumed all
        buffered ingest (each member's own ``call`` additionally
        drains its pipelined frames: read-your-writes holds across
        failover).  Exceptions the remote store raised propagate
        without failover; only :class:`ShardConnectionError` moves on
        to the next member.
        """
        if self._closed:
            raise RuntimeError("ShardClient is closed")
        self._fan_out("flush", ())
        while True:
            members = self._live_members()
            if not members:
                raise self._all_members_dead()
            member = members[0]
            try:
                return member.call(method, *args, **kwargs)
            except ShardConnectionError as error:
                self._retire(member, error)


class ShardServer:
    """Host remote metric-store shards over TCP: one session, one shard.

    Every accepted connection gets its own session thread running
    :func:`serve_shard` over a fresh ``MetricStore`` — so a facade
    that opens N connections (even N connections to the *same*
    server) gets N independent shards, and spreading the addresses
    across machines is purely a deployment decision.  This is the
    library form of the ``repro shard-server`` CLI command; tests and
    benchmarks embed it, operators run the CLI.

    ``max_sessions`` bounds the server's lifetime for scripted runs:
    after accepting that many sessions it stops listening and
    :meth:`serve_forever` returns once they all end (the CLI's
    ``--max-sessions``).  Bind to port 0 to let the OS pick an
    ephemeral port; :attr:`address` reports the real one.

    ``stop()`` closes the listener and every live session; it is
    idempotent.  Sessions end individually on their client's
    ``("stop",)`` or clean EOF — a client vanishing never takes the
    server down.  Security note: the protocol is pickle-based, so
    listen only on loopback or a trusted network (see
    :mod:`repro.telemetry.transport`).
    """

    def __init__(
        self,
        address: str = "127.0.0.1:0",
        max_sessions: Optional[int] = None,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        from repro.telemetry.transport import parse_address

        self._requested = parse_address(address)
        self._max_sessions = max_sessions
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._sessions: List[Tuple[TcpTransport, threading.Thread]] = []
        self._lock = threading.Lock()
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardServer":
        """Bind, listen, and start accepting sessions in the background.

        The socket family follows the listen host: ``127.0.0.1`` binds
        IPv4, a bracketed ``[::1]`` (parsed to ``::1``) binds IPv6 —
        ``getaddrinfo`` decides, so names resolve too.
        """
        if self._started:
            raise RuntimeError("ShardServer already started")
        self._started = True
        host, port = self._requested
        try:
            family, _type, _proto, _cname, sockaddr = socket.getaddrinfo(
                host, port, type=socket.SOCK_STREAM
            )[0]
        except socket.gaierror as error:
            raise OSError(
                f"cannot resolve listen address {format_address(host, port)}: "
                f"{error}"
            ) from error
        listener = socket.socket(family, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(sockaddr)
        listener.listen()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="shard-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> str:
        """The bound ``host:port`` (real port, even when asked for 0)."""
        if self._listener is None:
            raise RuntimeError("ShardServer is not started")
        host, port = self._listener.getsockname()[:2]
        return format_address(host, port)

    def serve_forever(self) -> None:
        """Block until :meth:`stop` — or, with ``max_sessions``, until
        every accepted session has ended."""
        if self._accept_thread is None:
            raise RuntimeError("ShardServer is not started")
        self._accept_thread.join()
        for _transport, thread in list(self._sessions):
            thread.join()

    def stop(self) -> None:
        """Close the listener and every live session; idempotent."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        if self._listener is not None:
            try:
                # shutdown() (not just close()) wakes a thread blocked
                # in accept() immediately instead of leaving it to the
                # join timeout below.
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for transport, _thread in list(self._sessions):
            transport.close()
        if self._accept_thread is not None:
            self._accept_thread.join(_JOIN_TIMEOUT)
        for _transport, thread in list(self._sessions):
            thread.join(_JOIN_TIMEOUT)

    def __enter__(self) -> "ShardServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accepting and serving
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        accepted = 0
        while not self._stopping:
            if self._max_sessions is not None and accepted >= self._max_sessions:
                break
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed by stop()
                break
            accepted += 1
            transport = TcpTransport(conn)
            thread = threading.Thread(
                target=self._serve_session,
                args=(transport,),
                name=f"shard-session-{accepted}",
                daemon=True,
            )
            with self._lock:
                if self._stopping:
                    # Lost the race with stop(): it already snapshotted
                    # the session list, so this connection would never
                    # be torn down — refuse it instead.
                    transport.close()
                    break
                self._sessions.append((transport, thread))
            thread.start()
        if self._max_sessions is not None and not self._stopping:
            # Reached the session budget: stop listening, let the live
            # sessions run to their own stop/EOF.
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass

    def _session_store(self):
        """The store a new session serves; ``None`` = fresh per session.

        The shard-server default (one connection = one empty shard
        store) — :class:`~repro.telemetry.query_server.QueryServer`
        overrides this to hand every session one shared read-only
        surface over the live store.
        """
        return None

    def _serve_session(self, transport: TcpTransport) -> None:
        """One session thread: serve, then drop the bookkeeping entry.

        Pruning on exit keeps a long-running server's session list
        proportional to *live* sessions instead of every connection
        ever accepted.
        """
        try:
            serve_shard(transport, store=self._session_store())
        finally:
            with self._lock:
                self._sessions = [
                    entry for entry in self._sessions if entry[0] is not transport
                ]
