"""Process-backed shard workers for the sharded metric store.

The paper's pipeline spreads its ~3 GB/s counter stream across many
trace-store *machines*; :class:`~repro.telemetry.sharding.\
ShardedMetricStore` reproduces the partitioning in-process, and this
module moves each partition behind a real process boundary.  A
:class:`ShardWorker` is the classic actor shape: one
:class:`~repro.telemetry.store.MetricStore` owned by a
``multiprocessing`` child, a command channel in front of it, and a
parent-side proxy object whose surface mirrors the store's query API —
the facade cannot tell a worker from a local shard.

Message protocol (one duplex ``multiprocessing.Pipe`` per worker, all
messages pickled tuples, strictly FIFO):

``("ingest", names, commands)``
    Fire-and-forget bulk append.  ``commands`` is a list of
    ``(method, args)`` pairs — ``record_columns`` / ``record_fast``
    calls whose ndarray arguments pickle as raw buffers — applied in
    order by the child.  Small parts coalesce: the proxy buffers
    commands until ``flush_rows`` rows are pending (or a query/close
    forces a flush), so one pipe message amortises pickling and wakeup
    cost across many appends.
``("call", names, method, args, kwargs)``
    Synchronous query RPC.  The child resolves ``method`` on its store
    (plain attributes answer property reads, generators are
    materialised into lists so they can cross the pipe) and replies
    ``("ok", result)`` or ``("err", exception)``.  Any exception a
    previous *ingest* message raised is delivered here instead — ingest
    errors are deferred, never lost.
``("stop",)``
    Graceful shutdown; the child drains nothing further and exits 0.

``names`` on every message is the **interner delta**: the slice of
server names the parent interned since the previous message.  The
child replays the slice into its own
:class:`~repro.telemetry.store.ServerInterner`, so both sides agree on
the global id space without sharing memory — ingest ships only
``int64`` index columns, and name-returning queries
(``per_server_values``, ``pool_matrix``, ``servers_in_pool``) still
answer with the right strings.  This is the same replication discipline
a multi-machine deployment would need, which is the point of the seam.

Cost model: every row crosses the process boundary exactly once as
part of a pickled ``int64``/``float64`` ndarray (~24 bytes/row of
pickle payload), and every query result crosses back once.  On a
single CPU that serialisation is pure overhead — the threads backend
exists for exactly that reason — but the worker keeps its entire
store, freeze, and aggregate-cache workload off the simulating
process, which is what pays once shards outgrow one core or one host.

Equivalence: a worker applies the identical ``record_columns`` calls
in the identical order a local shard would see, so its tables — and
therefore every query answer and export — are bit-identical to the
serial backend's.  ``tests/test_sharded_store.py`` and
``tests/test_sim_equivalence.py`` enforce this for all three backends.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.telemetry.store import MetricStore, ServerInterner, TableKey

#: Default number of pending rows that triggers an ingest flush.
DEFAULT_FLUSH_ROWS = 65536

#: How long ``close`` waits for a graceful child exit before escalating
#: to ``terminate()`` (seconds).
_JOIN_TIMEOUT = 5.0


def _worker_main(conn) -> None:
    """Child-process loop: own one ``MetricStore``, serve the pipe.

    Runs until a ``("stop",)`` message or EOF (parent died).  Ingest
    exceptions are remembered and surfaced on the next ``call`` so the
    fire-and-forget fast path never needs an acknowledgement round
    trip.
    """
    store = MetricStore()
    deferred: Optional[BaseException] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "ingest":
            _replay_names(store.interner, message[1])
            try:
                for method, args in message[2]:
                    getattr(store, method)(*args)
            except BaseException as error:  # noqa: BLE001 — re-raised on next call
                deferred = error
        elif kind == "call":
            _replay_names(store.interner, message[1])
            _method, args, kwargs = message[2], message[3], message[4]
            if deferred is not None:
                _reply_error(conn, deferred)
                deferred = None
                continue
            try:
                attr = getattr(store, _method)
                result = attr(*args, **kwargs) if callable(attr) else attr
                if isinstance(result, Iterator):
                    result = list(result)
                conn.send(("ok", result))
            except BaseException as error:  # noqa: BLE001
                _reply_error(conn, error)
        elif kind == "stop":
            break
    conn.close()


def _replay_names(interner: ServerInterner, names: List[str]) -> None:
    """Append the parent's interner delta, preserving global indices."""
    for name in names:
        interner.intern(name)


def _reply_error(conn, error: BaseException) -> None:
    """Send an exception back, degrading to ``RuntimeError`` if it
    cannot be pickled (exotic exception classes)."""
    try:
        conn.send(("err", error))
    except Exception:  # pragma: no cover - unpicklable exception
        conn.send(("err", RuntimeError(repr(error))))


class ShardWorker:
    """Parent-side proxy to one ``MetricStore`` in a child process.

    Duck-types the slice of the :class:`MetricStore` surface the
    sharded facade uses — buffered ``record_columns`` / ``record_fast``
    ingest plus every query and introspection method — so
    :class:`~repro.telemetry.sharding.ShardedMetricStore` can hold
    ``ShardWorker`` handles where it would otherwise hold local
    stores.  All answers are bit-identical to a local shard fed the
    same calls (the child applies the same methods in the same order);
    the difference is purely *where* the rows live and the one
    pickling round trip each row (ingest) and each result (query)
    pays.

    Not thread-safe: one owner (the facade) talks to one worker.  The
    process is started eagerly in ``__init__`` with the default start
    method and marked ``daemon`` so an abandoned store cannot outlive
    the interpreter; :meth:`close` is the orderly path and is
    idempotent and fork-safe (a forked copy of the proxy refuses to
    touch the parent's child process).
    """

    def __init__(
        self,
        shard_id: int,
        interner: ServerInterner,
        flush_rows: int = DEFAULT_FLUSH_ROWS,
    ) -> None:
        if flush_rows < 1:
            raise ValueError("flush_rows must be >= 1")
        self._shard_id = shard_id
        self._interner = interner
        self._flush_rows = flush_rows
        self._synced_names = 0
        self._pending: List[Tuple[str, tuple]] = []
        self._pending_rows = 0
        self._closed = False
        self._owner_pid = os.getpid()
        context = multiprocessing.get_context()
        self._conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"metric-shard-{shard_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> int:
        return self._shard_id

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pid(self) -> Optional[int]:
        """The child's OS pid (``None`` once closed)."""
        return None if self._closed else self._process.pid

    def close(self) -> None:
        """Stop the child process; idempotent and fork-safe.

        The orderly path sends ``("stop",)``, joins for
        ``_JOIN_TIMEOUT`` seconds, then escalates to ``terminate()`` —
        so a wedged child can never hang interpreter shutdown.  Called
        from a *forked* copy of the owner (``os.getpid()`` differs from
        the pid that created the worker) it only drops the inherited
        pipe end: the child belongs to the original parent, and
        terminating it from the fork would yank a live store out from
        under that parent.  Double-close is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        self._pending_rows = 0
        if os.getpid() != self._owner_pid:
            # Forked copy: the worker is the original owner's child.
            # Drop our duplicated pipe fd and leave the process alone.
            self._conn.close()
            return
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(_JOIN_TIMEOUT)
        if self._process.is_alive():  # pragma: no cover - wedged child
            self._process.terminate()
            self._process.join(_JOIN_TIMEOUT)
        self._conn.close()

    def _names_delta(self) -> List[str]:
        """Server names interned since the last message to this worker."""
        names = self._interner.names
        if self._synced_names == len(names):
            return []
        delta = names[self._synced_names:]
        self._synced_names = len(names)
        return delta

    def flush(self) -> None:
        """Ship buffered ingest commands as one coalesced pipe message.

        Called automatically when ``flush_rows`` rows are pending and
        before every query RPC, so readers always observe their own
        writes.  Costs one pickling pass over the buffered ndarrays.
        """
        if self._closed:
            raise RuntimeError("ShardWorker is closed")
        if not self._pending:
            return
        self._conn.send(("ingest", self._names_delta(), self._pending))
        self._pending = []
        self._pending_rows = 0

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Synchronous RPC: flush pending ingest, run ``store.method``.

        Exceptions raised in the child — including deferred ingest
        errors — are re-raised here.  The result pays one pickle round
        trip; everything else about it (values, dtypes, ordering) is
        exactly what the local shard would have returned.
        """
        self.flush()
        self._conn.send(("call", self._names_delta(), method, args, kwargs))
        try:
            kind, payload = self._conn.recv()
        except (EOFError, OSError) as error:  # pragma: no cover - dead child
            raise RuntimeError(
                f"shard worker {self._shard_id} died (pid {self._process.pid})"
            ) from error
        if kind == "err":
            raise payload
        return payload

    # ------------------------------------------------------------------
    # Ingest (buffered, fire-and-forget)
    # ------------------------------------------------------------------
    def record_columns(
        self,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        windows: np.ndarray,
        server_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Buffer one pre-partitioned column append for the child.

        Same contract as :meth:`MetricStore.record_columns` — the
        worker takes ownership of the arrays (they are held until the
        next flush, then pickled across the pipe).  Nothing crosses the
        process boundary until the batching threshold is hit, so
        per-window parts from a blocked simulation coalesce into few
        large messages.
        """
        if self._closed:
            raise RuntimeError("ShardWorker is closed")
        if values.size == 0:
            return
        self._pending.append(
            (
                "record_columns",
                (pool_id, datacenter_id, counter, windows, server_indices, values),
            )
        )
        self._pending_rows += int(values.size)
        if self._pending_rows >= self._flush_rows:
            self.flush()

    def record_fast(
        self,
        window: int,
        server_id: str,
        pool_id: str,
        datacenter_id: str,
        counter: str,
        value: float,
    ) -> None:
        """Buffer one scalar append (compatibility shim, same batching).

        Rides the same coalescing ingest channel as
        :meth:`record_columns`; the child executes a real
        ``record_fast``, so scalar-spill table layout matches a local
        shard exactly.
        """
        if self._closed:
            raise RuntimeError("ShardWorker is closed")
        self._pending.append(
            ("record_fast", (window, server_id, pool_id, datacenter_id, counter, value))
        )
        self._pending_rows += 1
        if self._pending_rows >= self._flush_rows:
            self.flush()

    # ------------------------------------------------------------------
    # Query surface (synchronous RPC, mirrors MetricStore)
    # ------------------------------------------------------------------
    @property
    def pools(self) -> Tuple[str, ...]:
        return tuple(self.call("pools"))

    @property
    def datacenters(self) -> Tuple[str, ...]:
        return tuple(self.call("datacenters"))

    @property
    def max_window(self) -> int:
        return self.call("max_window")

    def counters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        return self.call("counters_for_pool", pool_id)

    def servers_in_pool(
        self, pool_id: str, datacenter_id: Optional[str] = None
    ) -> Tuple[str, ...]:
        return self.call("servers_in_pool", pool_id, datacenter_id)

    def datacenters_for_pool(self, pool_id: str) -> Tuple[str, ...]:
        return self.call("datacenters_for_pool", pool_id)

    def datacenters_for_pool_counter(self, pool_id: str, counter: str) -> Tuple[str, ...]:
        return self.call("datacenters_for_pool_counter", pool_id, counter)

    def sample_count(self) -> int:
        return self.call("sample_count")

    def iter_tables(
        self,
    ) -> Iterator[Tuple[TableKey, np.ndarray, np.ndarray, np.ndarray]]:
        """Tables materialised in the child and shipped back as a list.

        One pickle of the shard's full columns — the export path's bulk
        read, paid once per export rather than per row.
        """
        return iter(self.call("iter_tables"))

    def gather_columns(self, *args: Any, **kwargs: Any):
        return self.call("gather_columns", *args, **kwargs)

    def pool_window_aggregate(self, *args: Any, **kwargs: Any):
        return self.call("pool_window_aggregate", *args, **kwargs)

    def per_server_values(self, *args: Any, **kwargs: Any) -> Dict[str, np.ndarray]:
        return self.call("per_server_values", *args, **kwargs)

    def server_series(self, *args: Any, **kwargs: Any):
        return self.call("server_series", *args, **kwargs)

    def pool_matrix(self, *args: Any, **kwargs: Any):
        return self.call("pool_matrix", *args, **kwargs)

    def all_values(self, *args: Any, **kwargs: Any) -> np.ndarray:
        return self.call("all_values", *args, **kwargs)
