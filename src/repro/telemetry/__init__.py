"""Measurement substrate: perf counters, time series and the metric store.

The planner side of the library (``repro.core``) is black-box by design:
it may only observe the fleet through the windowed counter samples that
land in a :class:`~repro.telemetry.store.MetricStore` — exactly the
visibility the paper's authors had into their production service
(performance counters averaged over 120 s windows, §III).
"""

from repro.telemetry.counters import (
    Counter,
    CounterSample,
    WINDOW_SECONDS,
    workload_counter,
)
from repro.telemetry.series import TimeSeries
from repro.telemetry.sharding import BACKENDS, ShardedMetricStore
from repro.telemetry.store import MetricKey, MetricStore, ServerInterner
from repro.telemetry.transport import PipeTransport, TcpTransport
from repro.telemetry.workers import ShardServer, ShardWorker, TcpShardClient

__all__ = [
    "BACKENDS",
    "PipeTransport",
    "TcpTransport",
    "ShardServer",
    "ShardWorker",
    "TcpShardClient",
    "Counter",
    "CounterSample",
    "WINDOW_SECONDS",
    "workload_counter",
    "TimeSeries",
    "MetricKey",
    "MetricStore",
    "ServerInterner",
    "ShardedMetricStore",
]
